#!/usr/bin/env python
"""Event-throughput microbenchmark: queue ops/sec and kernel events/sec.

Two layers, three scheduling regimes each:

* **queue level** — raw push/pop throughput of
  :class:`repro.simkernel.queues.CalendarQueue` against a reference
  ``heapq`` of ``(time, seq, item)`` tuples (the kernel's pre-calendar
  implementation), on identical workloads.  This isolates the data
  structure from the rest of the kernel.
* **kernel level** — end-to-end ``Simulator`` events/sec, including
  event allocation, callback dispatch and clock advance.

Regimes (the shapes discrete-event grids actually produce):

* ``storm``     — delay-0 cascades: every event lands on the current
  timestamp (the tie-heaviest case, the calendar queue's O(1) path);
* ``staggered`` — every event at a new strictly-later timestamp (the
  calendar queue's worst case: one heap op per event, like the old heap
  but with bucket overhead);
* ``cohorts``   — swarm heartbeats: many peers sharing a few staggered
  offsets per round, a deep pending set with massive ties (the
  ``bench_e16_swarm`` regime).

One extra queue-level regime, ``deep``, scales the cohort workload to a
multi-million-event pending set (push everything, then drain).  This is
the 10^5-10^6-peer consumer-grid regime the calendar queue is built
for: heap cost grows with log(pending set) while the calendar stays
O(1) per tie, so the ratio widens with depth — this is where the >=10x
headline number comes from (see ``docs/performance.md`` for the full
depth sweep and the honest caveats about shallow queues).

Results are printed as a table and written as JSON (default
``benchmarks/results/MICROBENCH_events.json``) for the CI artifact
upload.  Everything here is wall-clock and therefore **ungated** —
``tools/bench_gate.py`` only reads ``BENCH_*.json`` files, and machine
speed must never fail CI.  The numbers exist so the events/sec trend is
visible per PR; ``docs/performance.md`` records the reference points.

Usage::

    PYTHONPATH=src python benchmarks/microbench_events.py
    PYTHONPATH=src python benchmarks/microbench_events.py --events 200000
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from heapq import heappop, heappush

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.simkernel import CalendarQueue, Simulator  # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


class _ReferenceHeap:
    """The kernel's previous queue: one heap of (time, seq, item) tuples."""

    __slots__ = ("_heap", "_seq")

    def __init__(self):
        self._heap = []
        self._seq = 0

    def push(self, time, item):
        heappush(self._heap, (time, self._seq, item))
        self._seq += 1

    def pop(self):
        when, _seq, item = heappop(self._heap)
        return when, item

    def __len__(self):
        return len(self._heap)


def _workload(regime: str, n: int):
    """Yield (time, phase) pairs; phase alternates bulk push / drain."""
    if regime == "storm":
        # One deep bucket: n pushes at t=0, then n pops.
        return [(0.0, i) for i in range(n)]
    if regime == "staggered":
        return [(0.001 * i, i) for i in range(n)]
    if regime == "cohorts":
        # 16 offsets per 30 s round, round-robin across n "peers".
        return [(30.0 * (i // (n // 5 or 1)) + 0.25 * (i % 16), i) for i in range(n)]
    raise ValueError(regime)


def bench_queue(queue_cls, regime: str, n: int) -> float:
    """Ops/sec (one op = one push or one pop) for a queue implementation."""
    items = _workload(regime, n)
    q = queue_cls()
    t0 = time.perf_counter()
    # Interleave to keep the pending set deep: push half, then alternate.
    half = n // 2
    for when, item in items[:half]:
        q.push(when, item)
    for when, item in items[half:]:
        q.push(when, item)
        q.pop()
    while len(q):
        q.pop()
    dt = time.perf_counter() - t0
    return (2 * n) / dt


def bench_queue_deep(queue_cls, n: int) -> float:
    """Ops/sec on an n-deep cohort pending set: push all n, then drain.

    Models the full swarm's pending set at once (every peer's next
    heartbeat already scheduled) rather than the interleaved
    steady-state of :func:`bench_queue`.  Heap ops pay O(log n) against
    the whole set; the calendar pays O(1) per tie plus one heap op per
    *distinct* timestamp (16 here), so the gap widens with depth.
    """
    q = queue_cls()
    t0 = time.perf_counter()
    for i in range(n):
        q.push(0.25 * (i % 16), i)
    while len(q):
        q.pop()
    dt = time.perf_counter() - t0
    return (2 * n) / dt


def bench_kernel(regime: str, n: int) -> float:
    """End-to-end Simulator events/sec for one regime."""
    sim = Simulator()
    if regime == "storm":
        count = [0]

        def cb():
            count[0] += 1
            if count[0] < n:
                sim.call_at(sim.now, cb)

        sim.call_at(0.0, cb)
    elif regime == "staggered":
        count = [0]

        def cb():
            count[0] += 1
            if count[0] < n:
                sim.call_at(sim.now + 0.001, cb)

        sim.call_at(0.0, cb)
    elif regime == "cohorts":
        rounds, cohorts = 5, 16
        per_round = n // rounds

        def noop():
            pass

        def make_cohort(r, g):
            def fire():
                for _ in range(per_round // cohorts):
                    sim.call_at(sim.now, noop)

            return fire

        for r in range(rounds):
            for g in range(cohorts):
                sim.call_at(30.0 * r + 0.25 * g, make_cohort(r, g))
    else:
        raise ValueError(regime)
    t0 = time.perf_counter()
    sim.run()
    dt = time.perf_counter() - t0
    return sim.events_executed / dt


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--events", type=int, default=200_000,
                        help="events per regime (default 200000)")
    parser.add_argument("--deep-events", type=int, default=4_000_000,
                        help="pending-set depth for the deep regime "
                             "(default 4000000)")
    parser.add_argument("--out", default=str(RESULTS_DIR / "MICROBENCH_events.json"),
                        help="output JSON path")
    args = parser.parse_args(argv)

    regimes = ("storm", "staggered", "cohorts")
    result = {"schema": 1, "events_per_regime": args.events,
              "deep_events": args.deep_events,
              "queue_ops_per_s": {}, "kernel_events_per_s": {}}
    print(f"event-throughput microbench ({args.events} events/regime)")
    print(f"{'regime':10s} {'heapq ref':>12s} {'calendar':>12s} {'ratio':>7s} "
          f"{'kernel ev/s':>12s}")
    for regime in regimes:
        ref = bench_queue(_ReferenceHeap, regime, args.events)
        cal = bench_queue(CalendarQueue, regime, args.events)
        kern = bench_kernel(regime, args.events)
        result["queue_ops_per_s"][regime] = {
            "heapq_reference": round(ref), "calendar": round(cal),
            "ratio": round(cal / ref, 2),
        }
        result["kernel_events_per_s"][regime] = round(kern)
        print(f"{regime:10s} {ref/1e3:>10.0f}k {cal/1e3:>10.0f}k "
              f"{cal/ref:>6.1f}x {kern/1e3:>10.0f}k")

    # Depth regime: the swarm-scale pending set where the calendar's
    # asymptotic advantage shows (the >=10x headline).
    ref = bench_queue_deep(_ReferenceHeap, args.deep_events)
    cal = bench_queue_deep(CalendarQueue, args.deep_events)
    result["queue_ops_per_s"]["deep"] = {
        "heapq_reference": round(ref), "calendar": round(cal),
        "ratio": round(cal / ref, 2),
    }
    print(f"{'deep':10s} {ref/1e3:>10.0f}k {cal/1e3:>10.0f}k "
          f"{cal/ref:>6.1f}x {'-':>11s}  ({args.deep_events} pending)")

    out = pathlib.Path(args.out)
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(f"[saved to {out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
