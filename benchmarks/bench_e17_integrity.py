"""E17 (integrity) — the price of not trusting volunteers.

Paper anchor: the Consumer Grid farms work onto anonymous consumer
machines (§1, §3.1) and simply *trusts* whatever comes back.  This bench
quantifies what that trust costs when it is misplaced: the galaxy farm
runs against fleets with 0/1/2 saboteurs (consistent liars tampering
with 90% of their results) under no verification, pair voting
(``replicate-2``) and triple voting (``replicate-3``).

Two headline numbers per cell: whether the rendered frames stayed
bit-identical to the trusted fault-free baseline, and the makespan
overhead of achieving that.  Unverified runs corrupt as soon as one
saboteur joins; replicated runs stay exact at every saboteur count,
paying only the replication + tie-break overhead.
"""

import numpy as np

from benchlib import timed

from repro.analysis import render_table
from repro.apps.galaxy import build_galaxy_graph, generate_snapshots
from repro.faults import Fault, FaultPlan
from repro.grid import ConsumerGrid
from repro.p2p import LAN_PROFILE

N_WORKERS = 6
N_FRAMES = 10
N_PARTICLES = 200
SABOTEUR_COUNTS = (0, 1, 2)
VERIFICATIONS = ("none", "replicate-2", "replicate-3")
TAMPER_RATE = 0.9


def saboteur_plan(n_saboteurs, seed=17):
    if n_saboteurs == 0:
        return None
    plan = FaultPlan(name=f"saboteurs-{n_saboteurs}")
    for i in range(n_saboteurs):
        plan.add(
            Fault(
                kind="saboteur",
                at=5.0,
                duration=100_000.0,
                targets=(f"worker-{i}",),
                fraction=TAMPER_RATE,
                seed=seed + i,
            )
        )
    return plan


def make_grid(plan, seed=900, trace=False):
    return ConsumerGrid(
        n_workers=N_WORKERS,
        seed=seed,
        worker_profile=LAN_PROFILE,
        controller_profile=LAN_PROFILE,
        worker_efficiency=1e-5,
        heartbeat_interval=1.0,
        suspect_after_missed=2,
        retry_timeout=30.0,
        retry_interval=2.0,
        fault_plan=plan,
        trace=trace,
    )


def run_sweep(seed=900, trace=False):
    generate_snapshots(N_FRAMES, N_PARTICLES, seed=3, register_as="e17-gal")
    rows = []
    baseline = None
    reference = None
    tracer = None
    for n_saboteurs in SABOTEUR_COUNTS:
        for verification in VERIFICATIONS:
            # Trace the worst defended cell: the verification overhead
            # shows up in the bottleneck attribution there.
            traced = (
                trace
                and n_saboteurs == max(SABOTEUR_COUNTS)
                and verification == "replicate-3"
            )
            grid = make_grid(saboteur_plan(n_saboteurs), seed=seed,
                             trace=traced)
            if traced:
                tracer = grid.sim.tracer
            graph = build_galaxy_graph("e17-gal", resolution=16)
            report = grid.run(
                graph, iterations=N_FRAMES, run_until=200_000,
                verification=verification,
            )
            frames = [out[0].pixels for out in report.group_results]
            if baseline is None:
                # Trusted cell: no saboteurs, no verification.
                baseline = report.makespan
                reference = frames
            identical = all(
                np.array_equal(a, b) for a, b in zip(reference, frames)
            )
            integ = report.integrity
            rows.append(
                {
                    "saboteurs": n_saboteurs,
                    "verification": verification,
                    "makespan_s": report.makespan,
                    "overhead_pct": 100.0 * (report.makespan / baseline - 1.0),
                    "identical": identical,
                    "replicas": integ.get("replicas_issued", 0),
                    "tie_breaks": integ.get("tie_breaks", 0),
                    "overturned": integ.get("overturned", 0),
                    "convicted": len(integ.get("convicted", {})),
                }
            )
    return {"rows": rows, "tracer": tracer}


def test_e17_integrity_sweep(benchmark, record_bench):
    result, wall = timed(benchmark, run_sweep, kwargs={"trace": True})
    rows = result["rows"]
    by = {(r["saboteurs"], r["verification"]): r for r in rows}
    # Trust is free only while every peer is honest.
    assert by[(0, "none")]["identical"]
    for n in SABOTEUR_COUNTS[1:]:
        assert not by[(n, "none")]["identical"]
    # Voting restores exactness at every saboteur count and both k.
    for n in SABOTEUR_COUNTS:
        for verification in ("replicate-2", "replicate-3"):
            assert by[(n, verification)]["identical"]
    # The defence was really exercised: saboteurs lost votes and were
    # convicted once present.
    worst = by[(max(SABOTEUR_COUNTS), "replicate-3")]
    assert worst["overturned"] > 0
    assert worst["convicted"] >= 1
    # A clean fleet never needs a tie-break.
    assert by[(0, "replicate-3")]["tie_breaks"] == 0
    record_bench(
        "e17_integrity",
        seed=900,
        wall_s=wall,
        tracer=result["tracer"],
        rows=rows,
        table=render_table(
            [
                "saboteurs",
                "verification",
                "makespan (s)",
                "overhead (%)",
                "identical",
                "replicas",
                "tie-breaks",
                "overturned",
                "convicted",
            ],
            [
                (
                    r["saboteurs"],
                    r["verification"],
                    r["makespan_s"],
                    r["overhead_pct"],
                    r["identical"],
                    r["replicas"],
                    r["tie_breaks"],
                    r["overturned"],
                    r["convicted"],
                )
                for r in rows
            ],
            title=(
                f"E17  result integrity, galaxy farm ({N_FRAMES} frames, "
                f"{N_WORKERS} workers, tamper rate {TAMPER_RATE:g}): "
                "unverified runs corrupt, voted runs stay exact"
            ),
        ),
    )
