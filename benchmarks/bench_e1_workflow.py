"""E1 — Fig. 1 + Code Segment 1: workflow construction & XML round-trip.

Paper anchor: the visual Fig. 1 network and its XML task-graph encoding
("the graph itself is a text file that does not consume many resources").
We regenerate the workflow through the API, serialise, parse, re-execute,
and report graph size and the recovered signal.
"""

from repro.analysis import e1_workflow_roundtrip, render_kv


def test_e1_workflow_roundtrip(benchmark, save_result):
    result = benchmark.pedantic(e1_workflow_roundtrip, rounds=3, iterations=1)
    assert result["roundtrip_stable"]
    assert result["peak_hz"] == 64.0
    save_result(
        "e1_workflow",
        render_kv(
            [
                ("tasks in Fig.1 network", result["tasks"]),
                ("units inside GroupTask", result["group_members"]),
                ("task-graph XML size (bytes)", result["xml_bytes"]),
                ("XML round-trip stable", result["roundtrip_stable"]),
                ("recovered peak (Hz)", result["peak_hz"]),
            ],
            title="E1  Fig.1 workflow + Code Segment 1 XML round-trip",
        ),
    )
