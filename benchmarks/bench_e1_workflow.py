"""E1 — Fig. 1 + Code Segment 1: workflow construction & XML round-trip.

Paper anchor: the visual Fig. 1 network and its XML task-graph encoding
("the graph itself is a text file that does not consume many resources").
We regenerate the workflow through the API, serialise, parse, re-execute,
and report graph size and the recovered signal.
"""

from benchlib import timed

from repro.analysis import e1_workflow_roundtrip, render_kv


def test_e1_workflow_roundtrip(benchmark, record_bench):
    result, wall = timed(benchmark, e1_workflow_roundtrip, rounds=3)
    assert result["roundtrip_stable"]
    assert result["peak_hz"] == 64.0
    table = render_kv(
        [
            ("tasks in Fig.1 network", result["tasks"]),
            ("units inside GroupTask", result["group_members"]),
            ("task-graph XML size (bytes)", result["xml_bytes"]),
            ("XML round-trip stable", result["roundtrip_stable"]),
            ("recovered peak (Hz)", result["peak_hz"]),
        ],
        title="E1  Fig.1 workflow + Code Segment 1 XML round-trip",
    )
    record_bench(
        "e1_workflow",
        seed=0,
        wall_s=wall,
        rows={
            k: result[k]
            for k in ("tasks", "group_members", "xml_bytes",
                      "roundtrip_stable", "peak_hz")
        },
        table=table,
    )
