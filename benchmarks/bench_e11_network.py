"""E11 (ablation) — consumer DSL links vs LAN: where farming stops paying.

Paper anchor: the Consumer Grid explicitly targets "resources such as
DSL/Cable" (§1) rather than institutional LANs, and the galaxy demo ran
"using machines on a local network".  With link *contention* modelled
(sends queue on each node's uplink), the controller's DSL uplink
serialises frame distribution, so farm speedup saturates while the LAN
curve stays near-linear — the quantitative reason the paper's demo used
a LAN, and the regime any real Consumer Grid deployment must respect.
"""

from benchlib import timed

from repro.analysis import render_table, speedup
from repro.apps.galaxy import build_galaxy_graph, generate_snapshots
from repro.grid import ConsumerGrid
from repro.p2p import DSL_PROFILE, LAN_PROFILE

N_FRAMES = 16
N_PARTICLES = 3000  # ~120 kB per frame on the wire


def run_profile_sweep(worker_counts=(1, 2, 4, 8), seed=0, trace=False):
    rows = []
    tracer = None
    for label, profile in (("LAN", LAN_PROFILE), ("DSL", DSL_PROFILE)):
        base = None
        for k in worker_counts:
            key = f"e11-{label}-{k}"
            generate_snapshots(N_FRAMES, N_PARTICLES, seed=seed, register_as=key)
            # Trace the saturated configuration (DSL uplink, widest farm).
            traced = trace and label == "DSL" and k == worker_counts[-1]
            grid = ConsumerGrid(
                n_workers=k,
                seed=seed,
                worker_profile=profile,
                controller_profile=profile,
                worker_efficiency=1e-4,
                contention=True,
                trace=traced,
            )
            if traced:
                tracer = grid.sim.tracer
            graph = build_galaxy_graph(key, resolution=32, policy="parallel")
            report = grid.run(graph, iterations=N_FRAMES)
            if base is None:
                base = report.makespan
            rows.append(
                {
                    "link": label,
                    "workers": k,
                    "makespan_s": report.makespan,
                    "speedup": speedup(base, report.makespan),
                }
            )
    return {"rows": rows, "tracer": tracer}


def test_e11_network_profile_ablation(benchmark, record_bench):
    result, wall = timed(benchmark, run_profile_sweep, kwargs={"trace": True})
    rows = result["rows"]
    by = {(r["link"], r["workers"]): r for r in rows}
    # LAN scales ~linearly; DSL saturates against the controller uplink.
    assert by[("LAN", 8)]["speedup"] > 6.0
    assert by[("DSL", 8)]["speedup"] < 0.75 * by[("LAN", 8)]["speedup"]
    record_bench(
        "e11_network",
        seed=0,
        wall_s=wall,
        tracer=result["tracer"],
        rows=rows,
        table=render_table(
            ["link", "workers", "makespan (s)", "speedup"],
            [
                (r["link"], r["workers"], r["makespan_s"], r["speedup"])
                for r in rows
            ],
            title=(
                f"E11  farm speedup with link contention, {N_FRAMES} frames "
                f"of {N_PARTICLES} particles: LAN vs consumer DSL"
            ),
        ),
    )
