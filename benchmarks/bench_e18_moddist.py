"""E18 — module distribution fast path: replicas, chunking, revalidation.

The seed protocol ships every package from the portal repository, so a
farm deploy serialises all transfers on one consumer-DSL uplink.  E18
sweeps replica count × package size on that contended regime: the
controller pre-seeds k workers, which advertise as content-addressed
replicas and serve the rest of the fleet while the portal answers only
cheap head/revalidate traffic.  ``fetch_wait_s`` (the summed duration of
every mobility span) must drop at least 2× at replicas >= 2, with
results byte-identical to the repository-only run.
"""

from benchlib import timed

from repro.analysis import e18_moddist, render_table


def test_e18_moddist(benchmark, record_bench):
    result, wall = timed(
        benchmark,
        e18_moddist,
        kwargs={
            "replica_counts": (0, 1, 2, 4),
            "package_kbs": (128, 512),
            "n_workers": 8,
            "iterations": 8,
            "trace": True,
        },
    )
    by = {(r["package_kb"], r["replicas"]): r for r in result["rows"]}
    for pkg_kb in (128, 512):
        base = by[(pkg_kb, 0)]
        # Replicas must never change what the application computes.
        for replicas in (1, 2, 4):
            assert by[(pkg_kb, replicas)]["result_checksum"] == base["result_checksum"]
        # The acceptance bar: >= 2x less fleet time waiting on modules.
        assert by[(pkg_kb, 2)]["fetch_wait_s"] * 2 <= base["fetch_wait_s"]
        assert by[(pkg_kb, 4)]["fetch_wait_s"] * 2 <= base["fetch_wait_s"]
        # The portal stops being the byte source...
        assert by[(pkg_kb, 2)]["repo_bytes"] < base["repo_bytes"]
        assert by[(pkg_kb, 2)]["peer_fetches"] > 0
        # ...and pre-seeded workers revalidate instead of re-downloading.
        assert by[(pkg_kb, 2)]["revalidations"] > 0
        # The whole deploy gets faster, not just the accounting.
        assert by[(pkg_kb, 2)]["makespan_s"] < base["makespan_s"]
    rows = [
        (
            r["package_kb"],
            r["replicas"],
            round(r["fetch_wait_s"], 2),
            round(r["makespan_s"], 2),
            r["repo_packages"],
            r["peer_fetches"],
            r["revalidations"],
            r["repo_chunks"],
        )
        for r in result["rows"]
    ]
    record_bench(
        "e18_moddist",
        seed=0,
        wall_s=wall,
        tracer=result["tracer"],
        rows=result["rows"],
        table=render_table(
            ["pkg KB", "replicas", "fetch wait s", "makespan s", "repo pkgs",
             "peer fetches", "revalidations", "chunks"],
            rows,
            title=(
                f"E18  module distribution: {result['workers']}-worker farm, "
                "contended DSL uplink, 64 KB chunks"
            ),
        ),
    )
