"""E3 — Fig. 3/4: the distributed pipelined linear network.

Paper anchor: "behave as a macroscopic pipeline processor where one
machine performs one specific task and then pipes data onto another
machine" and Fig. 4's "simple distributed pipelined linear network".
We measure makespan vs pipeline depth against the sequential and ideal-
pipeline bounds: stages overlap, so gain approaches the stage count.
"""

from benchlib import timed

from repro.analysis import e3_pipeline_throughput, render_table


def test_e3_pipeline_throughput(benchmark, record_bench):
    result, wall = timed(
        benchmark,
        e3_pipeline_throughput,
        kwargs={"stage_counts": (2, 4, 8), "iterations": 16, "trace": True},
    )
    rows = [
        (
            r["stages"],
            r["makespan_s"],
            r["sequential_s"],
            r["ideal_pipeline_s"],
            r["pipeline_gain"],
        )
        for r in result["rows"]
    ]
    # Pipelining must beat sequential and track the ideal bound.
    for r in result["rows"]:
        assert r["makespan_s"] < 0.75 * r["sequential_s"]
        assert r["makespan_s"] >= 0.9 * r["ideal_pipeline_s"]
    record_bench(
        "e3_pipeline",
        seed=0,
        wall_s=wall,
        sim_s=result["rows"][-1]["makespan_s"],
        tracer=result["tracer"],
        rows=result["rows"],
        table=render_table(
            ["stages", "makespan (s)", "sequential (s)", "ideal pipe (s)", "gain"],
            rows,
            title=f"E3  p2p pipeline over peers, {result['iterations']} frames",
        ),
    )
