"""E16 (scale) — volunteer-swarm heartbeat gossip at 10^4-10^5 peers.

Paper anchor: the Consumer Grid only pays off at volunteer-swarm scale —
the CERN peer-group study (Jan et al., PAPERS.md) argues for the
10^5-10^6-peer regime, and every ROADMAP scale-out item (super-peer
discovery, federation, factorial run tables) multiplies event volume
through the simkernel hot path.  This bench drives the event loop in the
swarm regime the calendar queue is built for: heartbeat cohorts landing
whole groups of peers on shared timestamps, round after round.

The scenario is intentionally *kernel-shaped* rather than app-shaped:
every peer sends one heartbeat to its ring successor each round, with
peers staggered across a fixed number of cohort offsets — so the
pending-event set stays 10^4-10^5 deep with massive timestamp ties,
exactly the structure ``simkernel.queues.CalendarQueue`` exploits (see
``docs/performance.md``).  Jitter is disabled so delivery times quantize
onto shared timestamps and the run draws no RNG streams.

No tracer is attached (a 10^5-peer trace would dwarf the workload), so
the bench gate skips critical-path comparison for this scenario; the
committed baseline documents scale, event counts and the
events-per-second figure instead.
"""

from benchlib import timed

from repro.analysis import render_table
from repro.p2p import SimNetwork
from repro.p2p.network import Message
from repro.simkernel import Simulator

ROUNDS = 5
COHORTS = 16  # distinct heartbeat offsets per round
PERIOD_S = 30.0
STAGGER_S = 0.25


def run_swarm(n_peers: int, rounds: int = ROUNDS, seed: int = 0) -> dict:
    """One heartbeat-gossip run; returns counts and modelled makespan."""
    sim = Simulator(seed=seed)
    net = SimNetwork(sim, jitter_fraction=0.0)
    delivered = [0]

    def handler(msg):
        delivered[0] += 1

    ids = [f"p{i:06d}" for i in range(n_peers)]
    for pid in ids:
        net.add_node(pid, handler)

    send = net.send

    def make_cohort(offset: int):
        def fire() -> None:
            for i in range(offset, n_peers, COHORTS):
                send(Message(kind="hb", src=ids[i], dst=ids[(i + 1) % n_peers]))

        return fire

    for r in range(rounds):
        for g in range(COHORTS):
            sim.call_at(r * PERIOD_S + g * STAGGER_S, make_cohort(g))
    sim.run()
    return {
        "n_peers": n_peers,
        "rounds": rounds,
        "sent": net.stats.sent,
        "delivered": delivered[0],
        "events": sim.events_executed,
        "makespan_s": sim.now,
    }


def run_scale_sweep(peer_counts=(10_000, 100_000), seed=0):
    import time

    rows = []
    for n in peer_counts:
        t0 = time.perf_counter()
        res = run_swarm(n, seed=seed)
        wall = time.perf_counter() - t0
        res["wall_s"] = round(wall, 4)
        res["events_per_s"] = round(res["events"] / wall)
        rows.append(res)
    return rows


def test_e16_swarm_scale(benchmark, record_bench):
    rows, wall = timed(benchmark, run_scale_sweep)
    by = {r["n_peers"]: r for r in rows}
    # The headline target: a 100k-peer run completes, delivering every
    # heartbeat (all peers online, no loss configured).
    big = by[100_000]
    assert big["delivered"] == big["sent"] == 100_000 * ROUNDS
    assert by[10_000]["delivered"] == by[10_000]["sent"] == 10_000 * ROUNDS
    # Same modelled horizon regardless of scale: timing depends only on
    # the (shared) link model, not on swarm size.
    assert big["makespan_s"] == by[10_000]["makespan_s"]
    record_bench(
        "e16_swarm",
        seed=0,
        wall_s=wall,
        sim_s=big["makespan_s"],
        rows=rows,
        table=render_table(
            ["peers", "rounds", "sent", "delivered", "events", "makespan (s)", "events/s"],
            [
                (
                    r["n_peers"],
                    r["rounds"],
                    r["sent"],
                    r["delivered"],
                    r["events"],
                    r["makespan_s"],
                    r["events_per_s"],
                )
                for r in rows
            ],
            title=(
                "E16  volunteer-swarm heartbeat gossip: "
                f"{ROUNDS} rounds, {COHORTS} staggered cohorts per round"
            ),
        ),
    )
