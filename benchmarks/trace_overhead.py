#!/usr/bin/env python
"""Tracing/telemetry-overhead gate: E13 with observability off must not regress.

Runs the E13 heterogeneous-farm workload three ways — observability
disabled (the default ``NullTracer``), tracing enabled, and tracing plus
live telemetry (sampler + health monitor + flight recorder) — and
enforces two things:

1. **Correctness / passivity**: the modelled makespans must be *exactly*
   equal in all three modes and must match the recorded baseline in
   ``benchmarks/results/BENCH_e13_dispatch.json``.  Tracing and
   telemetry are passive by contract (no events scheduled, no RNG
   drawn), so any drift at all is a bug — this is the deterministic form
   of the "<5% regression" gate, and it holds at 0%.
2. **Wall-clock sanity** (informational): best-of-N wall times for both
   modes are printed so CI logs show the real overhead ratio.  Wall time
   is not asserted — the workload runs in tens of milliseconds, where
   scheduler noise exceeds the 5% budget by itself.

Exit status 0 = gate passed.  Run directly or via CI:

    PYTHONPATH=src python benchmarks/trace_overhead.py
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_e13_dispatch import build_hetero_grid, heavy_graph  # noqa: E402

from repro.observe import Tracer  # noqa: E402

#: allowed relative drift vs the recorded baseline (the CI contract says
#: <5%; determinism means the observed drift is exactly 0.0)
TOLERANCE = 0.05
ROUNDS = 3
BASELINE_FILE = (
    Path(__file__).resolve().parent / "results" / "BENCH_e13_dispatch.json"
)


def run_once(dispatch: str, seed: int, mode: str) -> tuple[float, float]:
    """One E13 run; returns (modelled makespan, wall seconds).

    ``mode`` is ``off`` (NullTracer), ``traced``, or ``telemetry``
    (tracing plus the live sampler/health monitor/flight recorder).
    """
    wall_start = time.perf_counter()
    grid = build_hetero_grid(seed)
    if mode in ("traced", "telemetry"):
        grid.sim.install_tracer(Tracer())
    if mode == "telemetry":
        grid.enable_telemetry(interval=1.0)
    report = grid.run(heavy_graph(), iterations=24, dispatch=dispatch)
    return report.makespan, time.perf_counter() - wall_start


def read_baseline() -> dict[str, float]:
    """Read recorded makespans from results/BENCH_e13_dispatch.json."""
    baselines: dict[str, float] = {}
    if not BASELINE_FILE.exists():
        return baselines
    payload = json.loads(BASELINE_FILE.read_text())
    for row in payload.get("rows") or ():
        baselines[row["dispatch"]] = float(row["makespan_s"])
    return baselines


def main() -> int:
    baselines = read_baseline()
    failures: list[str] = []
    print("observability-overhead gate (E13 heterogeneous farm, 24 frames)")
    for dispatch, seed in (("round_robin", 301), ("weighted", 302)):
        walls_off, walls_on, walls_telemetry = [], [], []
        makespan_off = makespan_on = makespan_telemetry = None
        for _ in range(ROUNDS):
            m_off, w_off = run_once(dispatch, seed, mode="off")
            m_on, w_on = run_once(dispatch, seed, mode="traced")
            m_live, w_live = run_once(dispatch, seed, mode="telemetry")
            makespan_off, makespan_on, makespan_telemetry = m_off, m_on, m_live
            walls_off.append(w_off)
            walls_on.append(w_on)
            walls_telemetry.append(w_live)

        if makespan_on != makespan_off:
            failures.append(
                f"{dispatch}: traced makespan {makespan_on!r} != "
                f"untraced {makespan_off!r} — tracing perturbed the run"
            )
        if makespan_telemetry != makespan_off:
            failures.append(
                f"{dispatch}: telemetered makespan {makespan_telemetry!r} != "
                f"bare {makespan_off!r} — telemetry perturbed the run"
            )
        baseline = baselines.get(dispatch)
        if baseline is not None:
            drift = abs(makespan_off - baseline) / baseline
            if drift >= TOLERANCE:
                failures.append(
                    f"{dispatch}: makespan {makespan_off:.3f}s drifted "
                    f"{drift:.1%} from recorded baseline {baseline:.3f}s "
                    f"(budget {TOLERANCE:.0%})"
                )
        else:
            drift = float("nan")
        ratio = min(walls_on) / min(walls_off)
        ratio_live = min(walls_telemetry) / min(walls_off)
        print(
            f"  {dispatch:<12} makespan {makespan_off:10.3f}s "
            f"(drift vs baseline {drift:.2%})  "
            f"wall best-of-{ROUNDS}: off {min(walls_off) * 1e3:6.1f}ms / "
            f"traced {min(walls_on) * 1e3:6.1f}ms (x{ratio:.2f}) / "
            f"telemetry {min(walls_telemetry) * 1e3:6.1f}ms "
            f"(x{ratio_live:.2f}, informational)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("gate passed: modelled makespans identical off/traced/telemetered "
          "and within 5% of the recorded baseline (observed drift 0%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
