"""E15 (robustness) — recovery overhead under churn vs a fault-free run.

Paper anchor: the Consumer Grid's peers "may disconnect at any time"
(§1), yet the paper never quantifies what surviving that costs.  This
bench runs the galaxy-formation farm through the chaos layer at each
preset intensity and measures the price of coming back: makespan
overhead vs the fault-free baseline, redispatches, suspicions and
heartbeat traffic.  Results must stay *bit-identical* at every level —
robustness that changes answers is not robustness.
"""

import numpy as np

from benchlib import timed

from repro.analysis import render_table
from repro.apps.galaxy import build_galaxy_graph, generate_snapshots
from repro.faults import chaos
from repro.grid import ConsumerGrid
from repro.p2p import LAN_PROFILE

N_WORKERS = 6
N_FRAMES = 12
N_PARTICLES = 300
LEVELS = (None, "mild", "moderate", "heavy")


def make_grid(plan, seed=900, trace=False):
    return ConsumerGrid(
        n_workers=N_WORKERS,
        seed=seed,
        worker_profile=LAN_PROFILE,
        controller_profile=LAN_PROFILE,
        worker_efficiency=1e-5,
        heartbeat_interval=1.0,
        suspect_after_missed=2,
        retry_timeout=30.0,
        retry_interval=2.0,
        fault_plan=plan,
        trace=trace,
    )


def run_levels(seed=900, chaos_seed=5, trace=False):
    workers = [f"worker-{i}" for i in range(N_WORKERS)]
    generate_snapshots(N_FRAMES, N_PARTICLES, seed=3, register_as="e15-gal")
    rows = []
    baseline = None
    reference = None
    tracer = None
    for level in LEVELS:
        plan = (
            chaos(level, seed=chaos_seed, workers=workers,
                  start=5.0, horizon=40.0)
            if level
            else None
        )
        # Trace the heaviest storm — the run where redispatch/recovery
        # shows up in the bottleneck attribution.
        traced = trace and level == "heavy"
        grid = make_grid(plan, seed=seed, trace=traced)
        if traced:
            tracer = grid.sim.tracer
        graph = build_galaxy_graph("e15-gal", resolution=16)
        report = grid.run(graph, iterations=N_FRAMES, run_until=100_000)
        frames = [out[0].pixels for out in report.group_results]
        if baseline is None:
            baseline = report.makespan
            reference = frames
        identical = all(
            np.array_equal(a, b) for a, b in zip(reference, frames)
        )
        rec = report.recovery
        rows.append(
            {
                "level": level or "none",
                "makespan_s": report.makespan,
                "overhead_pct": 100.0 * (report.makespan / baseline - 1.0),
                "redispatches": rec["redispatches"],
                "suspected": len(rec["suspected"]),
                "heartbeats": rec["heartbeats"],
                "identical": identical,
            }
        )
    return {"rows": rows, "tracer": tracer}


def test_e15_recovery_overhead(benchmark, record_bench):
    result, wall = timed(benchmark, run_levels, kwargs={"trace": True})
    rows = result["rows"]
    by = {r["level"]: r for r in rows}
    # Correctness is non-negotiable at every chaos level.
    assert all(r["identical"] for r in rows)
    # Recovery costs time once the storm is real.  (Heavy isn't always
    # slower than moderate: plans are independent seeded draws.)
    assert by["moderate"]["overhead_pct"] > 10.0
    assert by["heavy"]["overhead_pct"] > 10.0
    # The detector was actually doing the work under real churn.
    assert by["moderate"]["suspected"] >= 1
    assert by["moderate"]["redispatches"] >= 1
    record_bench(
        "e15_recovery",
        seed=900,
        wall_s=wall,
        tracer=result["tracer"],
        rows=rows,
        table=render_table(
            [
                "chaos level",
                "makespan (s)",
                "overhead (%)",
                "redispatches",
                "suspected",
                "heartbeats",
                "identical",
            ],
            [
                (
                    r["level"],
                    r["makespan_s"],
                    r["overhead_pct"],
                    r["redispatches"],
                    r["suspected"],
                    r["heartbeats"],
                    r["identical"],
                )
                for r in rows
            ],
            title=(
                f"E15  recovery overhead under chaos, galaxy farm "
                f"({N_FRAMES} frames, {N_WORKERS} workers): "
                "results stay identical at every level"
            ),
        ),
    )
