"""E13 (ablation) — placement-aware dispatch on a heterogeneous fleet.

Paper anchor (abstract): Triana "can support the user in making placement
decisions for their modules"; §4: discovery by "CPU capability".  Real
consumer fleets are heterogeneous — we compare blind round-robin against
capability-weighted dispatch on a fleet that mixes 4 GHz and 1 GHz
volunteers.

A second section exercises message granularity on the paper's own DSL
profile: with a contended 32 kB/s controller uplink and tiny per-frame
payloads, the per-message envelope dominates the wire, so the ``chunked``
policy (k iterations per message) beats the one-message-per-iteration
``parallel`` farm on makespan with identical dealing.
"""

from benchlib import timed

from repro.analysis import render_table
from repro.core import TaskGraph
from repro.grid import ConsumerGrid
from repro.p2p import LAN_PROFILE, NodeProfile, Peer
from repro.service import TrianaService


def heavy_graph():
    g = TaskGraph("farm")
    g.add_task("Wave", "Wave", samples=8192)
    g.add_task("FFT", "FFT")
    g.add_task("Grapher", "Grapher")
    g.connect("Wave", 0, "FFT", 0)
    g.connect("FFT", 0, "Grapher", 0)
    g.group_tasks("G", ["FFT"], policy="parallel")
    return g


def build_hetero_grid(seed, fast_cpus=2, slow_cpus=2, trace=False):
    grid = ConsumerGrid(
        n_workers=fast_cpus,
        seed=seed,
        worker_profile=NodeProfile(
            cpu_flops=4e9, up_bps=LAN_PROFILE.up_bps,
            down_bps=LAN_PROFILE.down_bps, latency_s=LAN_PROFILE.latency_s,
        ),
        controller_profile=LAN_PROFILE,
        worker_efficiency=1e-5,
        trace=trace,
    )
    for i in range(slow_cpus):
        peer = Peer(
            f"slow-{i}",
            grid.network,
            profile=NodeProfile(
                cpu_flops=1e9, up_bps=LAN_PROFILE.up_bps,
                down_bps=LAN_PROFILE.down_bps, latency_s=LAN_PROFILE.latency_s,
            ),
        )
        grid.discovery.attach(peer)
        svc = TrianaService(peer, repository_host="portal", efficiency=1e-5)
        grid.discovery.publish(peer, svc.advertisement())
        grid.workers[peer.peer_id] = svc
        grid.worker_peers[peer.peer_id] = peer
    grid.sim.run()
    return grid


def run_dispatch_ablation(iterations=24, trace=False):
    rows = []
    tracer = None
    for dispatch, seed in (("round_robin", 301), ("weighted", 302)):
        traced = trace and dispatch == "weighted"
        grid = build_hetero_grid(seed, trace=traced)
        if traced:
            tracer = grid.sim.tracer
        report = grid.run(heavy_graph(), iterations=iterations, dispatch=dispatch)
        loads = {w: svc.stats.iterations for w, svc in grid.workers.items()}
        rows.append(
            {
                "dispatch": dispatch,
                "makespan_s": report.makespan,
                "fast_load": sum(v for k, v in loads.items() if k.startswith("worker")),
                "slow_load": sum(v for k, v in loads.items() if k.startswith("slow")),
            }
        )
    return {"rows": rows, "tracer": tracer}


def tiny_farm_graph(policy, samples=8):
    g = TaskGraph("tiny-farm")
    g.add_task("Wave", "Wave", samples=samples)
    g.add_task("FFT", "FFT")
    g.add_task("Grapher", "Grapher")
    g.connect("Wave", 0, "FFT", 0)
    g.connect("FFT", 0, "Grapher", 0)
    g.group_tasks("G", ["FFT"], policy=policy)
    return g


def run_chunking_ablation(iterations=192, trace=False):
    """parallel vs chunked on a contended DSL uplink, identical dealing.

    Both runs use round-robin dealing on the same 4-worker DSL fleet with
    ``contention=True``, so the only difference is message granularity:
    64 B of envelope per message amortised over k=8 iterations.
    """
    rows = []
    tracer = None
    for policy in ("parallel", "chunked"):
        traced = trace and policy == "chunked"
        grid = ConsumerGrid(n_workers=4, seed=401, contention=True, trace=traced)
        if traced:
            tracer = grid.sim.tracer
        report = grid.run(tiny_farm_graph(policy), iterations=iterations)
        kinds = grid.network.stats.by_kind
        rows.append(
            {
                "policy": policy,
                "makespan_s": report.makespan,
                "exec_messages": kinds.get("group-exec", 0),
                "batch_messages": kinds.get("group-exec-batch", 0),
                "bytes_sent": grid.network.stats.bytes_sent,
            }
        )
    return {"rows": rows, "tracer": tracer}


def test_e13_dispatch_ablation(benchmark, record_bench):
    result, wall = timed(
        benchmark, run_dispatch_ablation, kwargs={"trace": True}
    )
    rows = result["rows"]
    by = {r["dispatch"]: r for r in rows}
    assert by["weighted"]["makespan_s"] < 0.8 * by["round_robin"]["makespan_s"]
    assert by["weighted"]["fast_load"] > by["weighted"]["slow_load"]
    record_bench(
        "e13_dispatch",
        seed=302,
        wall_s=wall,
        sim_s=by["weighted"]["makespan_s"],
        tracer=result["tracer"],
        rows=rows,
        table=render_table(
            ["dispatch", "makespan (s)", "iters on 4 GHz pair",
             "iters on 1 GHz pair"],
            [
                (r["dispatch"], r["makespan_s"], r["fast_load"], r["slow_load"])
                for r in rows
            ],
            title=(
                "E13  heterogeneous farm (2× 4 GHz + 2× 1 GHz volunteers, "
                "24 frames)"
            ),
        ),
    )


def test_e13_chunked_uplink(benchmark, record_bench):
    result, wall = timed(
        benchmark, run_chunking_ablation, kwargs={"trace": True}
    )
    by = {r["policy"]: r for r in result["rows"]}
    # Same dealing, fewer envelopes: batching must win on the contended
    # DSL uplink, ship fewer bytes, and replace exec singles with batches.
    assert by["chunked"]["makespan_s"] < 0.95 * by["parallel"]["makespan_s"]
    assert by["chunked"]["bytes_sent"] < by["parallel"]["bytes_sent"]
    assert by["parallel"]["batch_messages"] == 0
    assert by["chunked"]["exec_messages"] == 0
    assert by["chunked"]["batch_messages"] > 0
    record_bench(
        "e13_chunking",
        seed=401,
        wall_s=wall,
        sim_s=by["chunked"]["makespan_s"],
        tracer=result["tracer"],
        rows=result["rows"],
        table=render_table(
            ["policy", "makespan (s)", "exec msgs", "batch msgs",
             "bytes on the wire"],
            [
                (r["policy"], r["makespan_s"], r["exec_messages"],
                 r["batch_messages"], r["bytes_sent"])
                for r in result["rows"]
            ],
            title=(
                "E13b  message granularity on a contended DSL uplink "
                "(4 volunteers, 192 frames, round-robin dealing)"
            ),
        ),
    )
