"""E6 — Case 3: multi-site database pipeline discovery/bind/execute.

Paper anchor (§3.6.3): four services (access/manipulate/visualise/verify)
on different peers; "Triana system looks on the network to discover peers
which offer each of these services"; selection "based on other options
that a given service provides (such as accuracy...)".
We measure the discover→bind→execute sequence and check routing.
"""

import pytest

from benchlib import timed

from repro.analysis import render_table
from repro.apps.database import (
    Database,
    DatabasePipeline,
    DatabaseSite,
    QuerySpec,
    run_pipeline,
)
from repro.observe import Tracer
from repro.p2p import CentralIndexDiscovery, Peer, SimNetwork
from repro.simkernel import Simulator

CSV = "name, kind, mass\n" + "\n".join(
    f"gal{i:03d}, {'spiral' if i % 2 else 'elliptical'}, {9.0 + (i % 40) / 10}"
    for i in range(200)
)


def run_case3(trace=False):
    sim = Simulator(seed=11, tracer=Tracer() if trace else None)
    net = SimNetwork(sim, jitter_fraction=0.0)
    disc = CentralIndexDiscovery(query_window=1.0)
    index = Peer("index", net)
    disc.attach(index)
    disc.set_index(index)
    db = Database()
    db.load_csv("galaxies", CSV)
    sites = []
    for pid, kw in [
        ("site-a", dict(database=db, kinds=("data-access", "data-manipulate"),
                        accuracy=0.5)),
        ("site-b", dict(kinds=("data-manipulate", "data-visualise"), accuracy=0.9)),
        ("site-c", dict(kinds=("data-verify",), accuracy=0.7)),
    ]:
        p = Peer(pid, net)
        disc.attach(p)
        sites.append(DatabaseSite(p, disc, **kw))
    user_peer = Peer("user", net)
    disc.attach(user_peer)
    user = DatabasePipeline(user_peer, disc)
    sim.run()
    t0 = sim.now
    spec = QuerySpec(
        table="galaxies",
        where=(("kind", "==", "spiral"), ("mass", ">", 11.0)),
        manipulate=("topk", "mass", 10),
        x_column="mass",
        y_column="mass",
        expect_min_rows=5,
    )
    envelope = sim.run(until=run_pipeline(user, sites, spec))
    return {
        "envelope": envelope,
        "elapsed_s": sim.now - t0,
        "messages": net.stats.sent,
        "sites": [s.split("@")[1] for s in envelope["trail"]],
        "tracer": sim.tracer if trace else None,
    }


def test_e6_database_pipeline(benchmark, record_bench):
    result, wall = timed(
        benchmark, run_case3, kwargs={"trace": True}, rounds=3
    )
    env = result["envelope"]
    assert env["report"]["ok"]
    assert len(env["table"]) == 10
    # Stage placement crosses sites: access at the archive, manipulate at
    # the accurate compute site, verification at the bureau.
    assert result["sites"] == ["site-a", "site-b", "site-b", "site-c"]
    rows = [
        (kind, svc.split("@")[0], svc.split("@")[1])
        for kind, svc in zip(
            ("access", "manipulate", "visualise", "verify"), env["trail"]
        )
    ]
    table = render_table(
        ["stage", "service", "site"],
        rows,
        title="E6  database pipeline service-bind (chosen by accuracy)",
    )
    footer = (
        f"\nrows returned: {env['report']['rows']}   verification: "
        f"{'ok' if env['report']['ok'] else 'FAILED'}   "
        f"discover+bind+execute: {result['elapsed_s']:.3f} s sim-time, "
        f"{result['messages']} messages"
    )
    record_bench(
        "e6_database",
        seed=11,
        wall_s=wall,
        sim_s=result["elapsed_s"],
        tracer=result["tracer"],
        rows=[list(r) for r in rows],
        table=table + footer,
    )
