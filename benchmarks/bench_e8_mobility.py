"""E8 — code mobility: on-demand download vs sticky caching.

Paper anchor (§3): the on-demand model "overcomes the problem of having
inconsistent versions of executables (as the executable must be requested
from the owner whenever an execution is to be undertaken)" and suits
"resource-constrained device[s]" that "selectively download and release
executable modules".  We measure the version-consistency / traffic trade
and LRU behaviour under a Zipf module workload with periodic releases.
"""

from benchlib import timed

from repro.analysis import e8_mobility, render_table


def test_e8_mobility(benchmark, record_bench):
    result, wall = timed(
        benchmark,
        e8_mobility,
        kwargs={
            "n_modules": 60,
            "n_requests": 300,
            "capacities": (4, 16, 64),
            "trace": True,
        },
    )
    rows = [
        (
            r["policy"],
            r["cache_slots"],
            r["bytes_downloaded"],
            r["network_messages"],
            r["evictions"],
            r["stale_executions"],
        )
        for r in result["rows"]
    ]
    by = {(r["policy"], r["cache_slots"]): r for r in result["rows"]}
    # On-demand: zero stale executions at any cache size (the paper's
    # consistency claim); sticky: cheaper but can run stale code.
    for slots in (4, 16, 64):
        assert by[("on_demand", slots)]["stale_executions"] == 0
    assert by[("sticky", 64)]["stale_executions"] > 0
    assert (
        by[("sticky", 64)]["bytes_downloaded"]
        < by[("on_demand", 64)]["bytes_downloaded"]
    )
    # Constrained devices evict under pressure.
    assert by[("on_demand", 4)]["evictions"] > by[("on_demand", 64)]["evictions"]
    record_bench(
        "e8_mobility",
        seed=0,
        wall_s=wall,
        tracer=result["tracer"],
        rows=result["rows"],
        table=render_table(
            ["policy", "cache slots", "bytes dl", "messages", "evictions",
             "stale execs"],
            rows,
            title=(
                f"E8  module mobility: {result['modules']} modules, "
                "Zipf requests, releases every 50 requests"
            ),
        ),
    )
