"""E4 — Case 1: galaxy-formation frame farm speedup.

Paper anchor: "the user can visualise the galaxy formation in a fraction
of the time than it would if the simulation was performed on a single
machine" (§3.6.1, demonstrated at the 2002 All Hands Meeting).
We farm SPH column-density rendering over 1..8 peers and report the
speedup curve.
"""

from repro.analysis import e4_galaxy_speedup, render_table


def test_e4_galaxy_speedup(benchmark, save_result):
    result = benchmark.pedantic(
        e4_galaxy_speedup,
        kwargs={"worker_counts": (1, 2, 4, 8), "n_frames": 16},
        rounds=1,
        iterations=1,
    )
    rows = [
        (r["workers"], r["makespan_s"], r["speedup"], r["efficiency"])
        for r in result["rows"]
    ]
    by_workers = {r["workers"]: r for r in result["rows"]}
    assert by_workers[4]["speedup"] > 3.0
    assert by_workers[8]["speedup"] > 5.0
    save_result(
        "e4_galaxy",
        render_table(
            ["workers", "makespan (s)", "speedup", "efficiency"],
            rows,
            title=f"E4  galaxy render farm, {result['frames']} frames",
        ),
    )
