"""E4 — Case 1: galaxy-formation frame farm speedup.

Paper anchor: "the user can visualise the galaxy formation in a fraction
of the time than it would if the simulation was performed on a single
machine" (§3.6.1, demonstrated at the 2002 All Hands Meeting).
We farm SPH column-density rendering over 1..8 peers and report the
speedup curve.
"""

from benchlib import timed

from repro.analysis import e4_galaxy_speedup, render_table


def test_e4_galaxy_speedup(benchmark, record_bench):
    result, wall = timed(
        benchmark,
        e4_galaxy_speedup,
        kwargs={"worker_counts": (1, 2, 4, 8), "n_frames": 16, "trace": True},
    )
    rows = [
        (r["workers"], r["makespan_s"], r["speedup"], r["efficiency"])
        for r in result["rows"]
    ]
    by_workers = {r["workers"]: r for r in result["rows"]}
    assert by_workers[4]["speedup"] > 3.0
    assert by_workers[8]["speedup"] > 5.0
    record_bench(
        "e4_galaxy",
        seed=0,
        wall_s=wall,
        sim_s=by_workers[8]["makespan_s"],
        tracer=result["tracer"],
        rows=result["rows"],
        table=render_table(
            ["workers", "makespan (s)", "speedup", "efficiency"],
            rows,
            title=f"E4  galaxy render farm, {result['frames']} frames",
        ),
    )
