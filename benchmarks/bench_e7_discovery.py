"""E7 — discovery-protocol scaling: flooding vs rendezvous vs central.

Paper anchor (§4): "A number of P2P application utilise a 'flooding'
mechanism to forward messages to maximise reachability.  This severely
restricts the scalability of such approaches"; Triana uses JXTA
rendezvous discovery instead, and the paper cites Napster's central
index as prior art.  We make the claim quantitative: messages per query
vs network size for all three strategies.
"""

from benchlib import timed

from repro.analysis import e7_discovery_scaling, render_table


def test_e7_discovery_scaling(benchmark, record_bench):
    result, wall = timed(
        benchmark, e7_discovery_scaling, kwargs={"sizes": (16, 64, 256)}
    )
    rows = [
        (r["peers"], r["strategy"], r["messages_per_query"], r["recall"],
         r["latency_s"])
        for r in result["rows"]
    ]
    by = {(r["peers"], r["strategy"]): r for r in result["rows"]}
    # Flooding cost grows with the network; rendezvous and central do not.
    assert (
        by[(256, "flooding")]["messages_per_query"]
        > 10 * by[(16, "flooding")]["messages_per_query"]
    )
    assert (
        by[(256, "rendezvous")]["messages_per_query"]
        == by[(16, "rendezvous")]["messages_per_query"]
    )
    assert by[(256, "central")]["messages_per_query"] == 2
    for r in result["rows"]:
        assert r["recall"] == 1.0
    record_bench(
        "e7_discovery",
        seed=0,
        wall_s=wall,
        rows=result["rows"],
        table=render_table(
            ["peers", "strategy", "msgs/query", "recall", "latency (s)"],
            rows,
            title="E7  discovery scaling (one query for all services)",
        ),
    )
