"""E2 — Fig. 2: AccumStat averaging pulls the sine wave out of the noise.

Paper anchor: "two outputs, one taken after the first iteration (notice
that the signal is buried in the noise) and the other after 20 iterations".
We print the full SNR(n) series; white-noise averaging should approach a
√n gain.
"""

from benchlib import timed

from repro.analysis import e2_accumstat_snr, render_table


def test_e2_accumstat_snr_series(benchmark, record_bench):
    result, wall = timed(
        benchmark, e2_accumstat_snr, kwargs={"max_iterations": 20}, rounds=3
    )
    assert result["snr_n"] > 1.5 * result["snr_1"]
    # Fig. 2's visual claim, literally: buried at n=1, unmistakable at 20.
    assert result["buried_at_1"]
    assert result["visible_at_n"]
    rows = [(n, snr, peak) for n, snr, peak in result["series"]]
    table = render_table(
        ["iterations", "SNR of 64 Hz line", "64 Hz is the tallest peak"],
        rows,
        title="E2  Fig.2: averaged-spectrum SNR vs iterations",
    )
    footer = (
        f"\nSNR gain at n=20: {result['gain']:.2f}x "
        f"(ideal white-noise gain sqrt(20) = {result['sqrt_n']:.2f}); "
        "signal buried at n=1, dominant by n=20 — the Fig. 2 panels."
    )
    record_bench(
        "e2_accumstat",
        seed=0,
        wall_s=wall,
        rows=[list(row) for row in result["series"]],
        table=table + footer,
    )
