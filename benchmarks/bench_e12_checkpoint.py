"""E12 (ablation) — checkpointed migration vs restart-on-churn.

Paper anchor (§3.6.2): "A check-pointing mechanism may also be employed
to migrate computation if necessary."  We quantify what checkpointing
buys: the same churned volunteer fleet processes the inspiral stream
with work either resumed from its interruption point or restarted from
scratch.
"""

from benchlib import timed

from repro.analysis import render_table, simulate_volunteer_fleet
from repro.resources import PoissonChurn


def run_checkpoint_ablation(n_peers=34, n_chunks=24, seed=0):
    factory = lambda pid: PoissonChurn(2 * 3600.0, 1 * 3600.0)
    rows = []
    for checkpointing in (True, False):
        r = simulate_volunteer_fleet(
            n_peers,
            n_chunks=n_chunks,
            availability_factory=factory,
            checkpointing=checkpointing,
            seed=seed,
        )
        rows.append(
            {
                "mode": "checkpoint+migrate" if checkpointing else "restart",
                "peers": n_peers,
                "chunks_done": r["chunks_done"],
                "mean_lag_h": r["mean_lag_s"] / 3600.0,
                "max_lag_h": r["max_lag_s"] / 3600.0,
                "restarts": r["restarts"],
            }
        )
    return rows


def test_e12_checkpoint_ablation(benchmark, record_bench):
    rows, wall = timed(benchmark, run_checkpoint_ablation)
    by = {r["mode"]: r for r in rows}
    assert by["checkpoint+migrate"]["restarts"] == 0
    assert by["restart"]["restarts"] > 0
    assert (
        by["checkpoint+migrate"]["mean_lag_h"] <= by["restart"]["mean_lag_h"]
    )
    record_bench(
        "e12_checkpoint",
        seed=0,
        wall_s=wall,
        rows=rows,
        table=render_table(
            ["mode", "peers", "chunks done", "mean lag (h)", "max lag (h)",
             "restarts"],
            [
                (r["mode"], r["peers"], r["chunks_done"], r["mean_lag_h"],
                 r["max_lag_h"], r["restarts"])
                for r in rows
            ],
            title=(
                "E12  churned inspiral fleet: resume-from-checkpoint vs "
                "restart-from-scratch"
            ),
        ),
    )
