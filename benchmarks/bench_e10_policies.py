"""E10 (ablation) — distribution policy and granularity choices.

Paper anchor (§3.3): the two shipped policies ("Parallel is a farming out
mechanism ... Peer to Peer means distributing the group vertically") and
the grouping design decision ("the user has the complete control of
choosing the desired level of granularity").  We run the same workload
under both paper policies plus the batching ``chunked`` farm, and sweep
the group width.  The traced run is the chunked one, so the committed
baseline gates the batching critical path.
"""

from benchlib import timed

from repro.analysis import e10_policy_ablation, render_table


def test_e10_policy_ablation(benchmark, record_bench):
    result, wall = timed(
        benchmark, e10_policy_ablation, kwargs={"trace": True}
    )
    policy_rows = [
        (r["policy"], r["stages"], r["makespan_s"], r["throughput_per_s"])
        for r in result["policies"]
    ]
    gran_rows = [
        (g["group_width"], g["makespan_s"], g["bytes_sent"])
        for g in result["granularity"]
    ]
    # All three policies complete; the farm of a whole 4-stage group beats
    # the 4-stage chain here because every farmed iteration runs all stages
    # on one peer (no inter-stage hops) while the chain pays pipeline fill.
    assert all(r["makespan_s"] > 0 for r in result["policies"])
    assert {r["policy"] for r in result["policies"]} == {
        "parallel", "p2p", "chunked"
    }
    # Finer granularity ships more, smaller messages.
    assert gran_rows[0][2] < gran_rows[-1][2] * 2  # sanity: same order
    table_a = render_table(
        ["policy", "stages", "makespan (s)", "throughput (1/s)"],
        policy_rows,
        title="E10a  parallel vs p2p vs chunked policy on a 4-stage group",
    )
    table_b = render_table(
        ["group width", "makespan (s)", "bytes on the wire"],
        gran_rows,
        title="\nE10b  granularity sweep (parallel farm of width-k groups)",
    )
    record_bench(
        "e10_policies",
        seed=0,
        wall_s=wall,
        tracer=result["tracer"],
        rows={"policies": result["policies"],
              "granularity": result["granularity"]},
        table=table_a + "\n" + table_b,
    )
