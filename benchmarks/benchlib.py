"""Shared benchmark runner: wall timing + ``BENCH_<scenario>.json`` emission.

Every ``bench_e*.py`` script routes its result through
:func:`bench_payload` / :func:`write_bench` (via the ``record_bench``
fixture in ``conftest.py``), producing one machine-readable JSON file
per scenario in ``benchmarks/results/`` with a common schema:

* ``schema`` — schema version;
* ``scenario`` / ``seed`` — what ran and with which master seed;
* ``wall_clock_s`` — real time for one run (the only non-deterministic
  field; everything else is a pure function of the seed);
* ``sim_time_s`` — modelled simulated seconds (makespan / horizon);
* ``critical_path_s`` / ``slack_s`` / ``bottlenecks`` / ``fairness`` —
  trace analytics from :mod:`repro.observe.analyze` when the bench ran
  with a tracer attached (``null`` for analytic or untraced scenarios);
* ``rows`` — the scenario's result rows (the data behind the table);
* ``table`` — the rendered human-readable table, so ``EXPERIMENTS.md``
  can still be regenerated without re-running anything.

``tools/bench_gate.py`` compares the deterministic fields of freshly
generated files against the committed baselines and fails CI on
critical-path regressions beyond the tolerance band.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Any, Optional

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SCHEMA_VERSION = 1


def timed(benchmark, fn, *, kwargs=None, rounds: int = 1, iterations: int = 1):
    """Run ``fn`` under ``benchmark.pedantic`` and capture one call's wall time.

    Returns ``(result, wall_seconds)`` where ``wall_seconds`` is the
    last round's single-call wall clock (works with and without
    ``--benchmark-disable``, unlike the plugin's stats object).
    """
    wall: dict[str, float] = {}

    def wrapped(**kw):
        t0 = time.perf_counter()
        result = fn(**kw)
        wall["s"] = time.perf_counter() - t0
        return result

    result = benchmark.pedantic(
        wrapped, kwargs=kwargs or {}, rounds=rounds, iterations=iterations
    )
    return result, wall["s"]


def bench_payload(
    scenario: str,
    *,
    seed: int,
    wall_s: float,
    sim_s: Optional[float] = None,
    tracer=None,
    rows: Any = None,
    table: Optional[str] = None,
) -> dict[str, Any]:
    """Build the common BENCH schema dict for one scenario."""
    payload: dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "scenario": scenario,
        "seed": seed,
        "wall_clock_s": wall_s,
        "sim_time_s": sim_s,
        "critical_path_s": None,
        "critical_path_segments": None,
        "slack_s": None,
        "bottlenecks": None,
        "module_fetch_s": None,
        "fairness": None,
        "rows": rows,
        "table": table,
    }
    if tracer is not None:
        from repro.observe import analyze

        analysis = analyze(tracer)
        payload["critical_path_s"] = analysis["critical_path"]["path_s"]
        payload["critical_path_segments"] = len(
            analysis["critical_path"]["segments"]
        )
        payload["slack_s"] = analysis["critical_path"]["slack_s"]
        payload["bottlenecks"] = analysis["bottlenecks"]["fractions"]
        payload["module_fetch_s"] = analysis["bottlenecks"]["module_fetch_s"]
        payload["fairness"] = analysis["utilization"]["fairness"]
        if payload["sim_time_s"] is None:
            payload["sim_time_s"] = analysis["window"]["duration_s"]
    return payload


def write_bench(payload: dict[str, Any]) -> pathlib.Path:
    """Write ``BENCH_<scenario>.json`` into ``benchmarks/results/``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{payload['scenario']}.json"
    path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    return path
