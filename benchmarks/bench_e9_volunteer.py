"""E9 — volunteer harvest + administration contrast.

Paper anchors: SETI@home's "668852.233 years" of harvested CPU (§3.7) —
idle-time volunteering scales linearly with fleet size at the idle
fraction; and §2's administration critique — "If thousands of users
wanted access to a resource it would be a daunting task indeed for any
administrator" vs "the creation of a single Globus account" with billing.
"""

from benchlib import timed

from repro.analysis import e9_volunteer_throughput, render_kv, render_table


def test_e9_volunteer_throughput(benchmark, record_bench):
    result, wall = timed(
        benchmark,
        e9_volunteer_throughput,
        kwargs={"fleet_sizes": (100, 500), "days": 7.0, "idle_fraction": 0.6},
    )
    rows = [
        (
            r["volunteers"],
            r["days"],
            r["harvested_cpu_years"],
            r["ceiling_cpu_years"],
            r["harvest_fraction"],
        )
        for r in result["rows"]
    ]
    for r in result["rows"]:
        assert 0.4 < r["harvest_fraction"] < 0.65  # tracks the idle fraction
    big, small = result["rows"][-1], result["rows"][0]
    ratio = big["harvested_cpu_years"] / small["harvested_cpu_years"]
    assert ratio > 4.0  # linear scaling with fleet size
    admin = result["admin"]
    assert admin["globus_admin_operations"] == admin["users"]
    assert admin["virtual_admin_operations"] == 1
    table = render_table(
        ["volunteers", "days", "cpu-years harvested", "ceiling", "fraction"],
        rows,
        title="E9  screensaver-time harvest (idle fraction 0.6)",
    )
    contrast = render_kv(
        [
            ("users", admin["users"]),
            ("Globus admin operations", admin["globus_admin_operations"]),
            ("CA certificates issued", admin["globus_certificates"]),
            ("virtual-account admin operations", admin["virtual_admin_operations"]),
            ("virtual-account billing lines", admin["virtual_billing_lines"]),
        ],
        title="\nadministration contrast (Globus per-user accounts vs Triana virtual account)",
    )
    record_bench(
        "e9_volunteer",
        seed=0,
        wall_s=wall,
        rows={"rows": result["rows"], "admin": result["admin"]},
        table=table + "\n" + contrast,
    )
