"""Shared fixtures for the benchmark harness.

Each bench prints its paper-comparable table *and* writes it to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be regenerated /
checked without re-running everything.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Persist a rendered table; returns the path written."""

    def _save(name: str, text: str) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _save
