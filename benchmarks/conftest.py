"""Shared fixtures for the benchmark harness.

Each bench computes its paper-comparable rows, then records them through
``record_bench`` — writing a machine-readable
``benchmarks/results/BENCH_<scenario>.json`` (see ``benchlib.py`` for
the schema) that doubles as the committed baseline for the CI
regression gate (``tools/bench_gate.py``).
"""

from __future__ import annotations

import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from benchlib import bench_payload, write_bench  # noqa: E402


@pytest.fixture
def record_bench():
    """Persist one scenario's BENCH JSON; returns the payload written."""

    def _record(scenario, *, seed, wall_s, sim_s=None, tracer=None,
                rows=None, table=None):
        payload = bench_payload(
            scenario, seed=seed, wall_s=wall_s, sim_s=sim_s, tracer=tracer,
            rows=rows, table=table,
        )
        path = write_bench(payload)
        if table:
            print(f"\n{table}\n[saved to {path}]")
        else:
            print(f"\n[saved to {path}]")
        return payload

    return _record
