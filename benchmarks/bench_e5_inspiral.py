"""E5 — Case 2: inspiral real-time sizing under volunteer churn.

Paper anchors (§3.6.2): 2,000 S/s → 900 s chunks = 7.2 MB; 5,000–10,000
templates; "about 5 hours on a 2 GHz PC"; "therefore, 20 PC's would need
to be employed full-time to keep up"; "Within a Consumer Grid scenario
the number of PCs would need to be increased due to various types of
downtime"; "it can lag behind by several hours if necessary".

The cost model is calibrated so one chunk = 5 h on 2 GHz; the fleet
simulation then finds the dedicated and consumer break-even points.
"""

from benchlib import timed

from repro.analysis import e5_inspiral_sizing, render_table
from repro.apps.inspiral import PAPER_CHUNK_BYTES


def test_e5_inspiral_sizing(benchmark, record_bench):
    result, wall = timed(
        benchmark,
        e5_inspiral_sizing,
        kwargs={"peer_counts": (10, 15, 20, 25, 30, 40), "n_chunks": 60},
    )
    rows = [
        (
            r["fleet"],
            r["peers"],
            round(r["mean_lag_s"] / 3600.0, 2),
            round(r["lag_slope"], 3),
            r["keeps_up"],
        )
        for r in result["rows"]
    ]
    by = {(r["fleet"], r["peers"]): r for r in result["rows"]}
    # The paper's break-even: 20 dedicated PCs keep up, fewer do not.
    assert result["analytic_dedicated_pcs"] == 20.0
    assert by[("dedicated", 20)]["keeps_up"]
    assert not by[("dedicated", 15)]["keeps_up"]
    # Consumers need more than 20 (analytically 30 at 2/3 availability).
    assert not by[("consumer", 20)]["keeps_up"]
    assert by[("consumer", 40)]["keeps_up"]
    header = (
        f"E5  inspiral real-time sizing  (chunk = {PAPER_CHUNK_BYTES/1e6:.1f} MB, "
        f"5000 templates, 5 h/chunk on 2 GHz)\n"
        f"analytic: {result['analytic_dedicated_pcs']:.0f} dedicated PCs, "
        f"{result['analytic_consumer_pcs']:.0f} consumer peers at "
        f"{result['availability']:.0%} availability\n"
    )
    record_bench(
        "e5_inspiral",
        seed=0,
        wall_s=wall,
        rows=result["rows"],
        table=header
        + render_table(
            ["fleet", "peers", "mean lag (h)", "lag growth", "keeps up"],
            rows,
        ),
    )
