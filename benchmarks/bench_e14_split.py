"""E14 (ablation) — which axis to split the inspiral search on.

Paper anchor (§3.6.2): "since it is a massively parallel problem we
believe it can be solved ... by simply distributing the code to as many
computers that are available" — the paper farms whole *chunks*.  The
alternative is to split the *template bank*: every worker receives every
chunk but correlates only 1/k of the templates.  This ablation shows why
the paper's choice is the right one on consumer uplinks: template
splitting multiplies the wire volume by k and over-subscribes the data
source's uplink, while chunk farming ships each chunk once.
"""

from benchlib import timed

from repro.analysis import e14_split_axis, render_table


def test_e14_split_axis(benchmark, record_bench):
    result, wall = timed(
        benchmark, e14_split_axis, kwargs={"n_workers": 20}, rounds=3
    )
    rows = result["rows"]
    chunk_row = rows[0]
    template_row = rows[1]
    # Same steady-state compute need either way (20 workers).
    assert chunk_row["steady_state_workers_needed"] == 20.0
    # Template split: k× the bytes, and the source uplink is oversubscribed
    # (>1 share means the uplink cannot keep up with the detector).
    assert template_row["transfers_per_chunk_mb"] == 20 * chunk_row["transfers_per_chunk_mb"]
    assert chunk_row["uplink_share_per_chunk"] < 1.0
    assert template_row["uplink_share_per_chunk"] > 1.0
    # The only thing template split buys is per-chunk latency.
    assert template_row["per_chunk_latency_h"] < chunk_row["per_chunk_latency_h"]
    record_bench(
        "e14_split",
        seed=0,
        wall_s=wall,
        rows=result["rows"],
        table=render_table(
            ["axis", "MB shipped per chunk", "per-chunk latency (h)",
             "workers needed", "source-uplink share"],
            [
                (r["axis"], r["transfers_per_chunk_mb"],
                 r["per_chunk_latency_h"], r["steady_state_workers_needed"],
                 r["uplink_share_per_chunk"])
                for r in rows
            ],
            title=(
                "E14  splitting axis at paper scale (7.2 MB chunks, 5000 "
                "templates, 256 kbit/s source uplink)"
            ),
        ),
    )
