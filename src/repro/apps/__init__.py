"""Application scenarios (system S9): the paper's three use cases.

* :mod:`.galaxy`   — Case 1, galaxy-formation frame farming (§3.6.1)
* :mod:`.inspiral` — Case 2, inspiral matched-filter search (§3.6.2)
* :mod:`.database` — Case 3, multi-site database pipelines (§3.6.3)

Importing this package registers the scenario units (DataReader,
ColumnDensity, InspiralSearch, ...) in the global toolbox.
"""

from . import database, galaxy, inspiral  # noqa: F401

__all__ = ["database", "galaxy", "inspiral"]
