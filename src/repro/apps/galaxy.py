"""Case 1 — galaxy-formation visualisation (§3.6.1).

"Galaxy and star formation simulation codes generate binary data files
that represent a series of particles in three dimensions ... It is
possible to distribute each time slice or frame over a number of
processes and calculate the different views based on the point of view
in parallel. ... The loaded data is ... separated into frames,
distributed amongst the various Triana servers ... and processed to
calculate the column density using smooth particle hydrodynamics."

This module provides the full workload:

* :func:`generate_snapshots` — a synthetic collapsing-Plummer-sphere
  particle dataset (the Cardiff group's binary files are not available;
  the substitution preserves per-frame independent rendering work of
  tunable cost);
* :class:`DataReader` — the single loader unit at the controller;
* :class:`ColumnDensity` — the SPH projection renderer (a real cubic-
  spline scatter, not a stub), with a view parameter so "the user can
  ... vary the perspective of view";
* :class:`FrameCollector` — the visualisation sink that animates frames
  **in order**;
* :func:`build_galaxy_graph` — the distributable task graph.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..core.errors import UnitError
from ..core.registry import register_unit
from ..core.types import ImageData, ParticleSnapshot
from ..core.units import ParamSpec, Unit
from ..core.taskgraph import TaskGraph

__all__ = [
    "generate_snapshots",
    "register_dataset",
    "sph_column_density",
    "view_rotation",
    "DataReader",
    "ColumnDensity",
    "FrameCollector",
    "build_galaxy_graph",
    "build_galaxy_pipeline_graph",
]

#: Dataset registry: DataReader units reference datasets by key so the
#: task-graph XML stays a small text file (the data itself is shipped as
#: payloads, exactly like the paper's "data file is loaded by a single
#: Data Reader Unit ... and passed to all the Triana nodes").
_DATASETS: dict[str, list[ParticleSnapshot]] = {}


def register_dataset(key: str, snapshots: Sequence[ParticleSnapshot]) -> None:
    """Make a snapshot series available to DataReader units."""
    _DATASETS[key] = list(snapshots)


def generate_snapshots(
    n_frames: int = 16,
    n_particles: int = 2000,
    seed: int = 0,
    register_as: str | None = None,
) -> list[ParticleSnapshot]:
    """Synthesise a collapsing, rotating Plummer sphere over time.

    Each frame is one "snap shot in time of the total data set"; frames
    are independent render inputs, which is what makes the parallel farm
    policy applicable.
    """
    if n_frames < 1 or n_particles < 1:
        raise ValueError("n_frames and n_particles must be >= 1")
    rng = np.random.default_rng(seed)
    # Plummer-sphere radial profile.
    a = 1.0
    u = rng.random(n_particles)
    r = a / np.sqrt(u ** (-2.0 / 3.0) - 1.0)
    r = np.clip(r, 0, 5 * a)
    costheta = rng.uniform(-1, 1, n_particles)
    phi = rng.uniform(0, 2 * np.pi, n_particles)
    sintheta = np.sqrt(1 - costheta**2)
    pos0 = np.column_stack(
        [
            r * sintheta * np.cos(phi),
            r * sintheta * np.sin(phi),
            r * costheta,
        ]
    )
    masses = np.full(n_particles, 1.0 / n_particles)
    smoothing = 0.1 + 0.2 * r / (5 * a)

    frames = []
    for k in range(n_frames):
        t = k / max(n_frames - 1, 1)
        # Collapse radially and spin up around z, like a forming disc.
        shrink = 1.0 - 0.5 * t
        angle = 2.0 * np.pi * t
        c, s = np.cos(angle * (1.0 + r / a)), np.sin(angle * (1.0 + r / a))
        x = shrink * (pos0[:, 0] * c - pos0[:, 1] * s)
        y = shrink * (pos0[:, 0] * s + pos0[:, 1] * c)
        z = pos0[:, 2] * (1.0 - 0.8 * t)  # flatten into a disc
        frames.append(
            ParticleSnapshot(
                positions=np.column_stack([x, y, z]),
                masses=masses.copy(),
                smoothing=smoothing * shrink,
                time=float(t),
            )
        )
    if register_as is not None:
        register_dataset(register_as, frames)
    return frames


_VIEW_AXES = {"xy": (0, 1), "xz": (0, 2), "yz": (1, 2)}


def view_rotation(theta: float, phi: float) -> np.ndarray:
    """Rotation matrix for an arbitrary viewing direction.

    ``theta`` tilts about the x axis, ``phi`` spins about the z axis
    (radians); the projection plane is the rotated frame's xy plane —
    "the ability to vary the perspective of view" continuously.
    """
    ct, st = np.cos(theta), np.sin(theta)
    cp, sp = np.cos(phi), np.sin(phi)
    rot_z = np.array([[cp, -sp, 0.0], [sp, cp, 0.0], [0.0, 0.0, 1.0]])
    rot_x = np.array([[1.0, 0.0, 0.0], [0.0, ct, -st], [0.0, st, ct]])
    return rot_x @ rot_z


#: Switch between the vectorized scatter and the per-particle reference
#: loop.  The vectorized path is bit-identical to the loop (the equality
#: tests pin this down) but ~50-100x faster; flip to False to debug
#: against the reference implementation.
VECTORIZED_SCATTER = True

#: Element budget per vectorized chunk (particles x window cells); keeps
#: the temporary (chunk, span, span) arrays under ~100 MB even for
#: pathological smoothing lengths.
_SCATTER_CHUNK_ELEMENTS = 4_000_000


def _cubic_spline_kernel(q: np.ndarray) -> np.ndarray:
    """2-D-normalised cubic spline (M4), support ``q`` in [0, 2).

    Shared by the reference loop and the vectorized scatter so both paths
    evaluate the exact same float expressions.
    """
    w = np.zeros_like(q)
    m1 = q < 1.0
    m2 = (q >= 1.0) & (q < 2.0)
    w[m1] = 1.0 - 1.5 * q[m1] ** 2 + 0.75 * q[m1] ** 3
    w[m2] = 0.25 * (2.0 - q[m2]) ** 3
    return w * (10.0 / (7.0 * np.pi))


def _scatter_loop(xs, ys, masses, smoothing, grid, resolution, cell, extent) -> None:
    """Reference per-particle scatter (pure-python loop over particles).

    Kept as the readable specification of the algorithm and as the
    fallback when :data:`VECTORIZED_SCATTER` is off; the vectorized path
    must reproduce its output bit for bit.
    """
    for i in range(len(xs)):
        h = max(smoothing[i], cell)
        cx = int(np.floor((xs[i] + extent) / cell))
        cy = int(np.floor((ys[i] + extent) / cell))
        radius_cells = int(np.ceil(2.0 * h / cell))
        x_lo, x_hi = max(cx - radius_cells, 0), min(cx + radius_cells + 1, resolution)
        y_lo, y_hi = max(cy - radius_cells, 0), min(cy + radius_cells + 1, resolution)
        if x_lo >= x_hi or y_lo >= y_hi:
            continue
        gx = (np.arange(x_lo, x_hi) + 0.5) * cell - extent
        gy = (np.arange(y_lo, y_hi) + 0.5) * cell - extent
        dx = (gx - xs[i])[:, None]
        dy = (gy - ys[i])[None, :]
        q = np.sqrt(dx**2 + dy**2) / h
        # h * h (not h**2): numpy's *scalar* power goes through libm pow,
        # which can differ from the array path's x*x square by 1 ulp; an
        # explicit product keeps both scatter paths bit-identical.
        w = _cubic_spline_kernel(q) / (h * h)
        grid[x_lo:x_hi, y_lo:y_hi] += masses[i] * w


def _scatter_vectorized(xs, ys, masses, smoothing, grid, resolution, cell, extent) -> None:
    """Vectorized SPH scatter, bit-identical to :func:`_scatter_loop`.

    Why the output is *exactly* equal, not just close:

    * every per-cell contribution is the same elementwise float
      expression the loop evaluates (``(idx + 0.5) * cell - extent``,
      ``sqrt(dx**2 + dy**2) / h``, the shared kernel, ``/ (h * h)``,
      ``masses * w``), so each scalar is bit-identical;
    * each particle's window is the loop's own clipped
      ``[x_lo, x_hi) x [y_lo, y_hi)`` rectangle, padded out to the
      chunk's widest window.  Padded cells beyond a particle's own
      rectangle are masked to contribution 0.0 at index 0, and adding
      0.0 leaves every (never ``-0.0``) grid cell bitwise unchanged —
      so the set of effective (cell, contribution) pairs matches the
      loop exactly;
    * ``np.add.at`` accumulates unbuffered in index order, and the index
      array is built particle-major — so each grid cell receives its
      contributions in particle order, exactly like the loop.  Chunking
      splits the particle range in order, preserving that property.

    Temporaries are (chunk, span_x, span_y) with spans capped at
    ``resolution``; the chunk size adapts to keep them under
    :data:`_SCATTER_CHUNK_ELEMENTS` elements.
    """
    n = len(xs)
    if n == 0:
        return
    h = np.maximum(smoothing, cell)
    cx = np.floor((xs + extent) / cell).astype(np.int64)
    cy = np.floor((ys + extent) / cell).astype(np.int64)
    radius = np.ceil(2.0 * h / cell).astype(np.int64)
    x_lo = np.maximum(cx - radius, 0)
    x_hi = np.minimum(cx + radius + 1, resolution)
    y_lo = np.maximum(cy - radius, 0)
    y_hi = np.minimum(cy + radius + 1, resolution)
    wx = np.maximum(x_hi - x_lo, 0)
    wy = np.maximum(y_hi - y_lo, 0)
    flat = grid.reshape(-1)
    start = 0
    while start < n:
        # Grow the chunk until the padded-window element budget is hit.
        end = start + 1
        sx = int(wx[start])
        sy = int(wy[start])
        while end < n:
            nsx = max(sx, int(wx[end]))
            nsy = max(sy, int(wy[end]))
            if (end + 1 - start) * nsx * nsy > _SCATTER_CHUNK_ELEMENTS:
                break
            sx, sy = nsx, nsy
            end += 1
        if sx == 0 or sy == 0:
            start = end
            continue
        sl = slice(start, end)
        ix = x_lo[sl, None] + np.arange(sx, dtype=np.int64)[None, :]
        iy = y_lo[sl, None] + np.arange(sy, dtype=np.int64)[None, :]
        gx = (ix + 0.5) * cell - extent
        gy = (iy + 0.5) * cell - extent
        dx = gx - xs[sl, None]
        dy = gy - ys[sl, None]
        hc = h[sl, None, None]
        q = np.sqrt(dx[:, :, None] ** 2 + dy[:, None, :] ** 2) / hc
        w = _cubic_spline_kernel(q) / (hc * hc)
        contrib = masses[sl, None, None] * w
        ok = (ix < x_hi[sl, None])[:, :, None] & (iy < y_hi[sl, None])[:, None, :]
        idx = np.minimum(ix, resolution - 1)[:, :, None] * resolution + np.minimum(
            iy, resolution - 1
        )[:, None, :]
        np.add.at(flat, np.where(ok, idx, 0).ravel(), np.where(ok, contrib, 0.0).ravel())
        start = end


def sph_column_density(
    snapshot: ParticleSnapshot,
    resolution: int = 64,
    view: str = "xy",
    extent: float = 2.5,
    theta: float = 0.0,
    phi: float = 0.0,
) -> np.ndarray:
    """Project particles to a 2-D column-density map with an SPH kernel.

    ``view`` picks an axis-aligned plane; non-zero ``theta``/``phi``
    rotate the frame first, giving arbitrary perspectives.  Uses the
    standard cubic-spline (M4) kernel truncated at 2h, scattered onto the
    grid per particle.  Returns a (resolution, resolution) array.

    The scatter runs vectorized by default
    (:func:`_scatter_vectorized`); set
    :data:`VECTORIZED_SCATTER` to False to use the per-particle
    reference loop.  Both paths produce bit-identical grids.
    """
    if view not in _VIEW_AXES:
        raise ValueError(f"unknown view {view!r}; valid: {sorted(_VIEW_AXES)}")
    if resolution < 4:
        raise ValueError("resolution must be >= 4")
    positions = snapshot.positions
    if theta != 0.0 or phi != 0.0:
        positions = positions @ view_rotation(theta, phi).T
    ax, ay = _VIEW_AXES[view]
    xs = positions[:, ax]
    ys = positions[:, ay]
    grid = np.zeros((resolution, resolution))
    cell = 2.0 * extent / resolution
    scatter = _scatter_vectorized if VECTORIZED_SCATTER else _scatter_loop
    scatter(xs, ys, snapshot.masses, snapshot.smoothing, grid, resolution, cell, extent)
    return grid


def _positive(x) -> None:
    if not x > 0:
        raise ValueError(f"must be positive, got {x!r}")


@register_unit(category="galaxy")
class DataReader(Unit):
    """"The data file is loaded by a single Data Reader Unit" — emits one
    snapshot per iteration from a registered dataset."""

    NUM_INPUTS = 0
    NUM_OUTPUTS = 1
    OUTPUT_TYPES = (ParticleSnapshot,)
    PARAMETERS = (ParamSpec("dataset", "", "registered dataset key"),)
    REQUIRED_PERMISSIONS = ("fs.read",)

    def reset(self) -> None:
        self._index = 0

    def checkpoint(self) -> dict[str, Any]:
        return {"index": self._index}

    def restore(self, state: dict[str, Any]) -> None:
        self._index = int(state.get("index", 0))

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        key = self.get_param("dataset")
        if key not in _DATASETS:
            raise UnitError(f"DataReader: no dataset registered as {key!r}")
        frames = _DATASETS[key]
        if self._index >= len(frames):
            raise UnitError(
                f"DataReader: dataset {key!r} exhausted after {len(frames)} frames"
            )
        frame = frames[self._index]
        self._index += 1
        return [frame]


@register_unit(category="galaxy")
class ColumnDensity(Unit):
    """SPH column-density projection of one snapshot (the farmed work)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (ParticleSnapshot,)
    OUTPUT_TYPES = (ImageData,)
    CODE_SIZE = 60_000
    PARAMETERS = (
        ParamSpec("resolution", 64, "output grid side", _positive),
        ParamSpec("view", "xy", "projection plane: xy | xz | yz"),
        ParamSpec("extent", 2.5, "half-width of the projected region", _positive),
        ParamSpec("theta", 0.0, "view tilt about x, radians"),
        ParamSpec("phi", 0.0, "view spin about z, radians"),
    )

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (snap,) = inputs
        try:
            grid = sph_column_density(
                snap,
                resolution=int(self.get_param("resolution")),
                view=self.get_param("view"),
                extent=float(self.get_param("extent")),
                theta=float(self.get_param("theta")),
                phi=float(self.get_param("phi")),
            )
        except ValueError as exc:
            raise UnitError(f"ColumnDensity: {exc}") from exc
        return [ImageData(pixels=grid)]

    def estimated_flops(self, input_nbytes: int) -> float:
        # ~n_particles × kernel-window work; input is ~(3+1+1)·8 B/particle.
        n_particles = max(input_nbytes / 40.0, 1.0)
        window = 25.0  # mean cells under the kernel support
        return 50.0 * n_particles * window


@register_unit(category="galaxy")
class FrameCollector(Unit):
    """The visualisation unit: collects rendered frames *in order*.

    "Each distributed Triana service returns it's processed data in
    order, allowing the frames to be animated."
    """

    NUM_INPUTS = 1
    NUM_OUTPUTS = 0
    INPUT_TYPES = (ImageData,)

    def reset(self) -> None:
        self.frames: list[ImageData] = []

    def checkpoint(self) -> dict[str, Any]:
        return {"frames": [f.pixels.tolist() for f in self.frames]}

    def restore(self, state: dict[str, Any]) -> None:
        self.frames = [ImageData(pixels=np.asarray(p)) for p in state.get("frames", [])]

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        self.frames.append(inputs[0])
        return []

    def animation(self) -> np.ndarray:
        """Stacked (n_frames, res, res) array — the animation tensor."""
        if not self.frames:
            raise UnitError("FrameCollector: no frames collected")
        return np.stack([f.pixels for f in self.frames])


def build_galaxy_graph(
    dataset_key: str,
    resolution: int = 64,
    view: str = "xy",
    policy: str = "parallel",
) -> TaskGraph:
    """The Case-1 task graph: Reader → [Render]@policy → Collector."""
    g = TaskGraph("galaxy-formation")
    g.add_task("Reader", "DataReader", dataset=dataset_key)
    g.add_task("Render", "ColumnDensity", resolution=resolution, view=view)
    g.add_task("Collector", "FrameCollector")
    g.connect("Reader", 0, "Render", 0)
    g.connect("Render", 0, "Collector", 0)
    g.group_tasks("RenderFarm", ["Render"], policy=policy)
    return g


def build_galaxy_pipeline_graph(
    dataset_key: str,
    resolution: int = 64,
    view: str = "xy",
    render_policy: str = "parallel",
    post_policy: str = "chunked",
) -> TaskGraph:
    """Case 1 with a post-production stage: two policy groups in one run.

    Reader → [Render]@render_policy → [Blur → Edges]@post_policy →
    Collector.  The render farm produces raw column-density frames; a
    second distributed group enhances them (box blur then Sobel edges,
    both :class:`~repro.core.types.ImageData` toolbox units) before the
    in-order collector animates them.  Each group may carry a different
    distribution policy — the staged scheduler collects the render farm's
    frame *i* and immediately feeds it to the post group while frame
    *i+1* is still rendering.
    """
    g = TaskGraph("galaxy-pipeline")
    g.add_task("Reader", "DataReader", dataset=dataset_key)
    g.add_task("Render", "ColumnDensity", resolution=resolution, view=view)
    g.add_task("Blur", "BoxBlur", radius=1)
    g.add_task("Edges", "SobelEdges")
    g.add_task("Collector", "FrameCollector")
    g.connect("Reader", 0, "Render", 0)
    g.connect("Render", 0, "Blur", 0)
    g.connect("Blur", 0, "Edges", 0)
    g.connect("Edges", 0, "Collector", 0)
    g.group_tasks("RenderFarm", ["Render"], policy=render_policy)
    g.group_tasks("PostFarm", ["Blur", "Edges"], policy=post_policy)
    return g
