"""Case 2 — inspiral search for coalescing binaries (§3.6.2).

The paper's quantitative anchor: GEO600-style strain sampled effectively
at 2,000 S/s, cut into 900 s chunks (4 B × 900 × 2000 = **7.2 MB**),
correlated against a library of **5,000–10,000 templates**; one chunk
"takes about 5 hours on a 2 GHz PC", so ~**20 PCs** are needed to keep up
in real time — more on a Consumer Grid with downtime.

This module implements the search for real (synthetic strain + Newtonian
chirp templates + FFT matched filter) and calibrates the *cost model* to
the paper's numbers so grid-scale sizing simulates honestly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from ..core.errors import UnitError
from ..core.registry import register_unit
from ..core.types import SampleSet, TableData
from ..core.units import ParamSpec, Unit
from ..core.taskgraph import TaskGraph

__all__ = [
    "PAPER_SAMPLING_RATE",
    "PAPER_CHUNK_SECONDS",
    "PAPER_CHUNK_BYTES",
    "PAPER_TEMPLATES_LOW",
    "PAPER_TEMPLATES_HIGH",
    "PAPER_HOURS_PER_CHUNK",
    "PAPER_CPU_FLOPS",
    "FLOPS_PER_TEMPLATE_SAMPLE",
    "chirp_waveform",
    "TemplateBank",
    "make_strain_chunk",
    "matched_filter_snr",
    "template_match",
    "bank_minimal_match",
    "templates_for_minimal_match",
    "search_chunk",
    "InspiralSearch",
    "StrainSource",
    "SearchResult",
    "build_inspiral_graph",
    "chunk_search_flops",
]

# -- the paper's stated parameters -------------------------------------------------
PAPER_SAMPLING_RATE = 2000.0  # "2,000 samples per second"
PAPER_CHUNK_SECONDS = 900.0  # "chunks of 15 minutes in duration"
PAPER_CHUNK_BYTES = int(4 * 900 * 2000)  # "7.2MB of data (4 x 900 x 2000)"
PAPER_TEMPLATES_LOW = 5_000
PAPER_TEMPLATES_HIGH = 10_000
PAPER_HOURS_PER_CHUNK = 5.0  # "about 5 hours on a 2 GHz PC" (5000 templates)
PAPER_CPU_FLOPS = 2.0e9

#: Calibrated so that 5,000 templates × one 900 s chunk = 5 h on 2 GHz:
#: flops = k · n_templates · n_samples, with n_samples = 1.8e6.
FLOPS_PER_TEMPLATE_SAMPLE = (
    PAPER_HOURS_PER_CHUNK * 3600.0 * PAPER_CPU_FLOPS
    / (PAPER_TEMPLATES_LOW * PAPER_CHUNK_SECONDS * PAPER_SAMPLING_RATE)
)  # = 4.0 flops per template-sample


def chirp_waveform(
    chirp_mass: float,
    sampling_rate: float = PAPER_SAMPLING_RATE,
    f_low: float = 40.0,
    f_high: float = 900.0,
    amplitude: float = 1.0,
) -> np.ndarray:
    """A Newtonian-order inspiral chirp h(t).

    The orbit shrinks, so "a characteristic chirp waveform is produced
    whose amplitude and frequency increase with time" — the frequency
    evolves as f(t) = (k·(tc − t))^(−3/8) with k set by the chirp mass;
    amplitude grows as f^(2/3).
    """
    if chirp_mass <= 0:
        raise ValueError("chirp_mass must be positive")
    if not 0 < f_low < f_high:
        raise ValueError("need 0 < f_low < f_high")
    # Newtonian coalescence-time coefficient (geometric units folded into
    # a single constant chosen to give second-scale signals for ~1 M☉
    # chirp masses in the 40 Hz–900 Hz band, like the real search).
    k = 256.0 / 5.0 * (np.pi ** (8.0 / 3.0)) * chirp_mass ** (5.0 / 3.0) * 2.0e-8
    t_coal = 1.0 / (k * f_low ** (8.0 / 3.0))  # time from f_low to merger
    dt = 1.0 / sampling_rate
    t = np.arange(0.0, t_coal, dt)
    tau = np.maximum(t_coal - t, dt)
    freq = np.minimum((k * tau) ** (-3.0 / 8.0) * f_low * (k * t_coal) ** (3.0 / 8.0), f_high)
    phase = 2.0 * np.pi * np.cumsum(freq) * dt
    amp = amplitude * (freq / f_low) ** (2.0 / 3.0)
    h = amp * np.sin(phase)
    # Stop at f_high (merger, outside the searchable band).
    cut = np.argmax(freq >= f_high) or len(h)
    return h[:cut]


class TemplateBank:
    """A grid of chirp templates spanning a chirp-mass range.

    "it performs fast correlation on the data set with each template in a
    library of between 5,000 and 10,000 templates."
    """

    def __init__(
        self,
        n_templates: int,
        mass_low: float = 0.8,
        mass_high: float = 2.0,
        sampling_rate: float = PAPER_SAMPLING_RATE,
        f_low: float = 40.0,
    ):
        if n_templates < 1:
            raise ValueError("n_templates must be >= 1")
        if not 0 < mass_low < mass_high:
            raise ValueError("need 0 < mass_low < mass_high")
        self.n_templates = n_templates
        self.sampling_rate = sampling_rate
        self.masses = np.linspace(mass_low, mass_high, n_templates)
        self.f_low = f_low
        self._cache: dict[int, np.ndarray] = {}

    def template(self, index: int) -> np.ndarray:
        """Normalised template waveform by bank index (lazily built)."""
        if not 0 <= index < self.n_templates:
            raise IndexError(f"template index {index} out of range")
        if index not in self._cache:
            h = chirp_waveform(
                float(self.masses[index]),
                sampling_rate=self.sampling_rate,
                f_low=self.f_low,
            )
            norm = np.sqrt(np.sum(h**2))
            self._cache[index] = h / norm if norm > 0 else h
        return self._cache[index]

    def __len__(self) -> int:
        return self.n_templates


def template_match(a: np.ndarray, b: np.ndarray) -> float:
    """Best-over-time-shift normalised overlap of two templates (0..1).

    The quantity template-bank design maximises: a bank is adequate when
    any signal in band matches *some* template above the minimal match.
    """
    na = np.sqrt(np.sum(a**2))
    nb = np.sqrt(np.sum(b**2))
    if na == 0 or nb == 0:
        raise ValueError("cannot match a zero template")
    n = len(a) + len(b) - 1
    nfft = 1 << int(np.ceil(np.log2(max(n, 2))))
    corr = np.fft.irfft(np.fft.rfft(a, nfft) * np.conj(np.fft.rfft(b, nfft)), nfft)
    return float(np.max(np.abs(corr)) / (na * nb))


def bank_minimal_match(bank: "TemplateBank") -> float:
    """Worst adjacent-template match across the bank.

    A signal lying between two grid points matches its neighbours at
    least this well (to first order), so this is the bank's coverage
    guarantee.  Sparse banks → low minimal match → missed signals.
    """
    if len(bank) < 2:
        return 1.0
    matches = [
        template_match(bank.template(i), bank.template(i + 1))
        for i in range(len(bank) - 1)
    ]
    return float(min(matches))


def templates_for_minimal_match(
    target: float,
    mass_low: float = 0.8,
    mass_high: float = 2.0,
    sampling_rate: float = PAPER_SAMPLING_RATE,
    n_max: int = 4096,
) -> int:
    """Smallest bank size whose minimal match reaches ``target``.

    Doubling search then bisection; the answer grows roughly linearly in
    1/(1 − target), which is why realistic matches (≳0.97) over a wide
    mass range need banks of thousands — the paper's 5,000–10,000.
    """
    if not 0.0 < target < 1.0:
        raise ValueError("target match must be in (0, 1)")

    def mm(n: int) -> float:
        return bank_minimal_match(
            TemplateBank(n, mass_low=mass_low, mass_high=mass_high,
                         sampling_rate=sampling_rate)
        )

    lo, hi = 2, 2
    while mm(hi) < target:
        hi *= 2
        if hi > n_max:
            raise ValueError(
                f"target match {target} needs more than {n_max} templates"
            )
    lo = hi // 2
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if mm(mid) >= target:
            hi = mid
        else:
            lo = mid
    return hi


def make_strain_chunk(
    duration: float,
    sampling_rate: float = PAPER_SAMPLING_RATE,
    noise_sigma: float = 1.0,
    injection: np.ndarray | None = None,
    injection_offset: int = 0,
    injection_snr: float = 10.0,
    seed: int = 0,
) -> SampleSet:
    """Synthetic detector strain: white noise + optional chirp injection.

    ``injection_snr`` is the optimal matched-filter SNR of the injected
    signal in this noise.
    """
    rng = np.random.default_rng(seed)
    n = int(round(duration * sampling_rate))
    data = rng.normal(0.0, noise_sigma, n)
    if injection is not None:
        h = np.asarray(injection, dtype=float)
        norm = np.sqrt(np.sum(h**2))
        if norm == 0:
            raise ValueError("injection waveform is identically zero")
        scaled = h * (injection_snr * noise_sigma / norm)
        end = injection_offset + len(h)
        if injection_offset < 0 or end > n:
            raise ValueError("injection does not fit inside the chunk")
        data[injection_offset:end] += scaled
    return SampleSet(data=data, sampling_rate=sampling_rate)


def _matched_filter_nfft(n_chunk: int, n_template: int) -> int:
    """FFT length for a linear correlation: next power of two >= n+m-1."""
    return 1 << int(np.ceil(np.log2(max(n_chunk + n_template - 1, 2))))


def matched_filter_snr(
    chunk: np.ndarray,
    template: np.ndarray,
    noise_sigma: float = 1.0,
    _chunk_fd: np.ndarray | None = None,
) -> np.ndarray:
    """SNR time series of one normalised template against a chunk.

    ``_chunk_fd`` optionally supplies a precomputed ``rfft(chunk, nfft)``
    for this template's ``nfft`` — :func:`search_chunk` caches the chunk
    spectrum per FFT length so a bank sweep does not redo the (large)
    chunk transform for every template.  The transform of the same input
    at the same length is deterministic, so reuse is bit-identical to
    recomputation.
    """
    n = len(chunk)
    nfft = _matched_filter_nfft(n, len(template))
    fd = np.fft.rfft(chunk, nfft) if _chunk_fd is None else _chunk_fd
    ft = np.fft.rfft(template, nfft)
    corr = np.fft.irfft(fd * np.conj(ft), nfft)[:n]
    return corr / noise_sigma


@dataclass(frozen=True)
class SearchResult:
    """Best-match summary for one chunk."""

    best_template: int
    best_offset: int
    best_snr: float
    threshold: float
    detected: bool


def search_chunk(
    chunk: SampleSet,
    bank: TemplateBank,
    noise_sigma: float = 1.0,
    threshold: float = 8.0,
) -> SearchResult:
    """Correlate a chunk against every template; report the loudest peak.

    The chunk's spectrum is cached per FFT length (templates of similar
    duration share one ``nfft``), cutting the per-template work to one
    small-template forward transform plus the inverse — typically a ~2x
    sweep speedup with bit-identical results.
    """
    best = (-1, -1, -np.inf)
    data = chunk.data
    n = len(data)
    fd_by_nfft: dict[int, np.ndarray] = {}
    for idx in range(len(bank)):
        template = bank.template(idx)
        nfft = _matched_filter_nfft(n, len(template))
        fd = fd_by_nfft.get(nfft)
        if fd is None:
            fd = fd_by_nfft[nfft] = np.fft.rfft(data, nfft)
        snr = matched_filter_snr(data, template, noise_sigma, _chunk_fd=fd)
        peak = int(np.argmax(snr))
        if snr[peak] > best[2]:
            best = (idx, peak, float(snr[peak]))
    return SearchResult(
        best_template=best[0],
        best_offset=best[1],
        best_snr=best[2],
        threshold=threshold,
        detected=best[2] >= threshold,
    )


def chunk_search_flops(n_samples: int, n_templates: int) -> float:
    """Modelled cost of searching one chunk (paper-calibrated)."""
    return FLOPS_PER_TEMPLATE_SAMPLE * n_samples * n_templates


@register_unit(category="inspiral")
class InspiralSearch(Unit):
    """The per-node search unit: one strain chunk in, one result row out.

    "This data is transmitted to a Triana node and processed locally.
    The node initialises i.e. generates its templates (a trivial
    computational step) and then it performs fast correlation on the data
    set with each template."
    """

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (TableData,)
    CODE_SIZE = 80_000
    PARAMETERS = (
        ParamSpec("n_templates", 64, "template library size"),
        ParamSpec("mass_low", 0.8, "lowest chirp mass"),
        ParamSpec("mass_high", 2.0, "highest chirp mass"),
        ParamSpec("noise_sigma", 1.0, "detector noise level"),
        ParamSpec("threshold", 8.0, "detection SNR threshold"),
    )

    def reset(self) -> None:
        self._bank: TemplateBank | None = None

    def _get_bank(self, sampling_rate: float) -> TemplateBank:
        if self._bank is None:
            self._bank = TemplateBank(
                int(self.get_param("n_templates")),
                mass_low=float(self.get_param("mass_low")),
                mass_high=float(self.get_param("mass_high")),
                sampling_rate=sampling_rate,
            )
        return self._bank

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (chunk,) = inputs
        if len(chunk.data) == 0:
            raise UnitError("InspiralSearch: empty chunk")
        result = search_chunk(
            chunk,
            self._get_bank(chunk.sampling_rate),
            noise_sigma=float(self.get_param("noise_sigma")),
            threshold=float(self.get_param("threshold")),
        )
        table = TableData(
            ["chunk_t0", "best_template", "best_offset", "best_snr", "detected"],
            [
                (
                    chunk.t0,
                    result.best_template,
                    result.best_offset,
                    result.best_snr,
                    result.detected,
                )
            ],
        )
        return [table]

    def estimated_flops(self, input_nbytes: int) -> float:
        n_samples = max(input_nbytes / 8.0, 1.0)
        return chunk_search_flops(int(n_samples), int(self.get_param("n_templates")))


@register_unit(category="inspiral")
class StrainSource(Unit):
    """Emits successive synthetic strain chunks (the detector feed)."""

    NUM_INPUTS = 0
    NUM_OUTPUTS = 1
    OUTPUT_TYPES = (SampleSet,)
    PARAMETERS = (
        ParamSpec("duration", 4.0, "chunk length, seconds"),
        ParamSpec("sampling_rate", PAPER_SAMPLING_RATE, "samples per second"),
        ParamSpec("noise_sigma", 1.0, "noise level"),
        ParamSpec("inject_every", 3, "inject a chirp into every k-th chunk (0=never)"),
        ParamSpec("injection_snr", 12.0, "optimal SNR of injections"),
        ParamSpec("injection_mass", 1.4, "chirp mass of injections"),
        ParamSpec(
            "bank_templates",
            0,
            "if > 0, snap the injection mass to the nearest point of a "
            "linspace(mass_low, mass_high, bank_templates) grid — software "
            "injections at template points, as search validation does",
        ),
        ParamSpec("mass_low", 0.8, "bank grid lower bound (for snapping)"),
        ParamSpec("mass_high", 2.0, "bank grid upper bound (for snapping)"),
        ParamSpec("seed", 0, "noise seed base"),
    )

    def reset(self) -> None:
        self._chunk_index = 0

    def checkpoint(self) -> dict[str, Any]:
        return {"chunk_index": self._chunk_index}

    def restore(self, state: dict[str, Any]) -> None:
        self._chunk_index = int(state.get("chunk_index", 0))

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        i = self._chunk_index
        self._chunk_index += 1
        duration = float(self.get_param("duration"))
        fs = float(self.get_param("sampling_rate"))
        every = int(self.get_param("inject_every"))
        injection = None
        offset = 0
        if every > 0 and i % every == every - 1:
            mass = float(self.get_param("injection_mass"))
            n_bank = int(self.get_param("bank_templates"))
            if n_bank > 0:
                grid = np.linspace(
                    float(self.get_param("mass_low")),
                    float(self.get_param("mass_high")),
                    n_bank,
                )
                mass = float(grid[np.argmin(np.abs(grid - mass))])
            injection = chirp_waveform(mass, sampling_rate=fs)
            room = int(duration * fs) - len(injection)
            if room <= 0:
                raise UnitError("StrainSource: chunk too short for injection")
            offset = (i * 977) % room  # deterministic scatter of arrival times
        chunk = make_strain_chunk(
            duration,
            sampling_rate=fs,
            noise_sigma=float(self.get_param("noise_sigma")),
            injection=injection,
            injection_offset=offset,
            injection_snr=float(self.get_param("injection_snr")),
            seed=int(self.get_param("seed")) + i,
        )
        chunk.t0 = i * duration
        return [chunk]


def build_inspiral_graph(
    n_templates: int = 64,
    chunk_seconds: float = 4.0,
    inject_every: int = 3,
    policy: str = "parallel",
    seed: int = 0,
) -> TaskGraph:
    """Case-2 task graph: StrainSource → [InspiralSearch]@policy → Grapher."""
    g = TaskGraph("inspiral-search")
    g.add_task(
        "Strain",
        "StrainSource",
        duration=chunk_seconds,
        inject_every=inject_every,
        bank_templates=n_templates,
        seed=seed,
    )
    g.add_task("Search", "InspiralSearch", n_templates=n_templates)
    g.add_task("Console", "ScopeProbe")
    g.connect("Strain", 0, "Search", 0)
    g.connect("Search", 0, "Console", 0)
    g.group_tasks("SearchFarm", ["Search"], policy=policy)
    return g
