"""Case 3 — database access pipelines (§3.6.3).

"the user establishes a pipeline in Triana consisting of: (1) a data
access service, (2) a data manipulation service, (3) a data visualisation
service, and (4) a data verification service. ... Each of these services
may now be provided by different Triana Peers – which may be located at
different geographic sites. ... The Triana system looks on the network
to discover peers which offer each of these services in turn."

Provides:

* a small in-memory relational engine (:class:`Database`) with flat-file
  (CSV) loading — "can either read from flat files, or read from a
  structured database";
* the four pipeline stages as JXTAServe services hosted on peers
  (:class:`DatabaseSite`), advertised with quality attributes so the user
  can "select a service based on other options ... (such as accuracy)";
* :class:`DatabasePipeline` — discovery, service-bind and execution of
  the four-stage pipeline;
* graph-based stages (:class:`TableSource`, :class:`TableManipulator`,
  :class:`TableVerifier`) and :func:`build_database_graph`, so Case 3
  can also run as a distributable task graph under the parallel farm
  policy — which is what gives it the controller's churn recovery (the
  JXTAServe pipeline above has no retry path).
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence

import numpy as np

from ..core.errors import UnitError
from ..core.registry import register_unit
from ..core.taskgraph import TaskGraph
from ..core.types import GraphData, TableData
from ..core.units import ParamSpec, Unit
from ..p2p.discovery import DiscoveryService
from ..p2p.jxtaserve import JxtaServe, JxtaService
from ..p2p.peer import Peer
from ..simkernel import Event

__all__ = [
    "Database",
    "DatabaseError",
    "QuerySpec",
    "apply_where",
    "apply_manipulation",
    "visualise_table",
    "verify_table",
    "DatabaseSite",
    "DatabasePipeline",
    "run_pipeline",
    "SERVICE_KINDS",
    "register_table",
    "TableSource",
    "TableManipulator",
    "TableVerifier",
    "build_database_graph",
    "build_database_multistage_graph",
]

SERVICE_KINDS = ("data-access", "data-manipulate", "data-visualise", "data-verify")


class DatabaseError(Exception):
    """Relational-engine errors (unknown table/column, bad query...)."""


class Database:
    """A tiny typed relational store: tables of named columns."""

    def __init__(self, name: str = "db"):
        self.name = name
        self._tables: dict[str, TableData] = {}

    def create_table(self, name: str, columns: list[str]) -> None:
        if name in self._tables:
            raise DatabaseError(f"table {name!r} already exists")
        self._tables[name] = TableData(columns)

    def insert(self, table: str, row: tuple) -> None:
        self.table(table).append(row)

    def table(self, name: str) -> TableData:
        if name not in self._tables:
            raise DatabaseError(f"no table {name!r}; have {sorted(self._tables)}")
        return self._tables[name]

    def tables(self) -> list[str]:
        return sorted(self._tables)

    def load_csv(self, table: str, text: str) -> int:
        """Load a flat file: first line headers, numeric cells coerced."""
        lines = [ln for ln in io.StringIO(text).read().splitlines() if ln.strip()]
        if not lines:
            raise DatabaseError("empty flat file")
        headers = [h.strip() for h in lines[0].split(",")]
        if table not in self._tables:
            self.create_table(table, headers)
        elif self.table(table).columns != headers:
            raise DatabaseError(
                f"flat-file headers {headers} do not match table {table!r}"
            )
        count = 0
        for line in lines[1:]:
            cells: list[Any] = []
            for cell in line.split(","):
                cell = cell.strip()
                try:
                    cells.append(float(cell) if "." in cell else int(cell))
                except ValueError:
                    cells.append(cell)
            self.insert(table, tuple(cells))
            count += 1
        return count


# -- declarative query pieces (these travel over pipes, so no lambdas) ---------


@dataclass(frozen=True)
class QuerySpec:
    """A serialisable pipeline request.

    ``where`` is a list of ``(column, op, value)`` triples with op in
    ``== != < <= > >=``; ``manipulate`` is ``(operation, column)`` with
    operation in ``sort | sort_desc | topk | sum_by``.
    """

    table: str
    where: tuple = ()
    manipulate: Optional[tuple] = None
    x_column: str = ""
    y_column: str = ""
    expect_min_rows: int = 0


_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def apply_where(table: TableData, where: tuple) -> TableData:
    """Filter rows by conjunction of (column, op, value) predicates."""
    out = TableData(table.columns)
    for row in table.rows:
        keep = True
        for column, op, value in where:
            if op not in _OPS:
                raise DatabaseError(f"unknown operator {op!r}")
            try:
                idx = table.columns.index(column)
            except ValueError:
                raise DatabaseError(f"no column {column!r}") from None
            if not _OPS[op](row[idx], value):
                keep = False
                break
        if keep:
            out.append(row)
    return out


def apply_manipulation(table: TableData, manipulate: Optional[tuple]) -> TableData:
    """Sort / top-k / group-sum a table."""
    if manipulate is None:
        return table
    operation, column = manipulate[0], manipulate[1]
    if column not in table.columns:
        raise DatabaseError(f"no column {column!r}")
    idx = table.columns.index(column)
    if operation == "sort":
        return TableData(table.columns, sorted(table.rows, key=lambda r: r[idx]))
    if operation == "sort_desc":
        return TableData(
            table.columns, sorted(table.rows, key=lambda r: r[idx], reverse=True)
        )
    if operation == "topk":
        k = int(manipulate[2]) if len(manipulate) > 2 else 5
        rows = sorted(table.rows, key=lambda r: r[idx], reverse=True)[:k]
        return TableData(table.columns, rows)
    if operation == "sum_by":
        value_col = manipulate[2] if len(manipulate) > 2 else None
        if value_col is None or value_col not in table.columns:
            raise DatabaseError("sum_by needs a value column")
        vidx = table.columns.index(value_col)
        totals: dict[Any, float] = {}
        for row in table.rows:
            totals[row[idx]] = totals.get(row[idx], 0.0) + float(row[vidx])
        return TableData(
            [column, f"sum_{value_col}"],
            sorted(totals.items()),
        )
    raise DatabaseError(f"unknown manipulation {operation!r}")


def visualise_table(table: TableData, x_column: str, y_column: str) -> GraphData:
    """Project two numeric columns into a plottable series."""
    xs = table.column(x_column) if x_column else list(range(len(table)))
    ys = table.column(y_column)
    try:
        x = np.asarray(xs, dtype=float)
        y = np.asarray(ys, dtype=float)
    except (TypeError, ValueError) as exc:
        raise DatabaseError(f"non-numeric visualisation columns: {exc}") from exc
    return GraphData(x=x, y=y, label=f"{y_column} vs {x_column or 'row'}")


def verify_table(table: TableData, spec: QuerySpec) -> dict[str, Any]:
    """The data-verification stage: structural checks + row-count floor."""
    problems = []
    width = len(table.columns)
    for i, row in enumerate(table.rows):
        if len(row) != width:  # pragma: no cover - TableData enforces this
            problems.append(f"row {i} has width {len(row)}")
    if len(table) < spec.expect_min_rows:
        problems.append(
            f"expected at least {spec.expect_min_rows} rows, got {len(table)}"
        )
    return {"ok": not problems, "problems": problems, "rows": len(table)}


# -- services on peers --------------------------------------------------------------


class DatabaseSite:
    """One geographic site hosting a subset of the four service kinds."""

    def __init__(
        self,
        peer: Peer,
        discovery: DiscoveryService,
        database: Optional[Database] = None,
        kinds: tuple[str, ...] = SERVICE_KINDS,
        accuracy: float = 1.0,
    ):
        unknown = set(kinds) - set(SERVICE_KINDS)
        if unknown:
            raise DatabaseError(f"unknown service kinds {sorted(unknown)}")
        self.peer = peer
        self.serve = JxtaServe(peer, discovery)
        self.database = database
        self.accuracy = accuracy
        self.services: dict[str, JxtaService] = {}
        for kind in kinds:
            if kind == "data-access" and database is None:
                raise DatabaseError("data-access service requires a database")
            handler = {
                "data-access": self._access,
                "data-manipulate": self._manipulate,
                "data-visualise": self._visualise,
                "data-verify": self._verify,
            }[kind]
            name = f"{kind}@{peer.peer_id}"
            self.services[kind] = self.serve.register_service(
                name,
                kind=kind,
                num_inputs=1,
                num_outputs=1,
                handler=handler,
                attrs={"accuracy": accuracy, "site": peer.peer_id},
            )

    # Stage handlers: each receives (spec, payload, reply_to) and pipes the
    # enriched envelope onward through its (dynamically bound) output.
    def _access(self, node: int, envelope, svc: JxtaService) -> None:
        spec: QuerySpec = envelope["spec"]
        table = apply_where(self.database.table(spec.table), spec.where)
        envelope = {**envelope, "table": table, "trail": envelope["trail"] + [svc.name]}
        svc.emit(0, envelope, size_bytes=table.payload_nbytes())

    def _manipulate(self, node: int, envelope, svc: JxtaService) -> None:
        spec: QuerySpec = envelope["spec"]
        table = apply_manipulation(envelope["table"], spec.manipulate)
        envelope = {**envelope, "table": table, "trail": envelope["trail"] + [svc.name]}
        svc.emit(0, envelope, size_bytes=table.payload_nbytes())

    def _visualise(self, node: int, envelope, svc: JxtaService) -> None:
        spec: QuerySpec = envelope["spec"]
        graph = visualise_table(envelope["table"], spec.x_column, spec.y_column)
        envelope = {**envelope, "graph": graph, "trail": envelope["trail"] + [svc.name]}
        svc.emit(0, envelope, size_bytes=graph.payload_nbytes())

    def _verify(self, node: int, envelope, svc: JxtaService) -> None:
        spec: QuerySpec = envelope["spec"]
        report = verify_table(envelope["table"], spec)
        envelope = {**envelope, "report": report, "trail": envelope["trail"] + [svc.name]}
        svc.emit(0, envelope, size_bytes=512)


class DatabasePipeline:
    """The user's side: discover, service-bind, execute (§3.6.3).

    "The pipeline is instantiated with peer references as new services
    become available. ... Once a service has been selected, and the
    Triana system has undertaken a service-bind to each of the stages in
    the pipeline, Triana now initiates the execution procedure."
    """

    def __init__(self, peer: Peer, discovery: DiscoveryService):
        self.peer = peer
        self.serve = JxtaServe(peer, discovery)
        self.discovery = discovery
        self._result_pipe = self.serve.pipes.create_input(
            f"pipeline-result@{peer.peer_id}"
        )
        self.bound: dict[str, Any] = {}

    def discover_services(self) -> Event:
        """Find all candidate services for all four stages.

        Returns an event yielding ``{kind: [advertisements]}``.
        """
        sim = self.peer.sim
        done = sim.event()
        query = self.discovery.query(
            self.peer,
            adv_type="service",
            predicate=lambda attrs: attrs.get("kind") in SERVICE_KINDS,
        )

        def collect(ev):
            by_kind: dict[str, list] = {k: [] for k in SERVICE_KINDS}
            for adv in ev.value:
                by_kind[adv.attributes["kind"]].append(adv)
            done.succeed(by_kind)

        query.callbacks.append(collect)
        return done

    def bind(
        self,
        candidates: dict[str, list],
        preference: Optional[Callable[[dict[str, Any]], float]] = None,
    ) -> dict[str, dict[str, Any]]:
        """Select one service per stage ("based on ... accuracy") and bind.

        ``preference`` scores an advertisement attribute dict; highest
        wins (default: the advertised accuracy).
        """
        score = preference or (lambda attrs: attrs.get("accuracy", 0.0))
        chosen = {}
        for kind in SERVICE_KINDS:
            options = candidates.get(kind, [])
            if not options:
                raise DatabaseError(f"no service available for stage {kind!r}")
            best = max(options, key=lambda adv: score(adv.attributes))
            chosen[kind] = {"name": best.name, **best.attributes}
        self.bound = chosen
        return chosen

def run_pipeline(
    user: DatabasePipeline,
    sites: list[DatabaseSite],
    spec: QuerySpec,
    preference: Optional[Callable[[dict[str, Any]], float]] = None,
) -> Event:
    """Discover, bind, route and execute the Case-3 pipeline end-to-end.

    Returns an event yielding the final envelope with ``table``,
    ``graph``, ``report`` and the ``trail`` of services traversed.
    """
    done = user.peer.sim.event()

    def after_discovery(ev):
        chosen = user.bind(ev.value, preference)
        by_name = {
            svc.name: (site, svc)
            for site in sites
            for svc in site.services.values()
        }
        # Route each chosen stage to the next chosen stage's input pipe.
        order = [chosen[k]["name"] for k in SERVICE_KINDS]
        for here, nxt in zip(order, order[1:]):
            site, svc = by_name[here]
            next_site, next_svc = by_name[nxt]
            svc.connect_direct(0, nxt, 0, next_site.peer.peer_id)
        last_site, last_svc = by_name[order[-1]]
        out = last_site.serve.pipes.create_output(user._result_pipe.name)
        out.bind_direct(user.peer.peer_id)
        last_svc.outputs[0] = out

        def on_result(ev2):
            done.succeed(ev2.value)

        user._result_pipe.get().callbacks.append(on_result)
        # Kick the pipeline: the request enters stage 1's input pipe.
        first_site, _first_svc = by_name[order[0]]
        kick = user.serve.pipes.create_output(f"{order[0]}.in0")
        kick.bind_direct(first_site.peer.peer_id)
        kick.send({"spec": spec, "trail": []}, size_bytes=256)

    user.discover_services().callbacks.append(after_discovery)
    return done


# -- graph-based stages (distributable with churn recovery) --------------------

#: Table registry: TableSource units reference tables by key so the
#: task-graph XML stays small (same pattern as galaxy's dataset registry).
_TABLES: dict[str, TableData] = {}


def register_table(key: str, table: TableData) -> None:
    """Make a table available to TableSource units by key."""
    _TABLES[key] = table


@register_unit(category="database")
class TableSource(Unit):
    """Data-access stage as a unit: emits one chunk of rows per iteration.

    Chunking is what makes the farm policy applicable — each chunk is an
    independent piece of manipulation work, like the galaxy frames.
    """

    NUM_INPUTS = 0
    NUM_OUTPUTS = 1
    OUTPUT_TYPES = (TableData,)
    PARAMETERS = (
        ParamSpec("table", "", "registered table key"),
        ParamSpec("chunk_rows", 8, "rows per emitted chunk"),
    )
    REQUIRED_PERMISSIONS = ("fs.read",)

    def reset(self) -> None:
        self._index = 0

    def checkpoint(self) -> dict[str, Any]:
        return {"index": self._index}

    def restore(self, state: dict[str, Any]) -> None:
        self._index = int(state.get("index", 0))

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        key = self.get_param("table")
        if key not in _TABLES:
            raise UnitError(f"TableSource: no table registered as {key!r}")
        table = _TABLES[key]
        chunk = int(self.get_param("chunk_rows"))
        if chunk < 1:
            raise UnitError("TableSource: chunk_rows must be >= 1")
        start = self._index * chunk
        if start >= len(table):
            raise UnitError(
                f"TableSource: table {key!r} exhausted after {self._index} chunks"
            )
        self._index += 1
        return [TableData(table.columns, table.rows[start : start + chunk])]


@register_unit(category="database")
class TableManipulator(Unit):
    """Filter + manipulate one chunk (the farmed, stateless work)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (TableData,)
    OUTPUT_TYPES = (TableData,)
    CODE_SIZE = 40_000
    PARAMETERS = (
        # JSON-serialisable: a list of [column, op, value] conjuncts.
        ParamSpec("where", [], "filter predicates [[column, op, value], ...]"),
        ParamSpec("sort_column", "", "sort chunk by this column ('' = keep order)"),
        ParamSpec("descending", False, "sort direction"),
    )

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (table,) = inputs
        try:
            out = apply_where(table, tuple(tuple(w) for w in self.get_param("where")))
            column = self.get_param("sort_column")
            if column:
                op = "sort_desc" if self.get_param("descending") else "sort"
                out = apply_manipulation(out, (op, column))
        except DatabaseError as exc:
            raise UnitError(f"TableManipulator: {exc}") from exc
        return [out]

    def estimated_flops(self, input_nbytes: int) -> float:
        # Predicate scan + comparison sort over ~48 B rows.
        rows = max(input_nbytes / 48.0, 1.0)
        return 200.0 * rows * (1.0 + np.log2(rows))


@register_unit(category="database")
class TableVerifier(Unit):
    """Verification sink: accumulates chunk reports and the merged table."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 0
    INPUT_TYPES = (TableData,)
    PARAMETERS = (ParamSpec("expect_min_rows", 0, "per-chunk row-count floor"),)

    def reset(self) -> None:
        self.reports: list[dict[str, Any]] = []
        self.merged: Optional[TableData] = None

    def checkpoint(self) -> dict[str, Any]:
        return {
            "reports": list(self.reports),
            "columns": self.merged.columns if self.merged else None,
            "rows": list(self.merged.rows) if self.merged else [],
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.reports = list(state.get("reports", []))
        columns = state.get("columns")
        self.merged = (
            TableData(columns, list(state.get("rows", []))) if columns else None
        )

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (table,) = inputs
        spec = QuerySpec(
            table="", expect_min_rows=int(self.get_param("expect_min_rows"))
        )
        self.reports.append(verify_table(table, spec))
        if self.merged is None:
            self.merged = TableData(table.columns)
        for row in table.rows:
            self.merged.append(row)
        return []

    @property
    def all_ok(self) -> bool:
        return bool(self.reports) and all(r["ok"] for r in self.reports)


def build_database_graph(
    table_key: str,
    chunk_rows: int = 8,
    where: Optional[list] = None,
    sort_column: str = "",
    policy: str = "parallel",
) -> TaskGraph:
    """The Case-3 task graph: Source → [Manipulate]@policy → Verify."""
    g = TaskGraph("database-pipeline")
    g.add_task("Source", "TableSource", table=table_key, chunk_rows=chunk_rows)
    g.add_task(
        "Manipulate",
        "TableManipulator",
        where=list(where or []),
        sort_column=sort_column,
    )
    g.add_task("Verify", "TableVerifier")
    g.connect("Source", 0, "Manipulate", 0)
    g.connect("Manipulate", 0, "Verify", 0)
    g.group_tasks("QueryFarm", ["Manipulate"], policy=policy)
    return g


def build_database_multistage_graph(
    table_key: str,
    chunk_rows: int = 8,
    where: Optional[list] = None,
    sort_column: str = "",
    filter_policy: str = "parallel",
    sort_policy: str = "chunked",
) -> TaskGraph:
    """Case 3 with separate filter and sort stages: two policy groups.

    Source → [Filter]@filter_policy → [Sort]@sort_policy → Verify.  The
    filter stage drops rows (shrinking the payloads crossing the second
    boundary), the sort stage orders each surviving chunk; both are
    independent per-chunk work, so each can be farmed under its own
    policy in one staged run.
    """
    g = TaskGraph("database-multistage")
    g.add_task("Source", "TableSource", table=table_key, chunk_rows=chunk_rows)
    g.add_task("Filter", "TableManipulator", where=list(where or []))
    g.add_task("Sort", "TableManipulator", sort_column=sort_column)
    g.add_task("Verify", "TableVerifier")
    g.connect("Source", 0, "Filter", 0)
    g.connect("Filter", 0, "Sort", 0)
    g.connect("Sort", 0, "Verify", 0)
    g.group_tasks("FilterFarm", ["Filter"], policy=filter_policy)
    g.group_tasks("SortFarm", ["Sort"], policy=sort_policy)
    return g
