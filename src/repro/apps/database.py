"""Case 3 — database access pipelines (§3.6.3).

"the user establishes a pipeline in Triana consisting of: (1) a data
access service, (2) a data manipulation service, (3) a data visualisation
service, and (4) a data verification service. ... Each of these services
may now be provided by different Triana Peers – which may be located at
different geographic sites. ... The Triana system looks on the network
to discover peers which offer each of these services in turn."

Provides:

* a small in-memory relational engine (:class:`Database`) with flat-file
  (CSV) loading — "can either read from flat files, or read from a
  structured database";
* the four pipeline stages as JXTAServe services hosted on peers
  (:class:`DatabaseSite`), advertised with quality attributes so the user
  can "select a service based on other options ... (such as accuracy)";
* :class:`DatabasePipeline` — discovery, service-bind and execution of
  the four-stage pipeline.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from ..core.types import GraphData, TableData
from ..p2p.discovery import DiscoveryService
from ..p2p.jxtaserve import JxtaServe, JxtaService
from ..p2p.peer import Peer
from ..simkernel import Event

__all__ = [
    "Database",
    "DatabaseError",
    "QuerySpec",
    "apply_where",
    "apply_manipulation",
    "visualise_table",
    "verify_table",
    "DatabaseSite",
    "DatabasePipeline",
    "run_pipeline",
    "SERVICE_KINDS",
]

SERVICE_KINDS = ("data-access", "data-manipulate", "data-visualise", "data-verify")


class DatabaseError(Exception):
    """Relational-engine errors (unknown table/column, bad query...)."""


class Database:
    """A tiny typed relational store: tables of named columns."""

    def __init__(self, name: str = "db"):
        self.name = name
        self._tables: dict[str, TableData] = {}

    def create_table(self, name: str, columns: list[str]) -> None:
        if name in self._tables:
            raise DatabaseError(f"table {name!r} already exists")
        self._tables[name] = TableData(columns)

    def insert(self, table: str, row: tuple) -> None:
        self.table(table).append(row)

    def table(self, name: str) -> TableData:
        if name not in self._tables:
            raise DatabaseError(f"no table {name!r}; have {sorted(self._tables)}")
        return self._tables[name]

    def tables(self) -> list[str]:
        return sorted(self._tables)

    def load_csv(self, table: str, text: str) -> int:
        """Load a flat file: first line headers, numeric cells coerced."""
        lines = [ln for ln in io.StringIO(text).read().splitlines() if ln.strip()]
        if not lines:
            raise DatabaseError("empty flat file")
        headers = [h.strip() for h in lines[0].split(",")]
        if table not in self._tables:
            self.create_table(table, headers)
        elif self.table(table).columns != headers:
            raise DatabaseError(
                f"flat-file headers {headers} do not match table {table!r}"
            )
        count = 0
        for line in lines[1:]:
            cells: list[Any] = []
            for cell in line.split(","):
                cell = cell.strip()
                try:
                    cells.append(float(cell) if "." in cell else int(cell))
                except ValueError:
                    cells.append(cell)
            self.insert(table, tuple(cells))
            count += 1
        return count


# -- declarative query pieces (these travel over pipes, so no lambdas) ---------


@dataclass(frozen=True)
class QuerySpec:
    """A serialisable pipeline request.

    ``where`` is a list of ``(column, op, value)`` triples with op in
    ``== != < <= > >=``; ``manipulate`` is ``(operation, column)`` with
    operation in ``sort | sort_desc | topk | sum_by``.
    """

    table: str
    where: tuple = ()
    manipulate: Optional[tuple] = None
    x_column: str = ""
    y_column: str = ""
    expect_min_rows: int = 0


_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def apply_where(table: TableData, where: tuple) -> TableData:
    """Filter rows by conjunction of (column, op, value) predicates."""
    out = TableData(table.columns)
    for row in table.rows:
        keep = True
        for column, op, value in where:
            if op not in _OPS:
                raise DatabaseError(f"unknown operator {op!r}")
            try:
                idx = table.columns.index(column)
            except ValueError:
                raise DatabaseError(f"no column {column!r}") from None
            if not _OPS[op](row[idx], value):
                keep = False
                break
        if keep:
            out.append(row)
    return out


def apply_manipulation(table: TableData, manipulate: Optional[tuple]) -> TableData:
    """Sort / top-k / group-sum a table."""
    if manipulate is None:
        return table
    operation, column = manipulate[0], manipulate[1]
    if column not in table.columns:
        raise DatabaseError(f"no column {column!r}")
    idx = table.columns.index(column)
    if operation == "sort":
        return TableData(table.columns, sorted(table.rows, key=lambda r: r[idx]))
    if operation == "sort_desc":
        return TableData(
            table.columns, sorted(table.rows, key=lambda r: r[idx], reverse=True)
        )
    if operation == "topk":
        k = int(manipulate[2]) if len(manipulate) > 2 else 5
        rows = sorted(table.rows, key=lambda r: r[idx], reverse=True)[:k]
        return TableData(table.columns, rows)
    if operation == "sum_by":
        value_col = manipulate[2] if len(manipulate) > 2 else None
        if value_col is None or value_col not in table.columns:
            raise DatabaseError("sum_by needs a value column")
        vidx = table.columns.index(value_col)
        totals: dict[Any, float] = {}
        for row in table.rows:
            totals[row[idx]] = totals.get(row[idx], 0.0) + float(row[vidx])
        return TableData(
            [column, f"sum_{value_col}"],
            sorted(totals.items()),
        )
    raise DatabaseError(f"unknown manipulation {operation!r}")


def visualise_table(table: TableData, x_column: str, y_column: str) -> GraphData:
    """Project two numeric columns into a plottable series."""
    xs = table.column(x_column) if x_column else list(range(len(table)))
    ys = table.column(y_column)
    try:
        x = np.asarray(xs, dtype=float)
        y = np.asarray(ys, dtype=float)
    except (TypeError, ValueError) as exc:
        raise DatabaseError(f"non-numeric visualisation columns: {exc}") from exc
    return GraphData(x=x, y=y, label=f"{y_column} vs {x_column or 'row'}")


def verify_table(table: TableData, spec: QuerySpec) -> dict[str, Any]:
    """The data-verification stage: structural checks + row-count floor."""
    problems = []
    width = len(table.columns)
    for i, row in enumerate(table.rows):
        if len(row) != width:  # pragma: no cover - TableData enforces this
            problems.append(f"row {i} has width {len(row)}")
    if len(table) < spec.expect_min_rows:
        problems.append(
            f"expected at least {spec.expect_min_rows} rows, got {len(table)}"
        )
    return {"ok": not problems, "problems": problems, "rows": len(table)}


# -- services on peers --------------------------------------------------------------


class DatabaseSite:
    """One geographic site hosting a subset of the four service kinds."""

    def __init__(
        self,
        peer: Peer,
        discovery: DiscoveryService,
        database: Optional[Database] = None,
        kinds: tuple[str, ...] = SERVICE_KINDS,
        accuracy: float = 1.0,
    ):
        unknown = set(kinds) - set(SERVICE_KINDS)
        if unknown:
            raise DatabaseError(f"unknown service kinds {sorted(unknown)}")
        self.peer = peer
        self.serve = JxtaServe(peer, discovery)
        self.database = database
        self.accuracy = accuracy
        self.services: dict[str, JxtaService] = {}
        for kind in kinds:
            if kind == "data-access" and database is None:
                raise DatabaseError("data-access service requires a database")
            handler = {
                "data-access": self._access,
                "data-manipulate": self._manipulate,
                "data-visualise": self._visualise,
                "data-verify": self._verify,
            }[kind]
            name = f"{kind}@{peer.peer_id}"
            self.services[kind] = self.serve.register_service(
                name,
                kind=kind,
                num_inputs=1,
                num_outputs=1,
                handler=handler,
                attrs={"accuracy": accuracy, "site": peer.peer_id},
            )

    # Stage handlers: each receives (spec, payload, reply_to) and pipes the
    # enriched envelope onward through its (dynamically bound) output.
    def _access(self, node: int, envelope, svc: JxtaService) -> None:
        spec: QuerySpec = envelope["spec"]
        table = apply_where(self.database.table(spec.table), spec.where)
        envelope = {**envelope, "table": table, "trail": envelope["trail"] + [svc.name]}
        svc.emit(0, envelope, size_bytes=table.payload_nbytes())

    def _manipulate(self, node: int, envelope, svc: JxtaService) -> None:
        spec: QuerySpec = envelope["spec"]
        table = apply_manipulation(envelope["table"], spec.manipulate)
        envelope = {**envelope, "table": table, "trail": envelope["trail"] + [svc.name]}
        svc.emit(0, envelope, size_bytes=table.payload_nbytes())

    def _visualise(self, node: int, envelope, svc: JxtaService) -> None:
        spec: QuerySpec = envelope["spec"]
        graph = visualise_table(envelope["table"], spec.x_column, spec.y_column)
        envelope = {**envelope, "graph": graph, "trail": envelope["trail"] + [svc.name]}
        svc.emit(0, envelope, size_bytes=graph.payload_nbytes())

    def _verify(self, node: int, envelope, svc: JxtaService) -> None:
        spec: QuerySpec = envelope["spec"]
        report = verify_table(envelope["table"], spec)
        envelope = {**envelope, "report": report, "trail": envelope["trail"] + [svc.name]}
        svc.emit(0, envelope, size_bytes=512)


class DatabasePipeline:
    """The user's side: discover, service-bind, execute (§3.6.3).

    "The pipeline is instantiated with peer references as new services
    become available. ... Once a service has been selected, and the
    Triana system has undertaken a service-bind to each of the stages in
    the pipeline, Triana now initiates the execution procedure."
    """

    def __init__(self, peer: Peer, discovery: DiscoveryService):
        self.peer = peer
        self.serve = JxtaServe(peer, discovery)
        self.discovery = discovery
        self._result_pipe = self.serve.pipes.create_input(
            f"pipeline-result@{peer.peer_id}"
        )
        self.bound: dict[str, Any] = {}

    def discover_services(self) -> Event:
        """Find all candidate services for all four stages.

        Returns an event yielding ``{kind: [advertisements]}``.
        """
        sim = self.peer.sim
        done = sim.event()
        query = self.discovery.query(
            self.peer,
            adv_type="service",
            predicate=lambda attrs: attrs.get("kind") in SERVICE_KINDS,
        )

        def collect(ev):
            by_kind: dict[str, list] = {k: [] for k in SERVICE_KINDS}
            for adv in ev.value:
                by_kind[adv.attributes["kind"]].append(adv)
            done.succeed(by_kind)

        query.callbacks.append(collect)
        return done

    def bind(
        self,
        candidates: dict[str, list],
        preference: Optional[Callable[[dict[str, Any]], float]] = None,
    ) -> dict[str, dict[str, Any]]:
        """Select one service per stage ("based on ... accuracy") and bind.

        ``preference`` scores an advertisement attribute dict; highest
        wins (default: the advertised accuracy).
        """
        score = preference or (lambda attrs: attrs.get("accuracy", 0.0))
        chosen = {}
        for kind in SERVICE_KINDS:
            options = candidates.get(kind, [])
            if not options:
                raise DatabaseError(f"no service available for stage {kind!r}")
            best = max(options, key=lambda adv: score(adv.attributes))
            chosen[kind] = {"name": best.name, **best.attributes}
        self.bound = chosen
        return chosen

def run_pipeline(
    user: DatabasePipeline,
    sites: list[DatabaseSite],
    spec: QuerySpec,
    preference: Optional[Callable[[dict[str, Any]], float]] = None,
) -> Event:
    """Discover, bind, route and execute the Case-3 pipeline end-to-end.

    Returns an event yielding the final envelope with ``table``,
    ``graph``, ``report`` and the ``trail`` of services traversed.
    """
    done = user.peer.sim.event()

    def after_discovery(ev):
        chosen = user.bind(ev.value, preference)
        by_name = {
            svc.name: (site, svc)
            for site in sites
            for svc in site.services.values()
        }
        # Route each chosen stage to the next chosen stage's input pipe.
        order = [chosen[k]["name"] for k in SERVICE_KINDS]
        for here, nxt in zip(order, order[1:]):
            site, svc = by_name[here]
            next_site, next_svc = by_name[nxt]
            svc.connect_direct(0, nxt, 0, next_site.peer.peer_id)
        last_site, last_svc = by_name[order[-1]]
        out = last_site.serve.pipes.create_output(user._result_pipe.name)
        out.bind_direct(user.peer.peer_id)
        last_svc.outputs[0] = out

        def on_result(ev2):
            done.succeed(ev2.value)

        user._result_pipe.get().callbacks.append(on_result)
        # Kick the pipeline: the request enters stage 1's input pipe.
        first_site, _first_svc = by_name[order[0]]
        kick = user.serve.pipes.create_output(f"{order[0]}.in0")
        kick.bind_direct(first_site.peer.peer_id)
        kick.send({"spec": spec, "trail": []}, size_bytes=256)

    user.discover_services().callbacks.append(after_discovery)
    return done
