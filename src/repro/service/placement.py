"""Placement and dispatch policies — "making placement decisions".

The paper's abstract: Triana "can support the user in making placement
decisions for their modules"; §4: peers are discovered "based on very
simple attributes – such as CPU capability and available free memory".

Two layers:

* :func:`rank_workers` — order discovered worker advertisements by a
  capability strategy (cpu, ram, bandwidth) before choosing how many to
  use;
* :class:`DispatchPolicy` — how a running farm deals iterations to its
  replicas: classic round-robin, or **weighted** least-finish-time
  dispatch that keeps a 4 GHz volunteer busier than a 1 GHz one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from ..p2p.advertisement import Advertisement
from .errors import SchedulingError

__all__ = [
    "rank_workers",
    "DispatchPolicy",
    "RoundRobin",
    "WeightedBySpeed",
    "ReputationWeighted",
    "make_dispatch_policy",
    "register_dispatch_policy",
    "dispatch_policy_names",
]


_RANK_KEYS = {
    "cpu": "cpu_flops",
    "ram": "free_ram",
    "bandwidth": "down_bps",
}


def rank_workers(
    advertisements: Sequence[Advertisement], strategy: str = "cpu"
) -> list[str]:
    """Order worker hosts best-first by an advertised capability."""
    if strategy not in _RANK_KEYS:
        raise SchedulingError(
            f"unknown ranking strategy {strategy!r}; valid: {sorted(_RANK_KEYS)}"
        )
    key = _RANK_KEYS[strategy]
    seen: dict[str, float] = {}
    for adv in advertisements:
        host = adv.attributes.get("host")
        if host is None:
            continue
        value = float(adv.attributes.get(key, 0.0))
        seen[host] = max(seen.get(host, 0.0), value)
    return sorted(seen, key=lambda h: (-seen[h], h))


class DispatchPolicy:
    """Chooses which farm replica receives the next iteration."""

    def setup(self, replica_speeds: list[float]) -> None:
        """Called once with each replica's modelled CPU speed."""
        self.speeds = list(replica_speeds)
        if not self.speeds:
            raise SchedulingError("dispatch policy needs at least one replica")

    def choose(self, iteration: int) -> int:  # pragma: no cover - overridden
        raise NotImplementedError

    def completed(self, replica: int) -> None:
        """Notify that a result returned from ``replica``."""

    def mark_offline(self, replica: int) -> None:
        """Notify that ``replica`` is suspected dead (churn signal)."""

    def mark_online(self, replica: int) -> None:
        """Notify that a suspected ``replica`` proved alive again."""


class RoundRobin(DispatchPolicy):
    """The reference policy: iteration i → replica i mod k."""

    def choose(self, iteration: int) -> int:
        return iteration % len(self.speeds)


@dataclass
class WeightedBySpeed(DispatchPolicy):
    """Least-estimated-finish-time dispatch for heterogeneous fleets.

    Each replica tracks its outstanding work; the next iteration goes to
    the replica whose queue will drain soonest at its CPU speed.  With
    equal speeds this degenerates to round-robin-ish fairness.  Suspected
    replicas are excluded from ``choose`` until marked back online, so
    weights effectively re-normalise over the surviving fleet under
    churn; if the whole fleet is suspected, everyone is eligible again.
    """

    outstanding: list[int] = field(default_factory=list)
    offline: set[int] = field(default_factory=set)

    def setup(self, replica_speeds: list[float]) -> None:
        super().setup(replica_speeds)
        if any(s <= 0 for s in self.speeds):
            raise SchedulingError("replica speeds must be positive")
        self.outstanding = [0] * len(self.speeds)
        self.offline = set()

    def choose(self, iteration: int) -> int:
        eligible = [r for r in range(len(self.speeds)) if r not in self.offline]
        if not eligible:
            eligible = list(range(len(self.speeds)))
        # Estimated finish time of one more unit of work per replica.
        best = min(
            eligible,
            key=lambda r: ((self.outstanding[r] + 1) / self.speeds[r], r),
        )
        self.outstanding[best] += 1
        return best

    def completed(self, replica: int) -> None:
        if self.outstanding[replica] > 0:
            self.outstanding[replica] -= 1

    def mark_offline(self, replica: int) -> None:
        if 0 <= replica < len(self.speeds):
            self.offline.add(replica)

    def mark_online(self, replica: int) -> None:
        self.offline.discard(replica)


@dataclass
class ReputationWeighted(WeightedBySpeed):
    """Least-finish-time dispatch biased by failure-detector trust scores.

    Extends :class:`WeightedBySpeed`: each replica's effective speed is
    scaled by its health score from the
    :class:`~repro.service.detector.HeartbeatFailureDetector` — which the
    integrity layer's :class:`~repro.service.integrity.ReputationLedger`
    drains on every conviction — so a peer caught lying receives
    steadily less work, and blacklisted or quarantined peers receive
    none while any trusted peer remains.  Without a bound detector (the
    farm binds one via :meth:`bind_reputation` before ``setup``) it
    degrades to plain :class:`WeightedBySpeed`.
    """

    def __post_init__(self):
        self._detector = None
        self._hosts: list[str] = []
        self._sim = None

    def bind_reputation(self, detector, hosts: list[str], sim) -> None:
        """Attach the detector and the replica→host mapping for this run."""
        self._detector = detector
        self._hosts = list(hosts)
        self._sim = sim

    #: trust floor — an untrusted peer is deprioritised, not divided by zero
    TRUST_FLOOR = 0.05

    def choose(self, iteration: int) -> int:
        if self._detector is None or self._sim is None:
            return super().choose(iteration)
        now = self._sim.now
        k = len(self.speeds)

        def trusted(r: int) -> bool:
            return r < len(self._hosts) and self._detector.is_dispatchable(
                self._hosts[r], now
            )

        eligible = [
            r for r in range(k) if r not in self.offline and trusted(r)
        ]
        if not eligible:
            # Every replica is suspect: fall back to liveness-only, then
            # to everyone — a farm must keep dealing to finish the run.
            eligible = [r for r in range(k) if r not in self.offline]
        if not eligible:
            eligible = list(range(k))

        def score(r: int) -> float:
            rec = self._detector.workers.get(self._hosts[r]) if (
                r < len(self._hosts)
            ) else None
            return rec.score if rec is not None else 1.0

        best = min(
            eligible,
            key=lambda r: (
                (self.outstanding[r] + 1)
                / (self.speeds[r] * max(score(r), self.TRUST_FLOOR)),
                r,
            ),
        )
        self.outstanding[best] += 1
        return best


#: name → zero-arg DispatchPolicy factory (see register_dispatch_policy)
_DISPATCH_POLICIES: dict[str, Any] = {}


def register_dispatch_policy(name: str, factory) -> None:
    """Register a farm dealing policy under ``name``.

    ``factory`` is a zero-argument callable returning a fresh
    :class:`DispatchPolicy`.  Registered names show up in the CLI's
    ``--dispatch`` choices.
    """
    if not name or not isinstance(name, str):
        raise SchedulingError("dispatch policy name must be a non-empty string")
    if name in _DISPATCH_POLICIES:
        raise SchedulingError(f"dispatch policy {name!r} already registered")
    _DISPATCH_POLICIES[name] = factory


def dispatch_policy_names() -> tuple[str, ...]:
    """Every registered dealing-policy name, sorted."""
    return tuple(sorted(_DISPATCH_POLICIES))


def make_dispatch_policy(name: str) -> DispatchPolicy:
    """Instantiate a registered dealing policy (``round_robin`` | ...)."""
    try:
        factory = _DISPATCH_POLICIES[name]
    except KeyError:
        raise SchedulingError(
            f"unknown dispatch policy {name!r}; valid: {sorted(_DISPATCH_POLICIES)}"
        ) from None
    return factory()


register_dispatch_policy("round_robin", RoundRobin)
register_dispatch_policy("weighted", WeightedBySpeed)
register_dispatch_policy("reputation_weighted", ReputationWeighted)
