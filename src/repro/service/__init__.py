"""Triana service layer (system S6): workers, controller, distribution.

The paper's Fig. 3 architecture: Triana Controller (TC) ↔ Triana Service
(TS) daemons, with module deployment over pipes and on-demand code
download.

* :class:`TrianaService` — the worker daemon (server component)
* :class:`TrianaController` — the scheduling manager (client + command
  process components)
* :class:`HeartbeatFailureDetector` — suspicion + worker-health scoring
  behind the controller's adaptive recovery (see docs/robustness.md)
* :func:`partition_for_group` — splits a graph around its policy group
"""

from .cluster import ClusterTrianaService
from .controller import RunReport, TrianaController
from .detector import HeartbeatFailureDetector, WorkerHealth
from .errors import DeploymentError, MigrationError, SchedulingError, ServiceError
from .monitor import ProgressEvent, ProgressMonitor, TextProgressView, WapProgressView
from .partition import GroupPartition, find_distributable_group, partition_for_group
from .worker import WORKER_SERVICE_KIND, DeploymentSpec, TrianaService

__all__ = [
    "ClusterTrianaService",
    "DeploymentError",
    "DeploymentSpec",
    "GroupPartition",
    "HeartbeatFailureDetector",
    "MigrationError",
    "ProgressEvent",
    "ProgressMonitor",
    "RunReport",
    "SchedulingError",
    "ServiceError",
    "TextProgressView",
    "TrianaController",
    "TrianaService",
    "WORKER_SERVICE_KIND",
    "WapProgressView",
    "WorkerHealth",
    "find_distributable_group",
    "partition_for_group",
]
