"""Triana service layer (system S6): workers, controller, distribution.

The paper's Fig. 3 architecture: Triana Controller (TC) ↔ Triana Service
(TS) daemons, with module deployment over pipes and on-demand code
download.

* :class:`TrianaService` — the worker daemon (server component)
* :class:`TrianaController` — the scheduling manager (client + command
  process components)
* :class:`HeartbeatFailureDetector` — suspicion + worker-health scoring
  behind the controller's adaptive recovery (see docs/robustness.md)
* :func:`partition_stages` — splits a graph around its policy groups
* :mod:`repro.service.policies` — pluggable distribution policies
  (:class:`DistributionPolicy`, :class:`PolicyRegistry`,
  :func:`register_policy`)
"""

from .cluster import ClusterTrianaService
from .controller import RunReport, TrianaController
from .detector import HeartbeatFailureDetector, WorkerHealth
from .errors import DeploymentError, MigrationError, SchedulingError, ServiceError
from .monitor import ProgressEvent, ProgressMonitor, TextProgressView, WapProgressView
from .partition import (
    GroupPartition,
    StagedPartition,
    find_distributable_group,
    find_distributable_groups,
    partition_for_group,
    partition_stages,
)
from .placement import dispatch_policy_names, register_dispatch_policy
from .policies import (
    ChunkedFarmPolicy,
    DispatchContext,
    DistributionPolicy,
    ParallelFarmPolicy,
    PipelinePolicy,
    PolicyRegistry,
    global_policy_registry,
    register_policy,
)
from .worker import WORKER_SERVICE_KIND, DeploymentSpec, TrianaService

__all__ = [
    "ChunkedFarmPolicy",
    "ClusterTrianaService",
    "DeploymentError",
    "DeploymentSpec",
    "DispatchContext",
    "DistributionPolicy",
    "GroupPartition",
    "HeartbeatFailureDetector",
    "MigrationError",
    "ParallelFarmPolicy",
    "PipelinePolicy",
    "PolicyRegistry",
    "ProgressEvent",
    "ProgressMonitor",
    "RunReport",
    "SchedulingError",
    "StagedPartition",
    "ServiceError",
    "TextProgressView",
    "TrianaController",
    "TrianaService",
    "WORKER_SERVICE_KIND",
    "WapProgressView",
    "WorkerHealth",
    "dispatch_policy_names",
    "find_distributable_group",
    "find_distributable_groups",
    "global_policy_registry",
    "partition_for_group",
    "partition_stages",
    "register_dispatch_policy",
    "register_policy",
]
