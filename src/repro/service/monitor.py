"""Progress monitoring — the disconnected-UI requirement of §3.2.

"the Triana implementation disconnects the user interface from the
Triana engine.  Communication from the user interface is via a defined
API to the Triana engine that can be accessed by other views of the
Triana network. ... users may want a different view when utilising a WAP
enabled mobile phones or PDA device.  Furthermore, users should be able
to obtain progress of their running network via the internet using a
standard Web browser."

The controller publishes structured progress events; any number of
*views* subscribe through one API.  Two reference views are provided:
:class:`TextProgressView` (the browser-style page) and
:class:`WapProgressView` (a line-constrained small-device view).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ProgressEvent",
    "ProgressMonitor",
    "TextProgressView",
    "WapProgressView",
]


@dataclass(frozen=True)
class ProgressEvent:
    """One structured progress notification."""

    time: float
    kind: str
    data: tuple[tuple[str, Any], ...] = ()

    @property
    def info(self) -> dict[str, Any]:
        return dict(self.data)


class ProgressMonitor:
    """Base subscriber: records every event; subclasses render views."""

    def __init__(self):
        self.events: list[ProgressEvent] = []

    def notify(self, event: ProgressEvent) -> None:
        self.events.append(event)
        self.render(event)

    def render(self, event: ProgressEvent) -> None:
        """View-specific hook; the base monitor only records."""

    def of_kind(self, kind: str) -> list[ProgressEvent]:
        return [e for e in self.events if e.kind == kind]


@dataclass
class _RunState:
    iterations_total: int = 0
    iterations_done: int = 0
    deployments: int = 0
    redispatches: int = 0
    finished: bool = False


class TextProgressView(ProgressMonitor):
    """Browser-style progress page: full lines, rendered on demand."""

    def __init__(self):
        super().__init__()
        self.state = _RunState()
        self.lines: list[str] = []

    def render(self, event: ProgressEvent) -> None:
        info = event.info
        if event.kind == "run-started":
            self.state = _RunState(iterations_total=info.get("iterations", 0))
            self.lines.append(
                f"[t={event.time:.2f}] run started: {info.get('graph')} "
                f"({info.get('iterations')} iterations, policy {info.get('policy')})"
            )
        elif event.kind == "deployed":
            self.state.deployments += 1
            self.lines.append(
                f"[t={event.time:.2f}] deployed {info.get('deployment')} "
                f"on {info.get('worker')}"
            )
        elif event.kind == "iteration-complete":
            self.state.iterations_done += 1
            self.lines.append(
                f"[t={event.time:.2f}] iteration {info.get('iteration')} complete "
                f"({self.state.iterations_done}/{self.state.iterations_total})"
            )
        elif event.kind == "redispatch":
            self.state.redispatches += 1
            self.lines.append(
                f"[t={event.time:.2f}] re-dispatched iteration "
                f"{info.get('iteration')} to {info.get('worker')} (churn)"
            )
        elif event.kind == "run-finished":
            self.state.finished = True
            self.lines.append(
                f"[t={event.time:.2f}] run finished: makespan "
                f"{info.get('makespan', 0.0):.2f}s"
            )

    def page(self) -> str:
        """The full progress page a browser would fetch."""
        done, total = self.state.iterations_done, self.state.iterations_total
        pct = 100.0 * done / total if total else 0.0
        header = (
            f"Triana network progress — {done}/{total} iterations ({pct:.0f}%), "
            f"{self.state.deployments} deployments, "
            f"{self.state.redispatches} re-dispatches"
        )
        return "\n".join([header, "-" * len(header), *self.lines])


class WapProgressView(ProgressMonitor):
    """Small-device view: one short status string, hard width cap."""

    MAX_CHARS = 40

    def __init__(self):
        super().__init__()
        self.status = "idle"
        self._total = 0
        self._done = 0

    def render(self, event: ProgressEvent) -> None:
        if event.kind == "run-started":
            self._total = event.info.get("iterations", 0)
            self._done = 0
            self.status = f"run 0/{self._total}"
        elif event.kind == "iteration-complete":
            self._done += 1
            self.status = f"run {self._done}/{self._total}"
        elif event.kind == "run-finished":
            self.status = f"done {self._done}/{self._total}"
        if len(self.status) > self.MAX_CHARS:  # pragma: no cover - safety
            self.status = self.status[: self.MAX_CHARS]
