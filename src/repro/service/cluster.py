"""A Triana peer fronting a batch-managed cluster.

"The server component within each peer can interact with Globus GRAM to
launch jobs locally on the node.  This is useful to support nodes which
host parallel machines or workstations clusters.  A Triana network
therefore can be composed of a number of different kinds of resource
management systems – supported via a gateway between a Triana Peer and
the particular system used to launch and manage jobs."

:class:`ClusterTrianaService` behaves exactly like a volunteer
:class:`~repro.service.worker.TrianaService` on the wire, but executes
iterations by submitting jobs to a local :class:`~repro.resources.gram.
BatchQueue` through a :class:`~repro.resources.gram.GramGateway` —
authenticated with a CA credential, billed to an account — so queued
iterations run **concurrently** across the cluster's slots.
"""

from __future__ import annotations

from typing import Optional

from ..resources.accounts import (
    CertificateAuthority,
    Credential,
    GlobusAccountManager,
)
from ..resources.gram import BatchQueue, GramGateway, JobSpec
from ..p2p.peer import Peer
from ..mobility.sandbox import SandboxPolicy
from .worker import TrianaService, _Deployment

__all__ = ["ClusterTrianaService"]


class ClusterTrianaService(TrianaService):
    """Worker whose execution engine is a local batch resource manager.

    Parameters
    ----------
    queue:
        The cluster's batch queue (nodes × cores slots).
    gateway / credential:
        Authenticated submission path; if omitted, a private CA, account
        and gateway are provisioned (the common self-managed cluster).
    """

    def __init__(
        self,
        peer: Peer,
        repository_host: str,
        queue: Optional[BatchQueue] = None,
        gateway: Optional[GramGateway] = None,
        credential: Optional[Credential] = None,
        grid_user: str = "triana",
        sandbox: Optional[SandboxPolicy] = None,
        **kwargs,
    ):
        super().__init__(peer, repository_host, sandbox=sandbox, **kwargs)
        self.queue = queue or BatchQueue(
            peer.sim, nodes=4, cores_per_node=2, cpu_flops=peer.profile.cpu_flops
        )
        if gateway is None:
            ca = CertificateAuthority(f"{peer.peer_id}-ca")
            accounts = GlobusAccountManager(ca)
            accounts.create_account(grid_user)
            gateway = GramGateway(self.queue, ca, accounts)
            credential = ca.issue(grid_user, now=peer.sim.now)
        if credential is None:
            raise ValueError("a credential is required with an external gateway")
        self.gateway = gateway
        self.credential = credential
        self.grid_user = grid_user

    def _exec_loop(self, dep: _Deployment):
        """Submit each queued iteration as a batch job (concurrent slots).

        Payload computation happens immediately (it is cheap host work);
        the *modelled* cluster time is charged through the queue, and the
        result ships when the job completes.
        """
        while True:
            iteration, inputs = yield dep.queue.get()
            external = {
                key: value for key, value in zip(dep.spec.external_inputs, inputs)
            }
            flops_before = dep.engine.stats.modelled_flops
            outputs_map = dep.engine.step(external)
            flops = dep.engine.stats.modelled_flops - flops_before
            outputs = [outputs_map[t][n] for t, n in dep.spec.output_spec]
            job = self.gateway.submit(
                JobSpec(flops=max(flops, 1.0), user=self.grid_user),
                self.credential,
            )

            def on_done(ev, iteration=iteration, outputs=outputs, dep=dep):
                if ev.ok:
                    self.stats.iterations += 1
                    self.stats.busy_seconds += ev.value
                    dep.iterations_done += 1
                    self._ship(dep, iteration, outputs)

            job.callbacks.append(on_done)
