"""The Triana controller — "a scheduling manager for the complete
application being run over a Triana network".

The controller is itself just a peer (P2P, not client-server): it
discovers worker services, extracts the policy-carrying group from the
task graph, deploys sub-graphs as XML, streams per-iteration data to the
placed replicas/stages, and feeds returning results into the locally-run
downstream zone.

Distribution policies (§3.3):

* ``parallel`` — "a farming out mechanism and generally involves no
  communication between hosts": the whole group is replicated on k peers
  and iterations are dealt round-robin, results re-ordered by iteration.
* ``p2p`` — "distributing the group vertically i.e. each unit in the
  group is distributed onto a separate resource and data is passed
  between them": a pipelined chain with stage-to-stage pipes.

Churn recovery (parallel policy) is two-tier:

* **heartbeat suspicion** — workers emit ``triana-heartbeat`` while a
  run is in flight; a worker silent for ``suspect_after_missed``
  intervals is suspected and its outstanding iterations are
  re-dispatched immediately (see :mod:`repro.service.detector`);
* **timeout fallback** — iterations older than ``retry_timeout`` are
  re-dispatched regardless, the paper's "simply distributing the code to
  as many computers that are available until the results are being
  returned with the specified time interval".

Repeated re-dispatches of one iteration back off exponentially (with
deterministic jitter from the ``recovery-backoff`` stream), and once
most of a batch is done the slowest stragglers are speculatively
duplicated — first result wins; workers de-duplicate idempotently.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.engine import LocalEngine, Probe
from ..core.taskgraph import GroupTask, TaskGraph
from ..core.xml_io import graph_to_string
from ..p2p.advertisement import ADV_SERVICE
from ..p2p.discovery import DiscoveryService
from ..p2p.network import Message
from ..p2p.peer import Peer
from ..simkernel import Event, Simulator
from .detector import HeartbeatFailureDetector
from .errors import DeploymentError, MigrationError, SchedulingError
from .partition import GroupPartition, find_distributable_group, partition_for_group
from .worker import WORKER_SERVICE_KIND, DeploymentSpec

__all__ = ["RunReport", "TrianaController"]

_dep_ids = itertools.count(1)


@dataclass
class RunReport:
    """Outcome of one distributed application run."""

    iterations: int
    makespan: float
    deploy_time: float
    group_results: list[list[Any]] = field(default_factory=list)
    probe_values: dict[str, list[Any]] = field(default_factory=dict)
    placements: dict[str, str] = field(default_factory=dict)
    redispatches: int = 0
    policy: str = "none"
    #: network traffic attributable to this run (deltas over the run)
    messages_sent: int = 0
    bytes_sent: int = 0
    messages_dropped: int = 0
    messages_corrupted: int = 0
    messages_duplicated: int = 0
    messages_reordered: int = 0
    #: failure-detector / recovery summary (see docs/robustness.md)
    recovery: dict[str, Any] = field(default_factory=dict)
    #: tracer summary for the run (see docs/observability.md)
    tracing: dict[str, Any] = field(default_factory=dict)


@dataclass
class _Outstanding:
    inputs: list[Any]
    base_replica: int
    dispatched_at: float
    attempts: int = 0
    #: replica index currently responsible for this iteration
    replica: int = 0
    #: earliest time another re-dispatch is allowed (exponential backoff)
    retry_at: float = 0.0
    speculated: bool = False


class TrianaController:
    """Client + command-process components of the Triana service."""

    def __init__(
        self,
        peer: Peer,
        discovery: DiscoveryService,
        retry_timeout: float = 900.0,
        retry_interval: float = 300.0,
        deploy_timeout: float = 600.0,
        heartbeat_interval: float = 60.0,
        suspect_after_missed: int = 3,
        backoff_base: Optional[float] = None,
        backoff_max: float = 120.0,
        speculation_threshold: float = 0.9,
        speculation_age: Optional[float] = None,
    ):
        self.peer = peer
        self.sim: Simulator = peer.sim
        self.discovery = discovery
        self.retry_timeout = retry_timeout
        self.retry_interval = retry_interval
        self.deploy_timeout = deploy_timeout
        #: first-retry backoff; defaults to ``retry_interval`` when unset
        self.backoff_base = retry_interval if backoff_base is None else backoff_base
        self.backoff_max = backoff_max
        #: speculate once this fraction of the batch is done (>=1 disables)
        self.speculation_threshold = speculation_threshold
        #: minimum age of an outstanding iteration before speculation
        self.speculation_age = (
            2.0 * heartbeat_interval if speculation_age is None else speculation_age
        )
        self.detector = HeartbeatFailureDetector(
            heartbeat_interval=heartbeat_interval,
            suspect_after_missed=suspect_after_missed,
        )
        #: deployment ids of the run in flight (stale-result guard)
        self._valid_deps: set[str] = set()
        self._outstanding_ref: Optional[dict[int, "_Outstanding"]] = None
        self._duplicate_results = 0
        self._stale_results = 0
        self._ack_events: dict[str, Event] = {}
        self._result_events: dict[int, Event] = {}
        self._checkpoint_events: dict[str, Event] = {}
        self._drain_events: dict[str, Event] = {}
        #: engines of the most recent run, for sink-unit inspection
        self.last_upstream: Optional[LocalEngine] = None
        self.last_downstream: Optional[LocalEngine] = None
        #: (worker, spec) per stage of the most recent p2p chain
        self._last_chain: list[tuple[str, DeploymentSpec]] = []
        #: subscribed progress views (§3.2 disconnected UI)
        self.monitors: list = []
        #: open redispatch spans by iteration (closed on result/supersede)
        self._redispatch_spans: dict[int, Any] = {}
        #: (policy, iteration→replica) of the farm currently in flight
        self._active_dispatch = None
        self._reparam_events: dict[tuple[str, str], Event] = {}
        peer.on("deploy-ack", self._on_ack)
        peer.on("group-result", self._on_result)
        peer.on("triana-heartbeat", self._on_heartbeat)
        peer.on("checkpoint-reply", self._on_checkpoint_reply)
        peer.on("drain-reply", self._on_drain_reply)
        peer.on("reparam-ack", self._on_reparam_ack)

    # -- progress views --------------------------------------------------------
    def attach_monitor(self, monitor) -> None:
        """Subscribe a progress view (browser page, WAP status, ...).

        Views ride the tracer's ``progress`` event stream rather than a
        parallel one: :meth:`_notify` emits a trace instant, and an
        adapter subscribed here converts instants on this controller's
        track back into :class:`~repro.service.monitor.ProgressEvent`
        objects.  Works on traced and untraced simulations alike — the
        :class:`~repro.observe.tracer.NullTracer` still dispatches to
        subscribers.
        """
        from .monitor import ProgressEvent

        track = self.peer.peer_id

        def adapter(event) -> None:
            if event.track != track:
                return  # another controller's progress on a shared sim
            monitor.notify(
                ProgressEvent(
                    time=event.time,
                    kind=event.name,
                    data=tuple(sorted(event.info.items())),
                )
            )

        self.monitors.append(monitor)
        self.sim.tracer.subscribe(adapter, category="progress")

    def _notify(self, kind: str, **data) -> None:
        """Emit a progress instant (recorded when tracing, always fanned out)."""
        self.sim.tracer.instant(
            kind, category="progress", track=self.peer.peer_id, **data
        )

    # -- message handlers -----------------------------------------------------
    def _on_ack(self, message: Message) -> None:
        deployment_id, error = message.payload
        ev = self._ack_events.get(deployment_id)
        if ev is not None and not ev.triggered:
            if error is None:
                ev.succeed(deployment_id)
            else:
                ev.fail(DeploymentError(f"{deployment_id}: {error}"))

    def _on_heartbeat(self, message: Message) -> None:
        worker, _iterations_done = message.payload
        self.detector.observe_heartbeat(worker, self.sim.now)

    def _on_result(self, message: Message) -> None:
        dep_id, iteration, outputs = message.payload
        if self._valid_deps and dep_id not in self._valid_deps:
            # A straggler from a *previous* run whose iteration number
            # happens to collide with this run's: must not be accepted.
            self._stale_results += 1
            return
        self.detector.observe_result(message.src, self.sim.now)
        ev = self._result_events.get(iteration)
        if ev is None or ev.triggered:
            # Redispatch/speculation race or network duplicate: first
            # result won already, later copies are dropped idempotently.
            self._duplicate_results += 1
            return
        if self._active_dispatch is not None:
            policy, replica_of = self._active_dispatch
            if iteration in replica_of:
                policy.completed(replica_of.pop(iteration))
        if self._outstanding_ref is not None:
            self._outstanding_ref.pop(iteration, None)
        span = self._redispatch_spans.pop(iteration, None)
        if span is not None:
            span.end(outcome="completed", worker=message.src)
        ev.succeed(outputs)

    def _on_checkpoint_reply(self, message: Message) -> None:
        deployment_id, state = message.payload
        ev = self._checkpoint_events.get(deployment_id)
        if ev is not None and not ev.triggered:
            ev.succeed(state)

    def _on_drain_reply(self, message: Message) -> None:
        deployment_id, state, leftovers = message.payload
        ev = self._drain_events.get(deployment_id)
        if ev is not None and not ev.triggered:
            ev.succeed((state, leftovers))

    def _on_reparam_ack(self, message: Message) -> None:
        deployment_id, task_name, error = message.payload
        ev = self._reparam_events.pop((deployment_id, task_name), None)
        if ev is not None and not ev.triggered:
            if error is None:
                ev.succeed(deployment_id)
            else:
                ev.fail(SchedulingError(f"reparam failed: {error}"))

    def update_params(
        self, worker: str, deployment_id: str, task: str, **params
    ) -> Event:
        """Re-parameterise a live deployed unit (no redeploy, no code).

        Returns an event that succeeds when the worker confirms, or fails
        with :class:`SchedulingError` if the worker rejects the update.
        """
        ev = self.sim.event()
        self._reparam_events[(deployment_id, task)] = ev
        self.peer.send(
            worker,
            "triana-reparam",
            payload=(self.peer.peer_id, deployment_id, task, dict(params)),
            size_bytes=128,
        )
        return ev

    # -- worker discovery ----------------------------------------------------------
    def discover_workers(self, min_cpu_flops: float = 0.0) -> Event:
        """Find Triana worker services ("CPU capability" attribute match).

        Returns an event yielding a sorted list of worker peer ids.
        """
        def pred(attrs: dict[str, Any]) -> bool:
            return (
                attrs.get("kind") == WORKER_SERVICE_KIND
                and attrs.get("cpu_flops", 0.0) >= min_cpu_flops
            )

        query = self.discovery.query(self.peer, adv_type=ADV_SERVICE, predicate=pred)
        found = self.sim.event()

        def collect(ev: Event) -> None:
            hosts = sorted({adv.attributes["host"] for adv in ev.value})
            found.succeed(hosts)

        query.callbacks.append(collect)
        return found

    def request_checkpoint(self, worker: str, deployment_id: str) -> Event:
        """Pull a deployment's unit state (migration support)."""
        ev = self.sim.event()
        self._checkpoint_events[deployment_id] = ev
        self.peer.send(
            worker, "triana-checkpoint", payload=(self.peer.peer_id, deployment_id)
        )
        return ev

    # -- the distributed run ------------------------------------------------------------
    def run_distributed(
        self,
        graph: TaskGraph,
        iterations: int,
        workers: list[str],
        probes: tuple[str, ...] = (),
        dispatch: str = "round_robin",
    ) -> Event:
        """Execute ``graph`` for ``iterations`` over ``workers``.

        ``dispatch`` selects the farm policy: ``round_robin`` (default)
        or ``weighted`` (capability-aware, for heterogeneous fleets).
        Returns a process event yielding a :class:`RunReport`.
        """
        if iterations < 1:
            raise SchedulingError("iterations must be >= 1")
        return self.sim.process(
            self._run_proc(graph, iterations, list(workers), probes, dispatch),
            name="triana-run",
        )

    def _run_proc(self, graph, iterations, workers, probes, dispatch="round_robin"):
        tracer = self.sim.tracer
        run_span = (
            tracer.begin(
                "controller.run", category="service", track=self.peer.peer_id,
                graph=graph.name, iterations=iterations, dispatch=dispatch,
            )
            if tracer.enabled
            else None
        )
        try:
            report = yield from self._run_proc_inner(
                graph, iterations, workers, probes, dispatch, run_span
            )
        finally:
            if run_span is not None:
                run_span.end()  # idempotent; closes the span on error paths
        report.tracing = self.sim.tracer.summary()
        return report

    def _run_proc_inner(self, graph, iterations, workers, probes, dispatch, run_span):
        start = self.sim.now
        net = self.peer.network.stats
        net_before = (
            net.sent,
            net.bytes_sent,
            net.dropped_offline + net.dropped_loss,
            net.corrupted,
            net.duplicated,
            net.reordered,
        )
        dup_before = self._duplicate_results
        stale_before = self._stale_results
        group = find_distributable_group(graph)
        if group is None:
            report = self._run_local(graph, iterations, probes)
            report.makespan = self.sim.now - start
            return report
            yield  # pragma: no cover - makes this a generator

        if not workers:
            raise SchedulingError("no workers available for a distributed run")
        part = partition_for_group(graph, group.name)
        engine_a = LocalEngine(part.upstream)
        engine_b = LocalEngine(
            part.downstream, external_inputs=part.downstream_external_inputs()
        )
        # Exposed for post-run inspection (sink units live here).
        self.last_upstream = engine_a
        self.last_downstream = engine_b
        attached = self._attach_probes(probes, engine_a, engine_b)

        # -- deploy phase ---------------------------------------------------
        self._notify(
            "run-started",
            graph=graph.name,
            iterations=iterations,
            policy=group.policy,
        )
        deploy_start = self.sim.now
        tracer = self.sim.tracer
        deploy_span = (
            tracer.begin(
                "controller.deploy", category="service", track=self.peer.peer_id,
                policy=group.policy, workers=len(workers),
            )
            if tracer.enabled
            else None
        )
        if group.policy == "parallel":
            placements = yield from self._deploy_parallel(group, workers)
        else:
            placements = yield from self._deploy_chain(group, workers)
        deploy_time = self.sim.now - deploy_start
        if deploy_span is not None:
            deploy_span.end(deployments=len(placements))
        for dep_id, worker in placements.items():
            self._notify("deployed", deployment=dep_id, worker=worker)
            self.detector.watch(worker, self.sim.now)
        self._valid_deps = set(placements)

        # -- dispatch every iteration's inputs -------------------------------
        self._result_events = {it: self.sim.event() for it in range(iterations)}
        outstanding: dict[int, _Outstanding] = {}
        cross_vals: dict[int, dict[tuple[str, int], Any]] = {}
        dep_ids = list(placements)
        replica_hosts = [placements[d] for d in dep_ids]

        from .placement import make_dispatch_policy

        policy = make_dispatch_policy(dispatch)
        policy.setup(
            [self.peer.network.profile(h).cpu_flops for h in replica_hosts]
        )
        replica_of: dict[int, int] = {}
        self._active_dispatch = (policy, replica_of)

        for it in range(iterations):
            a_out = engine_a.step()
            inputs = [a_out[c.src][c.src_node] for c in part.to_group]
            cross_vals[it] = {
                (c.dst, c.dst_node): a_out[c.src][c.src_node] for c in part.cross
            }
            if group.policy == "parallel":
                replica = policy.choose(it)
                replica_of[it] = replica
                outstanding[it] = _Outstanding(
                    inputs=inputs,
                    base_replica=replica,
                    dispatched_at=self.sim.now,
                    replica=replica,
                )
                self._dispatch(replica_hosts[replica], dep_ids[replica], it, inputs)
            else:
                # Chain: everything enters at stage 0 and flows peer-to-peer.
                self._dispatch(replica_hosts[0], dep_ids[0], it, inputs)

        # -- churn recovery (parallel farms only) -----------------------------
        stop_retry = {"done": False}
        redispatch_count = {"n": 0, "suspicion": 0, "timeout": 0, "speculative": 0}
        if group.policy == "parallel":
            self._outstanding_ref = outstanding
            self.sim.process(
                self._recovery_loop(
                    outstanding,
                    dep_ids,
                    replica_hosts,
                    stop_retry,
                    redispatch_count,
                    iterations,
                ),
                name="recovery-monitor",
            )

        # -- collect results in iteration order and feed downstream ------------
        group_results: list[list[Any]] = []
        for it in range(iterations):
            outputs = yield self._result_events[it]
            outstanding.pop(it, None)
            external = dict(cross_vals[it])
            for c in part.from_group:
                external[(c.dst, c.dst_node)] = outputs[c.src_node]
            engine_b.step(external)
            group_results.append(outputs)
            self._notify("iteration-complete", iteration=it)
        stop_retry["done"] = True
        self._result_events = {}
        self._active_dispatch = None
        self._outstanding_ref = None
        self._valid_deps = set()
        for _it, span in sorted(self._redispatch_spans.items()):
            span.end(outcome="abandoned")
        self._redispatch_spans.clear()
        if run_span is not None:
            run_span.set(policy=group.policy, redispatches=redispatch_count["n"])

        recovery = dict(self.detector.snapshot(self.sim.now))
        recovery.update(
            redispatches=redispatch_count["n"],
            suspicion_redispatches=redispatch_count["suspicion"],
            timeout_redispatches=redispatch_count["timeout"],
            speculative=redispatch_count["speculative"],
            duplicate_results=self._duplicate_results - dup_before,
            stale_results=self._stale_results - stale_before,
        )
        self._notify("run-finished", makespan=self.sim.now - start)
        return RunReport(
            iterations=iterations,
            makespan=self.sim.now - start,
            deploy_time=deploy_time,
            group_results=group_results,
            probe_values={p.task: list(p.values) for p in attached},
            placements=dict(placements),
            redispatches=redispatch_count["n"],
            policy=group.policy,
            messages_sent=net.sent - net_before[0],
            bytes_sent=net.bytes_sent - net_before[1],
            messages_dropped=(net.dropped_offline + net.dropped_loss) - net_before[2],
            messages_corrupted=net.corrupted - net_before[3],
            messages_duplicated=net.duplicated - net_before[4],
            messages_reordered=net.reordered - net_before[5],
            recovery=recovery,
        )

    # -- local fallback -------------------------------------------------------------
    def _run_local(self, graph, iterations, probes) -> RunReport:
        engine = LocalEngine(graph)
        self.last_upstream = engine
        self.last_downstream = engine
        attached = self._attach_probes(probes, engine)
        engine.run(iterations)
        return RunReport(
            iterations=iterations,
            makespan=0.0,
            deploy_time=0.0,
            probe_values={p.task: list(p.values) for p in attached},
            policy="none",
        )

    def _attach_probes(self, probes, *engines: LocalEngine) -> list[Probe]:
        attached = []
        for name in probes:
            for engine in engines:
                try:
                    attached.append(engine.attach_probe(name))
                    break
                except Exception:
                    continue
            else:
                raise SchedulingError(f"probe target {name!r} not found in any zone")
        return attached

    # -- deployment ---------------------------------------------------------------------
    def _deploy_parallel(self, group: GroupTask, workers: list[str]):
        """Replicate the whole group on every worker."""
        xml = graph_to_string(group.graph)
        specs = []
        for worker in workers:
            dep_id = f"dep-{next(_dep_ids)}"
            specs.append(
                (
                    worker,
                    DeploymentSpec(
                        deployment_id=dep_id,
                        controller=self.peer.peer_id,
                        xml=xml,
                        external_inputs=tuple(group.input_map),
                        output_spec=tuple(group.output_map),
                        forward=None,
                        heartbeat_interval=self.detector.heartbeat_interval,
                    ),
                )
            )
        yield from self._deploy_all(specs)
        return {spec.deployment_id: worker for worker, spec in specs}

    def _deploy_chain(self, group: GroupTask, workers: list[str]):
        """Place each unit of the group on its own peer, piped in order."""
        order = group.graph.topological_order()
        self._check_linear_chain(group, order)
        dep_ids = [f"dep-{next(_dep_ids)}" for _ in order]
        specs = []
        for i, task_name in enumerate(order):
            task = group.graph.task(task_name)
            stage = TaskGraph(name=f"{group.name}/{task_name}", registry=group.graph.registry)
            stage.add_task(task_name, task.unit_name, **task.params)
            external_inputs = tuple((task_name, n) for n in range(task.num_inputs))
            if i + 1 < len(order):
                nxt = group.graph.task(order[i + 1])
                conn = [
                    c
                    for c in group.graph.connections
                    if c.src == task_name and c.dst == order[i + 1]
                ][0]
                output_spec = ((task_name, conn.src_node),)
                forward = (workers[(i + 1) % len(workers)], dep_ids[i + 1])
                del nxt
            else:
                output_spec = tuple(group.output_map)
                forward = None
            specs.append(
                (
                    workers[i % len(workers)],
                    DeploymentSpec(
                        deployment_id=dep_ids[i],
                        controller=self.peer.peer_id,
                        xml=graph_to_string(stage),
                        external_inputs=external_inputs,
                        output_spec=output_spec,
                        forward=forward,
                        heartbeat_interval=self.detector.heartbeat_interval,
                    ),
                )
            )
        yield from self._deploy_all(specs)
        # Remember the chain for later stage migration.
        self._last_chain = [(worker, spec) for worker, spec in specs]
        # Placements keyed in stage order; stage 0 receives the data.
        return {spec.deployment_id: worker for worker, spec in specs}

    def _check_linear_chain(self, group: GroupTask, order: list[str]) -> None:
        for name in order:
            if len(group.graph.out_connections(name)) > 1 or len(
                group.graph.in_connections(name)
            ) > 1:
                raise SchedulingError(
                    f"p2p policy requires a linear chain; task {name!r} in group "
                    f"{group.name!r} has fan-in/fan-out"
                )
        for a, b in zip(order, order[1:]):
            if not any(c.src == a and c.dst == b for c in group.graph.connections):
                raise SchedulingError(
                    f"p2p policy requires a connected chain; {a!r} and {b!r} "
                    "are not linked"
                )

    def _deploy_all(self, specs, max_attempts: int = 3):
        """Deploy with retries: lost deploys/acks are re-sent, not fatal.

        Workers treat duplicate deploys idempotently (re-ack), so a retry
        after a lost ack is safe.
        """
        acks = {}
        for worker, spec in specs:
            ack = self.sim.event()
            self._ack_events[spec.deployment_id] = ack
            acks[spec.deployment_id] = ack
        pending = list(specs)
        per_attempt = self.deploy_timeout / max_attempts
        for _attempt in range(max_attempts):
            for worker, spec in pending:
                self.peer.send(
                    worker, "triana-deploy", payload=spec, size_bytes=len(spec.xml)
                )
            deadline = self.sim.timeout(per_attempt)
            waiting = self.sim.all_of([acks[s.deployment_id] for _w, s in pending])
            yield self.sim.any_of([waiting, deadline])
            pending = [
                (w, s) for w, s in pending
                if not acks[s.deployment_id].triggered
            ]
            if not pending:
                break
        if pending:
            missing = [s.deployment_id for _w, s in pending]
            raise DeploymentError(
                f"deployment timed out after {self.deploy_timeout}s "
                f"({max_attempts} attempts); unacked: {missing}"
            )
        # Surface failure acks (sandbox denial etc.) by touching .value.
        for _w, spec in specs:
            ack = self._ack_events.pop(spec.deployment_id, None)
            if ack is not None and ack.triggered:
                _ = ack.value  # raises DeploymentError on failure acks

    # -- chain migration -----------------------------------------------------------------
    def migrate_stage(
        self, stage_index: int, new_worker: str, settle: float = 2.0
    ) -> Event:
        """Move one stage of the last-deployed p2p chain to another peer.

        The paper (Case 2): "A check-pointing mechanism may also be
        employed to migrate computation if necessary."  Protocol:

        1. deploy a *paused* copy of the stage on the new peer;
        2. rewire the predecessor stage to the new home (fresh data now
           buffers there);
        3. wait ``settle`` for in-flight messages to land;
        4. drain the old deployment (unit checkpoints + queued work; the
           old peer leaves a tombstone that forwards stragglers);
        5. resume the new deployment with the migrated state, leftovers
           merged in iteration order.

        Returns a process event yielding the new deployment id.
        """
        if not self._last_chain:
            raise MigrationError("no p2p chain has been deployed")
        if not 0 <= stage_index < len(self._last_chain):
            raise MigrationError(
                f"stage {stage_index} out of range 0..{len(self._last_chain) - 1}"
            )
        return self.sim.process(
            self._migrate_proc(stage_index, new_worker, settle),
            name=f"migrate-stage-{stage_index}",
        )

    def _migrate_proc(self, stage_index: int, new_worker: str, settle: float):
        old_worker, old_spec = self._last_chain[stage_index]
        new_dep_id = f"dep-{next(_dep_ids)}"
        new_spec = DeploymentSpec(
            deployment_id=new_dep_id,
            controller=self.peer.peer_id,
            xml=old_spec.xml,
            external_inputs=old_spec.external_inputs,
            output_spec=old_spec.output_spec,
            forward=old_spec.forward,
            paused=True,
        )
        yield from self._deploy_all([(new_worker, new_spec)])
        if self._valid_deps:
            # Results from the new home belong to the run in flight.
            self._valid_deps.add(new_dep_id)

        if stage_index > 0:
            pred_worker, pred_spec = self._last_chain[stage_index - 1]
            self.peer.send(
                pred_worker,
                "triana-rewire",
                payload=(pred_spec.deployment_id, (new_worker, new_dep_id)),
                size_bytes=96,
            )
        yield self.sim.timeout(settle)

        drained = self.sim.event()
        self._drain_events[old_spec.deployment_id] = drained
        self.peer.send(
            old_worker,
            "triana-drain",
            payload=(self.peer.peer_id, old_spec.deployment_id, (new_worker, new_dep_id)),
            size_bytes=96,
        )
        state, leftovers = yield drained
        self._drain_events.pop(old_spec.deployment_id, None)

        self.peer.send(
            new_worker,
            "triana-resume",
            payload=(new_dep_id, state, leftovers),
            size_bytes=1024,
        )
        self._last_chain[stage_index] = (new_worker, new_spec)
        return new_dep_id

    # -- dispatch & retry --------------------------------------------------------------
    def _dispatch(self, worker: str, deployment_id: str, iteration: int, inputs) -> None:
        size = sum(
            v.payload_nbytes() if hasattr(v, "payload_nbytes") else 64 for v in inputs
        ) + 64
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("service.dispatches").inc()
            tracer.instant(
                "controller.dispatch", category="service", track=self.peer.peer_id,
                worker=worker, deployment=deployment_id, iteration=iteration,
            )
        self.peer.send(
            worker, "group-exec", payload=(deployment_id, iteration, inputs), size_bytes=size
        )

    def _recovery_loop(
        self, outstanding, dep_ids, replica_hosts, stop, counter, iterations
    ):
        """Suspicion-driven + timeout-fallback redispatch, plus speculation.

        Ticks at ``min(retry_interval, heartbeat_interval)`` so a heartbeat
        suspicion is acted on within one beat of the detector deadline —
        the seed's retry loop could leave a dead iteration waiting up to
        ``retry_timeout + retry_interval``.
        """
        tick = min(self.retry_interval, self.detector.heartbeat_interval)
        hb = self.detector.heartbeat_interval
        # Renew worker heartbeat leases well inside their 10-beat window.
        renew_every = max(1, int(4 * hb / tick))
        rng = self.sim.rng("recovery-backoff")
        ticks = 0
        while not stop["done"]:
            yield self.sim.timeout(tick)
            if stop["done"]:
                return
            now = self.sim.now
            ticks += 1
            if ticks % renew_every == 0:
                for host in sorted(set(replica_hosts)):
                    self.peer.send(
                        host,
                        "triana-hb-renew",
                        payload=(self.peer.peer_id, hb),
                        size_bytes=48,
                    )
            fresh_suspects = self.detector.check(now)
            if fresh_suspects:
                tracer = self.sim.tracer
                if tracer.enabled:
                    for worker in fresh_suspects:
                        tracer.metrics.counter("service.suspicions").inc()
                        tracer.instant(
                            "detector.suspect", category="service",
                            track=self.peer.peer_id, worker=worker,
                        )
            done = iterations - len(outstanding)
            for it, rec in sorted(outstanding.items()):
                ev = self._result_events.get(it)
                if ev is None or ev.triggered:
                    outstanding.pop(it, None)
                    continue
                host = replica_hosts[rec.replica]
                aged = now - rec.dispatched_at >= self.retry_timeout
                suspected = not self.detector.is_alive(host, now)
                if suspected or aged:
                    if now < rec.retry_at:
                        continue  # backing off after a recent redispatch
                    reason = "suspicion" if suspected else "timeout"
                    self._redispatch(
                        rec, it, dep_ids, replica_hosts, now, rng, counter, reason
                    )
                elif (
                    self.speculation_threshold < 1.0
                    and done >= self.speculation_threshold * iterations
                    and not rec.speculated
                    and now - rec.dispatched_at >= self.speculation_age
                ):
                    self._speculate(rec, it, dep_ids, replica_hosts, now, counter)

    def _redispatch(
        self, rec, it, dep_ids, replica_hosts, now, rng, counter, reason
    ):
        rec.attempts += 1
        idx = self._pick_replica(rec, replica_hosts, now)
        rec.replica = idx
        rec.dispatched_at = now
        backoff = min(self.backoff_base * 2 ** (rec.attempts - 1), self.backoff_max)
        rec.retry_at = now + backoff * (1.0 + 0.25 * float(rng.random()))
        counter["n"] += 1
        counter[reason] += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            previous = self._redispatch_spans.pop(it, None)
            if previous is not None:
                previous.end(outcome="superseded")
            self._redispatch_spans[it] = tracer.begin(
                "controller.redispatch", category="service",
                track=self.peer.peer_id, iteration=it,
                worker=replica_hosts[idx], reason=reason, attempt=rec.attempts,
            )
            tracer.metrics.counter(f"service.redispatch_{reason}").inc()
        self._notify(
            "redispatch", iteration=it, worker=replica_hosts[idx], reason=reason
        )
        self._dispatch(replica_hosts[idx], dep_ids[idx], it, rec.inputs)

    def _pick_replica(self, rec, replica_hosts, now) -> int:
        """Next target: prefer online + healthy, then merely online."""
        k = len(replica_hosts)
        online_idx = None
        for offset in range(k):
            idx = (rec.base_replica + rec.attempts + offset) % k
            host = replica_hosts[idx]
            if not self.peer.network.is_online(host):
                continue
            if online_idx is None:
                online_idx = idx
            if self.detector.is_dispatchable(host, now):
                return idx
        if online_idx is not None:
            return online_idx
        return (rec.base_replica + rec.attempts) % k

    def _speculate(self, rec, it, dep_ids, replica_hosts, now, counter) -> None:
        """Duplicate a straggling iteration on a second healthy replica.

        First result wins (``_on_result`` drops the loser); the worker
        side de-duplicates, so this is safe even if the original is alive.
        """
        k = len(replica_hosts)
        for offset in range(1, k):
            idx = (rec.replica + offset) % k
            host = replica_hosts[idx]
            if self.peer.network.is_online(host) and self.detector.is_dispatchable(
                host, now
            ):
                break
        else:
            return  # no second replica worth speculating on
        rec.speculated = True
        counter["speculative"] += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("service.speculations").inc()
        self._notify("speculate", iteration=it, worker=replica_hosts[idx])
        self._dispatch(replica_hosts[idx], dep_ids[idx], it, rec.inputs)
