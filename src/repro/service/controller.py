"""The Triana controller — "a scheduling manager for the complete
application being run over a Triana network".

The controller is itself just a peer (P2P, not client-server): it
discovers worker services, partitions the task graph around its
policy-carrying groups (:func:`~repro.service.partition.partition_stages`)
and orchestrates the run — local zones execute at the controller while
each group is handed to its
:class:`~repro.service.policies.DistributionPolicy`, resolved by name
from the policy registry.

The policies themselves (the paper's ``parallel`` farm and ``p2p``
pipeline, the envelope-amortizing ``chunked`` farm, and anything third
parties register) live in :mod:`repro.service.policies`; deployment
retry machinery in :mod:`repro.service.deploy`; chain migration in
:mod:`repro.service.migration`.  The controller owns orchestration only:
message routing, result ordering, staged execution and progress
reporting.  Graphs may carry several policy groups — they are scheduled
in topological order, each group's results streaming into the next local
zone as they arrive.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.engine import LocalEngine, Probe
from ..core.taskgraph import TaskGraph
from ..p2p.advertisement import ADV_SERVICE, AttrPredicate
from ..p2p.discovery import DiscoveryService
from ..p2p.network import Message
from ..p2p.peer import Peer
from ..simkernel import Event, Simulator
from . import migration
from .deploy import DeploymentManager, merge_preseed_plans
from .detector import HeartbeatFailureDetector
from .errors import SchedulingError
from .integrity import ReputationLedger, make_verifier
from .partition import StageRouter, partition_stages
from .policies import (
    DispatchContext,
    PolicyRegistry,
    RecoverySettings,
    global_policy_registry,
)
from .worker import WORKER_SERVICE_KIND, DeploymentSpec

__all__ = ["RunReport", "TrianaController"]


@dataclass
class RunReport:
    """Outcome of one distributed application run."""

    iterations: int
    makespan: float
    deploy_time: float
    group_results: list[list[Any]] = field(default_factory=list)
    probe_values: dict[str, list[Any]] = field(default_factory=dict)
    placements: dict[str, str] = field(default_factory=dict)
    redispatches: int = 0
    #: the distributed group's policy; ``+``-joined for multi-group runs
    policy: str = "none"
    #: network traffic attributable to this run (deltas over the run)
    messages_sent: int = 0
    bytes_sent: int = 0
    messages_dropped: int = 0
    messages_corrupted: int = 0
    messages_duplicated: int = 0
    messages_reordered: int = 0
    #: failure-detector / recovery summary (see docs/robustness.md)
    recovery: dict[str, Any] = field(default_factory=dict)
    #: tracer summary for the run (see docs/observability.md)
    tracing: dict[str, Any] = field(default_factory=dict)
    #: result-verification summary (empty when verification="none")
    integrity: dict[str, Any] = field(default_factory=dict)
    #: live-telemetry health summary (empty unless telemetry was enabled)
    health: dict[str, Any] = field(default_factory=dict)


class TrianaController:
    """Client + command-process components of the Triana service."""

    def __init__(
        self,
        peer: Peer,
        discovery: DiscoveryService,
        retry_timeout: float = 900.0,
        retry_interval: float = 300.0,
        deploy_timeout: float = 600.0,
        heartbeat_interval: float = 60.0,
        suspect_after_missed: int = 3,
        backoff_base: Optional[float] = None,
        backoff_max: float = 120.0,
        speculation_threshold: float = 0.9,
        speculation_age: Optional[float] = None,
        policy_registry: Optional[PolicyRegistry] = None,
        preseed_replicas: int = 0,
    ):
        self.peer = peer
        self.sim: Simulator = peer.sim
        self.discovery = discovery
        self.deployer = DeploymentManager(peer, deploy_timeout)
        #: pre-place each group's modules on this many workers before
        #: deploying (0 = off, the seed behaviour); see docs/performance.md
        self.preseed_replicas = preseed_replicas
        self.recovery_settings = RecoverySettings(
            retry_timeout=retry_timeout,
            retry_interval=retry_interval,
            # first-retry backoff defaults to retry_interval when unset
            backoff_base=retry_interval if backoff_base is None else backoff_base,
            backoff_max=backoff_max,
            # speculate once this fraction of the batch is done (>=1 disables)
            speculation_threshold=speculation_threshold,
            # minimum age of an outstanding iteration before speculation
            speculation_age=(
                2.0 * heartbeat_interval if speculation_age is None else speculation_age
            ),
        )
        self.detector = HeartbeatFailureDetector(
            heartbeat_interval=heartbeat_interval,
            suspect_after_missed=suspect_after_missed,
        )
        #: integrity convictions accumulate across runs, like the detector
        self.reputation = ReputationLedger(self.detector)
        #: distribution-policy registry this controller schedules against
        self.policies = (
            policy_registry if policy_registry is not None else global_policy_registry()
        )
        #: per-controller deployment ids — two grids in one process must
        #: produce identical reports, so no module-global counter here
        self._dep_ids = itertools.count(1)
        #: deployment id → owning context of the run in flight
        self._ctx_of_dep: dict[str, DispatchContext] = {}
        self._duplicate_results = 0
        self._stale_results = 0
        self._checkpoint_events: dict[str, Event] = {}
        self._drain_events: dict[str, Event] = {}
        #: first/last local-zone engines of the most recent run
        self.last_upstream: Optional[LocalEngine] = None
        self.last_downstream: Optional[LocalEngine] = None
        #: (worker, spec) per stage of the most recent p2p chain
        self._last_chain: list[tuple[str, DeploymentSpec]] = []
        #: subscribed progress views (§3.2 disconnected UI)
        self.monitors: list = []
        self._reparam_events: dict[tuple[str, str], Event] = {}
        peer.on("group-result", self._on_result)
        peer.on("triana-heartbeat", self._on_heartbeat)
        peer.on("checkpoint-reply", self._on_checkpoint_reply)
        peer.on("drain-reply", self._on_drain_reply)
        peer.on("reparam-ack", self._on_reparam_ack)

    @property
    def deploy_timeout(self) -> float:
        return self.deployer.deploy_timeout

    @deploy_timeout.setter
    def deploy_timeout(self, value: float) -> None:
        self.deployer.deploy_timeout = value

    def _next_deployment_id(self) -> str:
        return f"dep-{next(self._dep_ids)}"

    # -- progress views --------------------------------------------------------
    def attach_monitor(self, monitor) -> None:
        """Subscribe a progress view (browser page, WAP status, ...).

        Views ride the tracer's ``progress`` event stream rather than a
        parallel one: :meth:`_notify` emits a trace instant, and an
        adapter subscribed here converts instants on this controller's
        track back into :class:`~repro.service.monitor.ProgressEvent`
        objects.  Works on traced and untraced simulations alike — the
        :class:`~repro.observe.tracer.NullTracer` still dispatches to
        subscribers.
        """
        from .monitor import ProgressEvent

        track = self.peer.peer_id

        def adapter(event) -> None:
            if event.track != track:
                return  # another controller's progress on a shared sim
            monitor.notify(
                ProgressEvent(
                    time=event.time,
                    kind=event.name,
                    data=tuple(sorted(event.info.items())),
                )
            )

        self.monitors.append(monitor)
        self.sim.tracer.subscribe(adapter, category="progress")

    def _notify(self, kind: str, **data) -> None:
        """Emit a progress instant (recorded when tracing, always fanned out)."""
        self.sim.tracer.instant(
            kind, category="progress", track=self.peer.peer_id, **data
        )

    # -- message handlers -----------------------------------------------------
    def _on_heartbeat(self, message: Message) -> None:
        worker, _iterations_done = message.payload
        self.detector.observe_heartbeat(worker, self.sim.now)

    def _on_result(self, message: Message) -> None:
        dep_id, iteration, outputs = message.payload
        ctx = self._ctx_of_dep.get(dep_id)
        if self._ctx_of_dep and ctx is None:
            # A straggler from a *previous* run whose iteration number
            # happens to collide with this run's: must not be accepted.
            self._stale_results += 1
            return
        self.detector.observe_result(message.src, self.sim.now)
        ev = ctx.result_events.get(iteration) if ctx is not None else None
        if ev is None or ev.triggered:
            # Redispatch/speculation race or network duplicate: first
            # result won already, later copies are dropped idempotently —
            # but an attached verifier still audits them for honesty.
            if ctx is not None and ctx.verifier is not None:
                ctx.verifier.on_late_result(ctx, iteration, message.src, outputs)
            self._duplicate_results += 1
            return
        if ctx.verifier is not None:
            # The verifier owns settling: it calls ctx.settle once the
            # result is trusted (quorum, quiz pass, or no check due).
            ctx.verifier.on_result(ctx, iteration, message.src, outputs)
            return
        ctx.policy.on_result(ctx, iteration, worker=message.src)
        ev.succeed(outputs)

    def _on_checkpoint_reply(self, message: Message) -> None:
        deployment_id, state = message.payload
        ev = self._checkpoint_events.get(deployment_id)
        if ev is not None and not ev.triggered:
            ev.succeed(state)

    def _on_drain_reply(self, message: Message) -> None:
        deployment_id, state, leftovers = message.payload
        ev = self._drain_events.get(deployment_id)
        if ev is not None and not ev.triggered:
            ev.succeed((state, leftovers))

    def _on_reparam_ack(self, message: Message) -> None:
        deployment_id, task_name, error = message.payload
        ev = self._reparam_events.pop((deployment_id, task_name), None)
        if ev is not None and not ev.triggered:
            if error is None:
                ev.succeed(deployment_id)
            else:
                ev.fail(SchedulingError(f"reparam failed: {error}"))

    def update_params(
        self, worker: str, deployment_id: str, task: str, **params
    ) -> Event:
        """Re-parameterise a live deployed unit (no redeploy, no code).

        Returns an event that succeeds when the worker confirms, or fails
        with :class:`SchedulingError` if the worker rejects the update.
        """
        ev = self.sim.event()
        self._reparam_events[(deployment_id, task)] = ev
        self.peer.send(
            worker,
            "triana-reparam",
            payload=(self.peer.peer_id, deployment_id, task, dict(params)),
            size_bytes=128,
        )
        return ev

    # -- worker discovery ----------------------------------------------------------
    def discover_workers(self, min_cpu_flops: float = 0.0) -> Event:
        """Find Triana worker services ("CPU capability" attribute match).

        Returns an event yielding a sorted list of worker peer ids.
        """
        # Declarative (not a closure) so the query frame can cross a
        # real transport to a remote index — see AttrPredicate.
        pred = AttrPredicate.make(
            equals={"kind": WORKER_SERVICE_KIND},
            at_least={"cpu_flops": min_cpu_flops},
        )
        query = self.discovery.query(self.peer, adv_type=ADV_SERVICE, predicate=pred)
        found = self.sim.event()

        def collect(ev: Event) -> None:
            hosts = sorted({adv.attributes["host"] for adv in ev.value})
            found.succeed(hosts)

        query.callbacks.append(collect)
        return found

    def request_checkpoint(self, worker: str, deployment_id: str) -> Event:
        """Pull a deployment's unit state (migration support)."""
        ev = self.sim.event()
        self._checkpoint_events[deployment_id] = ev
        self.peer.send(
            worker, "triana-checkpoint", payload=(self.peer.peer_id, deployment_id)
        )
        return ev

    # -- the distributed run ------------------------------------------------------------
    def run_distributed(
        self,
        graph: TaskGraph,
        iterations: int,
        workers: list[str],
        probes: tuple[str, ...] = (),
        dispatch: str = "round_robin",
        verification: str = "none",
    ) -> Event:
        """Execute ``graph`` for ``iterations`` over ``workers``.

        ``dispatch`` names the farm dealing policy (see
        :func:`~repro.service.placement.dispatch_policy_names`); group
        distribution policies come from the graph itself and are resolved
        against :attr:`policies`.  ``verification`` selects a result-
        integrity strategy (``none`` | ``replicate-<k>`` | ``spot-<p>``,
        see :mod:`repro.service.integrity`).  Returns a process event
        yielding a :class:`RunReport`.
        """
        if iterations < 1:
            raise SchedulingError("iterations must be >= 1")
        # Fail fast on a bad spec, before the run process exists.
        make_verifier(verification)
        return self.sim.process(
            self._run_proc(
                graph, iterations, list(workers), probes, dispatch, verification
            ),
            name="triana-run",
        )

    def _run_proc(
        self, graph, iterations, workers, probes, dispatch="round_robin",
        verification="none",
    ):
        tracer = self.sim.tracer
        run_span = (
            tracer.begin(
                "controller.run", category="service", track=self.peer.peer_id,
                graph=graph.name, iterations=iterations, dispatch=dispatch,
            )
            if tracer.enabled
            else None
        )
        try:
            report = yield from self._run_proc_inner(
                graph, iterations, workers, probes, dispatch, run_span, verification
            )
        finally:
            if run_span is not None:
                run_span.end()  # idempotent; closes the span on error paths
        report.tracing = self.sim.tracer.summary()
        return report

    def _make_context(
        self, group, dispatch: str, iterations: int, verification: str = "none"
    ) -> DispatchContext:
        ctx = DispatchContext(
            peer=self.peer,
            detector=self.detector,
            settings=self.recovery_settings,
            dispatch_name=dispatch,
            deploy=self.deployer.deploy_all,
            next_deployment_id=self._next_deployment_id,
            notify=self._notify,
        )
        ctx.policy = self.policies.create(group.policy)
        ctx.iterations = iterations
        ctx.group = group
        ctx.verifier = make_verifier(verification, ledger=self.reputation)
        return ctx

    def _run_proc_inner(
        self, graph, iterations, workers, probes, dispatch, run_span,
        verification="none",
    ):
        start = self.sim.now
        net = self.peer.network.stats
        net_before = (
            net.sent,
            net.bytes_sent,
            net.dropped_offline + net.dropped_loss,
            net.corrupted,
            net.duplicated,
            net.reordered,
        )
        dup_before = self._duplicate_results
        stale_before = self._stale_results
        plan = partition_stages(graph)
        if not plan.groups:
            report = self._run_local(graph, iterations, probes)
            report.makespan = self.sim.now - start
            return report
            yield  # pragma: no cover - makes this a generator

        if not workers:
            raise SchedulingError("no workers available for a distributed run")
        engines = [
            LocalEngine(zone, external_inputs=plan.zone_external_inputs(k))
            for k, zone in enumerate(plan.zones)
        ]
        # Exposed for post-run inspection (sink units live in the last zone).
        self.last_upstream = engines[0]
        self.last_downstream = engines[-1]
        attached = self._attach_probes(probes, *engines)
        policy_label = "+".join(g.policy for g in plan.groups)

        # -- deploy phase: every group, in topological order ------------------
        self._notify(
            "run-started",
            graph=graph.name,
            iterations=iterations,
            policy=policy_label,
        )
        deploy_start = self.sim.now
        tracer = self.sim.tracer
        deploy_span = (
            tracer.begin(
                "controller.deploy", category="service", track=self.peer.peer_id,
                policy=policy_label, workers=len(workers),
            )
            if tracer.enabled
            else None
        )
        contexts: list[DispatchContext] = [
            self._make_context(group, dispatch, iterations, verification)
            for group in plan.groups
        ]
        if self.preseed_replicas > 0:
            # Warm k workers per group into module replicas *before* the
            # deploy storm: the bulk transfers then ride peer uplinks
            # while the repository only answers head/revalidate traffic.
            assignments = merge_preseed_plans(
                ctx.policy.preseed_units(group, workers, self.preseed_replicas)
                for ctx, group in zip(contexts, plan.groups)
            )
            confirmed = yield from self.deployer.preseed(
                assignments, timeout=self.deploy_timeout
            )
            if deploy_span is not None:
                deploy_span.set(
                    preseed_workers=len(confirmed),
                    preseed_units=sum(len(u) for u in confirmed.values()),
                )
        for ctx, group in zip(contexts, plan.groups):
            yield from ctx.policy.deploy(ctx, group, workers)
        deploy_time = self.sim.now - deploy_start
        placements = {
            dep: worker for c in contexts for dep, worker in c.placements.items()
        }
        if deploy_span is not None:
            deploy_span.end(deployments=len(placements))
        for dep_id, worker in placements.items():
            self._notify("deployed", deployment=dep_id, worker=worker)
            self.detector.watch(worker, self.sim.now)
        for ctx in contexts:
            if ctx.chain:
                self._last_chain = list(ctx.chain)
            self._ctx_of_dep.update(dict.fromkeys(ctx.placements, ctx))
            ctx.result_events = {it: self.sim.event() for it in range(iterations)}
            ctx.policy.start(ctx, iterations)
            if ctx.verifier is not None:
                ctx.verifier.start(ctx)

        # -- staged dispatch & collection -------------------------------------
        router = StageRouter(plan, iterations)

        def dispatch_stage_groups(stage: int, it: int) -> None:
            for gi in plan.groups_at_stage(stage):
                ctx = contexts[gi]
                ctx.policy.dispatch(ctx, it, router.group_inputs(plan.groups[gi], it))

        def close_stage(stage: int) -> None:
            for gi in plan.groups_at_stage(stage):
                contexts[gi].policy.flush(contexts[gi])
                contexts[gi].policy.begin_collect(contexts[gi])

        for it in range(iterations):
            router.stash_zone(0, it, engines[0].step())
            dispatch_stage_groups(0, it)
        close_stage(0)

        group_results: list[list[Any]] = []
        last_stage = len(plan.groups)
        for s in range(1, last_stage + 1):
            ctx = contexts[s - 1]
            group_name = plan.groups[s - 1].name
            results: list[list[Any]] = []
            for it in range(iterations):
                outputs = yield ctx.result_events[it]
                router.stash_group(group_name, it, outputs)
                router.stash_zone(s, it, engines[s].step(router.zone_externals(s, it)))
                results.append(outputs)
                dispatch_stage_groups(s, it)
                if s == last_stage:
                    self._notify("iteration-complete", iteration=it)
            close_stage(s)
            ctx.policy.finalize(ctx)
            if ctx.verifier is not None:
                ctx.verifier.finalize(ctx)
            ctx.result_events = {}
            group_results = results
        self._ctx_of_dep = {}

        redispatches = {
            key: sum(c.counters[key] for c in contexts)
            for key in ("n", "suspicion", "timeout", "speculative")
        }
        if run_span is not None:
            run_span.set(policy=policy_label, redispatches=redispatches["n"])

        integrity: dict[str, Any] = {}
        verifiers = [c.verifier for c in contexts if c.verifier is not None]
        if verifiers:
            merged: dict[str, Any] = dict(verifiers[0].report())
            for verifier in verifiers[1:]:
                for key, value in verifier.report().items():
                    if isinstance(value, int):
                        merged[key] = merged.get(key, 0) + value
            merged["verification"] = verification
            merged.update(self.reputation.summary())
            integrity = merged

        recovery = dict(self.detector.snapshot(self.sim.now))
        recovery.update(
            redispatches=redispatches["n"],
            suspicion_redispatches=redispatches["suspicion"],
            timeout_redispatches=redispatches["timeout"],
            speculative=redispatches["speculative"],
            duplicate_results=self._duplicate_results - dup_before,
            stale_results=self._stale_results - stale_before,
        )
        self._notify("run-finished", makespan=self.sim.now - start)
        return RunReport(
            iterations=iterations,
            makespan=self.sim.now - start,
            deploy_time=deploy_time,
            group_results=group_results,
            probe_values={p.task: list(p.values) for p in attached},
            placements=placements,
            redispatches=redispatches["n"],
            policy=policy_label,
            messages_sent=net.sent - net_before[0],
            bytes_sent=net.bytes_sent - net_before[1],
            messages_dropped=(net.dropped_offline + net.dropped_loss) - net_before[2],
            messages_corrupted=net.corrupted - net_before[3],
            messages_duplicated=net.duplicated - net_before[4],
            messages_reordered=net.reordered - net_before[5],
            recovery=recovery,
            integrity=integrity,
        )

    # -- local fallback -------------------------------------------------------------
    def _run_local(self, graph, iterations, probes) -> RunReport:
        engine = LocalEngine(graph)
        self.last_upstream = engine
        self.last_downstream = engine
        attached = self._attach_probes(probes, engine)
        engine.run(iterations)
        return RunReport(
            iterations=iterations,
            makespan=0.0,
            deploy_time=0.0,
            probe_values={p.task: list(p.values) for p in attached},
            policy="none",
        )

    def _attach_probes(self, probes, *engines: LocalEngine) -> list[Probe]:
        attached = []
        for name in probes:
            for engine in engines:
                try:
                    attached.append(engine.attach_probe(name))
                    break
                except Exception:
                    continue
            else:
                raise SchedulingError(f"probe target {name!r} not found in any zone")
        return attached

    # -- chain migration -----------------------------------------------------------------
    def migrate_stage(
        self, stage_index: int, new_worker: str, settle: float = 2.0
    ) -> Event:
        """Move one stage of the last-deployed p2p chain to another peer.

        See :mod:`repro.service.migration` for the checkpoint/rewire/
        drain/resume protocol.  Returns a process event yielding the new
        deployment id.
        """
        return migration.migrate_stage(self, stage_index, new_worker, settle)
