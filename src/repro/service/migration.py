"""Migrating one stage of a deployed p2p chain to another peer.

The paper (Case 2): "A check-pointing mechanism may also be employed to
migrate computation if necessary."  Protocol:

1. deploy a *paused* copy of the stage on the new peer;
2. rewire the predecessor stage to the new home (fresh data now buffers
   there);
3. wait ``settle`` for in-flight messages to land;
4. drain the old deployment (unit checkpoints + queued work; the old
   peer leaves a tombstone that forwards stragglers);
5. resume the new deployment with the migrated state, leftovers merged
   in iteration order.

Operates *on* a controller (duck-typed) rather than living inside it so
the controller stays a thin orchestrator.
"""

from __future__ import annotations

from ..simkernel import Event
from .errors import MigrationError
from .worker import DeploymentSpec

__all__ = ["migrate_stage"]


def migrate_stage(controller, stage_index: int, new_worker: str, settle: float) -> Event:
    """Move one stage of the controller's last-deployed chain.

    Returns a process event yielding the new deployment id.
    """
    chain = controller._last_chain
    if not chain:
        raise MigrationError("no p2p chain has been deployed")
    if not 0 <= stage_index < len(chain):
        raise MigrationError(
            f"stage {stage_index} out of range 0..{len(chain) - 1}"
        )
    return controller.sim.process(
        _migrate_proc(controller, stage_index, new_worker, settle),
        name=f"migrate-stage-{stage_index}",
    )


def _migrate_proc(controller, stage_index: int, new_worker: str, settle: float):
    peer = controller.peer
    old_worker, old_spec = controller._last_chain[stage_index]
    new_dep_id = controller._next_deployment_id()
    new_spec = DeploymentSpec(
        deployment_id=new_dep_id,
        controller=peer.peer_id,
        xml=old_spec.xml,
        external_inputs=old_spec.external_inputs,
        output_spec=old_spec.output_spec,
        forward=old_spec.forward,
        paused=True,
    )
    yield from controller.deployer.deploy_all([(new_worker, new_spec)])
    owner = controller._ctx_of_dep.get(old_spec.deployment_id)
    if owner is not None:
        # Results from the new home belong to the run in flight.
        controller._ctx_of_dep[new_dep_id] = owner

    if stage_index > 0:
        pred_worker, pred_spec = controller._last_chain[stage_index - 1]
        peer.send(
            pred_worker,
            "triana-rewire",
            payload=(pred_spec.deployment_id, (new_worker, new_dep_id)),
            size_bytes=96,
        )
    yield controller.sim.timeout(settle)

    drained = controller.sim.event()
    controller._drain_events[old_spec.deployment_id] = drained
    peer.send(
        old_worker,
        "triana-drain",
        payload=(peer.peer_id, old_spec.deployment_id, (new_worker, new_dep_id)),
        size_bytes=96,
    )
    state, leftovers = yield drained
    controller._drain_events.pop(old_spec.deployment_id, None)

    peer.send(
        new_worker,
        "triana-resume",
        payload=(new_dep_id, state, leftovers),
        size_bytes=1024,
    )
    controller._last_chain[stage_index] = (new_worker, new_spec)
    return new_dep_id
