"""Partitioning a task graph around its distributed group.

"In terms of our workflow example we could execute the GroupTask on a
remote Triana service, with the data being automatically sent from the
Wave to the Gaussian and returned from the FFT to the Grapher."

Given a graph with one policy-carrying group, this module splits it into

* the **upstream** zone — every task the group does not depend on being
  finished first runs locally at the controller (the Wave in Fig. 1);
* the **group** — shipped to remote peers per its distribution policy;
* the **downstream** zone — strict descendants of the group, run locally
  once results return (the Grapher).

Connections are classified so the controller can route payloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..core.taskgraph import Connection, GroupTask, TaskGraph
from .errors import SchedulingError

__all__ = ["GroupPartition", "partition_for_group", "find_distributable_group"]


@dataclass
class GroupPartition:
    """The three zones plus classified boundary connections."""

    group: GroupTask
    upstream: TaskGraph
    downstream: TaskGraph
    #: upstream → group, ordered by group external input node
    to_group: list[Connection] = field(default_factory=list)
    #: group → downstream
    from_group: list[Connection] = field(default_factory=list)
    #: upstream → downstream edges that bypass the group
    cross: list[Connection] = field(default_factory=list)

    def downstream_external_inputs(self) -> list[tuple[str, int]]:
        """The downstream engine's externally-fed input nodes."""
        return sorted(
            {(c.dst, c.dst_node) for c in self.from_group}
            | {(c.dst, c.dst_node) for c in self.cross}
        )


def find_distributable_group(graph: TaskGraph) -> GroupTask | None:
    """The (single) group carrying a distribution policy, or None.

    The reference controller distributes one group per application run —
    the paper's examples all have this shape.  Multiple policy groups are
    rejected rather than silently half-distributed.
    """
    policy_groups = [g for g in graph.groups() if g.policy != "none"]
    if not policy_groups:
        return None
    if len(policy_groups) > 1:
        raise SchedulingError(
            f"graph has {len(policy_groups)} distributable groups "
            f"({[g.name for g in policy_groups]}); the controller handles one"
        )
    return policy_groups[0]


def partition_for_group(graph: TaskGraph, group_name: str) -> GroupPartition:
    """Split ``graph`` into upstream / group / downstream zones."""
    group = graph.task(group_name)
    if not isinstance(group, GroupTask):
        raise SchedulingError(f"{group_name!r} is not a group")

    digraph = nx.DiGraph()
    digraph.add_nodes_from(graph.tasks)
    for c in graph.connections:
        digraph.add_edge(c.src, c.dst)
    descendants = nx.descendants(digraph, group_name)

    upstream_names = set(graph.tasks) - descendants - {group_name}
    downstream_names = set(descendants)

    upstream = TaskGraph(name=f"{graph.name}/upstream", registry=graph.registry)
    downstream = TaskGraph(name=f"{graph.name}/downstream", registry=graph.registry)
    for name in sorted(upstream_names):
        t = graph.task(name)
        if isinstance(t, GroupTask):
            upstream.add_group(name, t.graph.copy(), t.input_map, t.output_map, "none")
        else:
            upstream.add_task(name, t.unit_name, **t.params)
    for name in sorted(downstream_names):
        t = graph.task(name)
        if isinstance(t, GroupTask):
            downstream.add_group(name, t.graph.copy(), t.input_map, t.output_map, "none")
        else:
            downstream.add_task(name, t.unit_name, **t.params)

    part = GroupPartition(group=group, upstream=upstream, downstream=downstream)
    for c in graph.connections:
        s_up, d_up = c.src in upstream_names, c.dst in upstream_names
        s_dn, d_dn = c.src in downstream_names, c.dst in downstream_names
        if c.dst == group_name:
            if not s_up:
                raise SchedulingError(
                    f"group input fed from downstream zone: {c.label()}"
                )
            part.to_group.append(c)
        elif c.src == group_name:
            part.from_group.append(c)
        elif s_up and d_up:
            upstream.connect(c.src, c.src_node, c.dst, c.dst_node)
        elif s_dn and d_dn:
            downstream.connect(c.src, c.src_node, c.dst, c.dst_node)
        elif s_up and d_dn:
            part.cross.append(c)
        else:  # pragma: no cover - downstream→upstream would be a cycle
            raise SchedulingError(f"unclassifiable connection {c.label()}")
    part.to_group.sort(key=lambda c: c.dst_node)
    if len(part.to_group) != group.num_inputs:
        raise SchedulingError(
            f"group {group_name!r} has {group.num_inputs} inputs but "
            f"{len(part.to_group)} are fed"
        )
    return part
