"""Partitioning a task graph around its distributed group(s).

"In terms of our workflow example we could execute the GroupTask on a
remote Triana service, with the data being automatically sent from the
Wave to the Gaussian and returned from the FFT to the Grapher."

Two partitioners live here:

* :func:`partition_for_group` — the original three-zone split (upstream /
  one group / downstream) retained for the single-group case and its
  callers;
* :func:`partition_stages` — the general form: N policy-carrying groups
  in topological order interleaved with N+1 local zones, so a graph may
  distribute several groups in one run.  Zone ``k`` holds every local
  task whose deepest group dependency is group ``k-1`` (zone 0 depends on
  no group); connections are classified so the controller can route
  payloads between zones and groups.

For a single-group graph, :func:`partition_stages` reduces exactly to the
three-zone split — same zones, same boundary-connection ordering — which
is what keeps refactored runs bit-identical to the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from ..core.taskgraph import Connection, GroupTask, TaskGraph
from .errors import SchedulingError

__all__ = [
    "GroupPartition",
    "StagedPartition",
    "StageRouter",
    "partition_for_group",
    "partition_stages",
    "find_distributable_group",
    "find_distributable_groups",
]


@dataclass
class GroupPartition:
    """The three zones plus classified boundary connections."""

    group: GroupTask
    upstream: TaskGraph
    downstream: TaskGraph
    #: upstream → group, ordered by group external input node
    to_group: list[Connection] = field(default_factory=list)
    #: group → downstream
    from_group: list[Connection] = field(default_factory=list)
    #: upstream → downstream edges that bypass the group
    cross: list[Connection] = field(default_factory=list)

    def downstream_external_inputs(self) -> list[tuple[str, int]]:
        """The downstream engine's externally-fed input nodes."""
        return sorted(
            {(c.dst, c.dst_node) for c in self.from_group}
            | {(c.dst, c.dst_node) for c in self.cross}
        )


def find_distributable_group(graph: TaskGraph) -> GroupTask | None:
    """The (single) group carrying a distribution policy, or None.

    Legacy accessor for callers built around the paper's one-group
    examples; multi-group graphs raise here.  The controller itself uses
    :func:`find_distributable_groups` / :func:`partition_stages` and
    handles any number of groups.
    """
    policy_groups = find_distributable_groups(graph)
    if not policy_groups:
        return None
    if len(policy_groups) > 1:
        raise SchedulingError(
            f"graph has {len(policy_groups)} distributable groups "
            f"({[g.name for g in policy_groups]}); this accessor handles one "
            "(use partition_stages for multi-group scheduling)"
        )
    return policy_groups[0]


def find_distributable_groups(graph: TaskGraph) -> list[GroupTask]:
    """Every policy-carrying group, in deterministic topological order."""
    order = {name: i for i, name in enumerate(graph.topological_order())}
    groups = [g for g in graph.groups() if g.policy != "none"]
    return sorted(groups, key=lambda g: order[g.name])


@dataclass
class StagedPartition:
    """N groups in topological order, interleaved with N+1 local zones.

    ``zones[0]`` depends on no group and is stepped up-front for every
    iteration; ``zones[k]`` (k >= 1) consumes group ``k-1``'s results and
    is stepped as they arrive.  ``dispatch_stage[name]`` says during which
    zone's stage a group's inputs become complete (always <= its own
    index, so every group is in flight before its collection stage).
    """

    groups: list[GroupTask]
    zones: list[TaskGraph]
    #: local (non-policy) task name → zone index
    zone_of: dict[str, int] = field(default_factory=dict)
    #: group name → inbound connections, ordered by group input node
    to_group: dict[str, list[Connection]] = field(default_factory=dict)
    #: group name → connections feeding local tasks
    from_group: dict[str, list[Connection]] = field(default_factory=dict)
    #: local → local connections that cross zone boundaries
    cross: list[Connection] = field(default_factory=list)
    #: group name → stage index at which it is dispatched
    dispatch_stage: dict[str, int] = field(default_factory=dict)

    def zone_external_inputs(self, zone: int) -> list[tuple[str, int]]:
        """Externally-fed ``(task, node)`` inputs of one zone's engine."""
        external = {
            (c.dst, c.dst_node)
            for c in self.cross
            if self.zone_of[c.dst] == zone
        }
        for conns in self.from_group.values():
            external |= {
                (c.dst, c.dst_node)
                for c in conns
                if self.zone_of[c.dst] == zone
            }
        return sorted(external)

    def groups_at_stage(self, stage: int) -> list[int]:
        """Indices of groups whose inputs complete at ``stage``."""
        return [
            i
            for i, g in enumerate(self.groups)
            if self.dispatch_stage[g.name] == stage
        ]


def partition_for_group(graph: TaskGraph, group_name: str) -> GroupPartition:
    """Split ``graph`` into upstream / group / downstream zones."""
    group = graph.task(group_name)
    if not isinstance(group, GroupTask):
        raise SchedulingError(f"{group_name!r} is not a group")

    digraph = nx.DiGraph()
    digraph.add_nodes_from(graph.tasks)
    for c in graph.connections:
        digraph.add_edge(c.src, c.dst)
    descendants = nx.descendants(digraph, group_name)

    upstream_names = set(graph.tasks) - descendants - {group_name}
    downstream_names = set(descendants)

    upstream = TaskGraph(name=f"{graph.name}/upstream", registry=graph.registry)
    downstream = TaskGraph(name=f"{graph.name}/downstream", registry=graph.registry)
    for name in sorted(upstream_names):
        t = graph.task(name)
        if isinstance(t, GroupTask):
            upstream.add_group(name, t.graph.copy(), t.input_map, t.output_map, "none")
        else:
            upstream.add_task(name, t.unit_name, **t.params)
    for name in sorted(downstream_names):
        t = graph.task(name)
        if isinstance(t, GroupTask):
            downstream.add_group(name, t.graph.copy(), t.input_map, t.output_map, "none")
        else:
            downstream.add_task(name, t.unit_name, **t.params)

    part = GroupPartition(group=group, upstream=upstream, downstream=downstream)
    for c in graph.connections:
        s_up, d_up = c.src in upstream_names, c.dst in upstream_names
        s_dn, d_dn = c.src in downstream_names, c.dst in downstream_names
        if c.dst == group_name:
            if not s_up:
                raise SchedulingError(
                    f"group input fed from downstream zone: {c.label()}"
                )
            part.to_group.append(c)
        elif c.src == group_name:
            part.from_group.append(c)
        elif s_up and d_up:
            upstream.connect(c.src, c.src_node, c.dst, c.dst_node)
        elif s_dn and d_dn:
            downstream.connect(c.src, c.src_node, c.dst, c.dst_node)
        elif s_up and d_dn:
            part.cross.append(c)
        else:  # pragma: no cover - downstream→upstream would be a cycle
            raise SchedulingError(f"unclassifiable connection {c.label()}")
    part.to_group.sort(key=lambda c: c.dst_node)
    if len(part.to_group) != group.num_inputs:
        raise SchedulingError(
            f"group {group_name!r} has {group.num_inputs} inputs but "
            f"{len(part.to_group)} are fed"
        )
    return part


def _copy_into(zone: TaskGraph, graph: TaskGraph, names: list[str]) -> None:
    for name in names:
        t = graph.task(name)
        if isinstance(t, GroupTask):
            zone.add_group(name, t.graph.copy(), t.input_map, t.output_map, "none")
        else:
            zone.add_task(name, t.unit_name, **t.params)


def partition_stages(graph: TaskGraph) -> StagedPartition:
    """Split ``graph`` into topologically-ordered groups and local zones.

    Every policy-carrying group becomes a distribution stage; every local
    task lands in the zone just after the deepest group it (transitively)
    depends on.  A graph without policy groups yields one zone and no
    groups (the caller runs it locally).
    """
    groups = find_distributable_groups(graph)
    index = {g.name: i for i, g in enumerate(groups)}

    digraph = nx.DiGraph()
    digraph.add_nodes_from(graph.tasks)
    for c in graph.connections:
        digraph.add_edge(c.src, c.dst)
    descendants = {g.name: nx.descendants(digraph, g.name) for g in groups}

    zone_of: dict[str, int] = {}
    for name in graph.tasks:
        if name in index:
            continue
        depths = [i for g, i in index.items() if name in descendants[g]]
        zone_of[name] = 1 + max(depths) if depths else 0

    zones = [
        TaskGraph(name=f"{graph.name}/zone{k}", registry=graph.registry)
        for k in range(len(groups) + 1)
    ]
    for k, zone in enumerate(zones):
        _copy_into(zone, graph, sorted(n for n, z in zone_of.items() if z == k))

    part = StagedPartition(groups=groups, zones=zones, zone_of=zone_of)
    part.to_group = {g.name: [] for g in groups}
    part.from_group = {g.name: [] for g in groups}
    for c in graph.connections:
        if c.dst in index:
            part.to_group[c.dst].append(c)
        elif c.src in index:
            part.from_group[c.src].append(c)
        elif zone_of[c.src] == zone_of[c.dst]:
            zones[zone_of[c.src]].connect(c.src, c.src_node, c.dst, c.dst_node)
        else:  # a DAG can only cross forward, zone_of[src] < zone_of[dst]
            part.cross.append(c)

    for g in groups:
        conns = part.to_group[g.name]
        conns.sort(key=lambda c: c.dst_node)
        if len(conns) != g.num_inputs:
            raise SchedulingError(
                f"group {g.name!r} has {g.num_inputs} inputs but "
                f"{len(conns)} are fed"
            )
        # The stage at which all of this group's inputs are available:
        # zone k's outputs appear during stage k, group j's during j+1.
        part.dispatch_stage[g.name] = max(
            (
                index[c.src] + 1 if c.src in index else zone_of[c.src]
                for c in conns
            ),
            default=0,
        )
    return part

class StageRouter:
    """Routes boundary values between local zones and groups during a run.

    Every boundary value an iteration produces — a local output feeding a
    group or a later zone, or a group's output node — is stashed keyed by
    its *source* endpoint, then read back when the consuming group is
    dispatched or the consuming zone is stepped.
    """

    def __init__(self, plan: StagedPartition, iterations: int):
        self.plan = plan
        self._vals: dict[int, dict[tuple[str, int], object]] = {
            it: {} for it in range(iterations)
        }
        #: local source endpoints whose values anyone downstream consumes
        self._boundary = {
            (c.src, c.src_node)
            for conns in plan.to_group.values()
            for c in conns
            if c.src in plan.zone_of
        } | {(c.src, c.src_node) for c in plan.cross}
        #: per zone: externally-fed (dst, dst_node) → producing endpoint
        self._feeds: list[dict[tuple[str, int], tuple[str, int]]] = [
            {} for _ in plan.zones
        ]
        for c in plan.cross:
            self._feeds[plan.zone_of[c.dst]][(c.dst, c.dst_node)] = (c.src, c.src_node)
        for conns in plan.from_group.values():
            for c in conns:
                self._feeds[plan.zone_of[c.dst]][(c.dst, c.dst_node)] = (
                    c.src,
                    c.src_node,
                )

    def stash_zone(self, zone: int, iteration: int, outputs) -> None:
        """Record one zone step's boundary outputs for ``iteration``."""
        for t, n in self._boundary:
            if self.plan.zone_of[t] == zone:
                self._vals[iteration][(t, n)] = outputs[t][n]

    def stash_group(self, group_name: str, iteration: int, outputs) -> None:
        """Record a collected group result's output nodes."""
        for n, value in enumerate(outputs):
            self._vals[iteration][(group_name, n)] = value

    def group_inputs(self, group: GroupTask, iteration: int) -> list:
        """The ordered input payloads to dispatch into ``group``."""
        return [
            self._vals[iteration][(c.src, c.src_node)]
            for c in self.plan.to_group[group.name]
        ]

    def zone_externals(self, zone: int, iteration: int) -> dict:
        """The external-input dict for stepping one zone's engine."""
        return {
            dst: self._vals[iteration][src]
            for dst, src in self._feeds[zone].items()
        }
