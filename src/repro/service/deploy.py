"""Deploy-with-retry: shipping sub-graph XML to worker peers.

Transport-agnostic: deploys are plain protocol messages through the
owning peer, so the same retry/ack machinery drives workers on the
simulated fabric and across OS processes over TCP alike.

Owns the ``triana-deploy`` / ``deploy-ack`` exchange so neither the
controller nor the policies re-implement ack bookkeeping.  Policies reach
it through :meth:`~repro.service.policies.DispatchContext.deploy`.

Also owns the **replica preseed** phase (``module-preseed`` /
``preseed-ack``): before any group deploys, the controller can ask k
workers to warm their module caches.  Those workers then advertise as
replicas, so the deploy-time fetch storm drains through peer uplinks
instead of serialising on the repository's (see docs/performance.md,
"Module distribution").
"""

from __future__ import annotations

from typing import Iterable

from ..p2p.network import Message
from ..p2p.peer import Peer
from .errors import DeploymentError

__all__ = ["DeploymentManager", "merge_preseed_plans"]


def merge_preseed_plans(
    plans: Iterable[list[tuple[str, tuple[str, ...]]]],
) -> list[tuple[str, tuple[str, ...]]]:
    """Combine per-group preseed assignments into one per worker.

    Multiple groups may target the same worker; the merged plan sends
    each worker a single ``module-preseed`` with the union of its units,
    in deterministic (sorted) order.
    """
    by_worker: dict[str, set[str]] = {}
    for plan in plans:
        for worker, units in plan:
            by_worker.setdefault(worker, set()).update(units)
    return [
        (worker, tuple(sorted(units)))
        for worker, units in sorted(by_worker.items())
        if units
    ]


class DeploymentManager:
    """Sends deployment specs and waits for acks, retrying lost ones."""

    def __init__(self, peer: Peer, deploy_timeout: float):
        self.peer = peer
        self.sim = peer.sim
        self.deploy_timeout = deploy_timeout
        self._ack_events: dict = {}
        self._preseed_events: dict = {}
        peer.on("deploy-ack", self._on_ack)
        peer.on("preseed-ack", self._on_preseed_ack)

    def _on_ack(self, message: Message) -> None:
        deployment_id, error = message.payload
        ev = self._ack_events.get(deployment_id)
        if ev is not None and not ev.triggered:
            if error is None:
                ev.succeed(deployment_id)
            else:
                ev.fail(DeploymentError(f"{deployment_id}: {error}"))

    def _on_preseed_ack(self, message: Message) -> None:
        worker, ok_units = message.payload
        ev = self._preseed_events.get(worker)
        if ev is not None and not ev.triggered:
            ev.succeed(tuple(ok_units))

    def preseed(self, assignments, timeout: float):
        """Warm worker module caches; best-effort, bounded by ``timeout``.

        ``assignments`` is ``[(worker, unit_names)]`` (see
        :func:`merge_preseed_plans`).  Yields like a sim process and
        returns ``{worker: units_confirmed}`` for the workers that acked
        in time.  Preseeding is an optimisation, never a correctness
        requirement — a silent worker is simply skipped and the deploy
        phase falls back to on-demand fetching.
        """
        if not assignments:
            return {}
        acks = {}
        for worker, units in assignments:
            ev = self.sim.event()
            self._preseed_events[worker] = ev
            acks[worker] = ev
            self.peer.send(
                worker,
                "module-preseed",
                payload=(self.peer.peer_id, tuple(units)),
                size_bytes=64 + 32 * len(units),
            )
        deadline = self.sim.timeout(timeout)
        waiting = self.sim.all_of(list(acks.values()))
        yield self.sim.any_of([waiting, deadline])
        confirmed = {}
        for worker, ev in acks.items():
            self._preseed_events.pop(worker, None)
            if ev.triggered:
                confirmed[worker] = ev.value
        return confirmed

    def deploy_all(self, specs, max_attempts: int = 3):
        """Deploy with retries: lost deploys/acks are re-sent, not fatal.

        Workers treat duplicate deploys idempotently (re-ack), so a retry
        after a lost ack is safe.
        """
        acks = {}
        for worker, spec in specs:
            ack = self.sim.event()
            self._ack_events[spec.deployment_id] = ack
            acks[spec.deployment_id] = ack
        pending = list(specs)
        per_attempt = self.deploy_timeout / max_attempts
        for _attempt in range(max_attempts):
            for worker, spec in pending:
                self.peer.send(
                    worker, "triana-deploy", payload=spec, size_bytes=len(spec.xml)
                )
            deadline = self.sim.timeout(per_attempt)
            waiting = self.sim.all_of([acks[s.deployment_id] for _w, s in pending])
            yield self.sim.any_of([waiting, deadline])
            pending = [
                (w, s) for w, s in pending
                if not acks[s.deployment_id].triggered
            ]
            if not pending:
                break
        if pending:
            missing = [s.deployment_id for _w, s in pending]
            raise DeploymentError(
                f"deployment timed out after {self.deploy_timeout}s "
                f"({max_attempts} attempts); unacked: {missing}"
            )
        # Surface failure acks (sandbox denial etc.) by touching .value.
        for _w, spec in specs:
            ack = self._ack_events.pop(spec.deployment_id, None)
            if ack is not None and ack.triggered:
                _ = ack.value  # raises DeploymentError on failure acks
