"""Deploy-with-retry: shipping sub-graph XML to worker peers.

Owns the ``triana-deploy`` / ``deploy-ack`` exchange so neither the
controller nor the policies re-implement ack bookkeeping.  Policies reach
it through :meth:`~repro.service.policies.DispatchContext.deploy`.
"""

from __future__ import annotations

from ..p2p.network import Message
from ..p2p.peer import Peer
from .errors import DeploymentError

__all__ = ["DeploymentManager"]


class DeploymentManager:
    """Sends deployment specs and waits for acks, retrying lost ones."""

    def __init__(self, peer: Peer, deploy_timeout: float):
        self.peer = peer
        self.sim = peer.sim
        self.deploy_timeout = deploy_timeout
        self._ack_events: dict = {}
        peer.on("deploy-ack", self._on_ack)

    def _on_ack(self, message: Message) -> None:
        deployment_id, error = message.payload
        ev = self._ack_events.get(deployment_id)
        if ev is not None and not ev.triggered:
            if error is None:
                ev.succeed(deployment_id)
            else:
                ev.fail(DeploymentError(f"{deployment_id}: {error}"))

    def deploy_all(self, specs, max_attempts: int = 3):
        """Deploy with retries: lost deploys/acks are re-sent, not fatal.

        Workers treat duplicate deploys idempotently (re-ack), so a retry
        after a lost ack is safe.
        """
        acks = {}
        for worker, spec in specs:
            ack = self.sim.event()
            self._ack_events[spec.deployment_id] = ack
            acks[spec.deployment_id] = ack
        pending = list(specs)
        per_attempt = self.deploy_timeout / max_attempts
        for _attempt in range(max_attempts):
            for worker, spec in pending:
                self.peer.send(
                    worker, "triana-deploy", payload=spec, size_bytes=len(spec.xml)
                )
            deadline = self.sim.timeout(per_attempt)
            waiting = self.sim.all_of([acks[s.deployment_id] for _w, s in pending])
            yield self.sim.any_of([waiting, deadline])
            pending = [
                (w, s) for w, s in pending
                if not acks[s.deployment_id].triggered
            ]
            if not pending:
                break
        if pending:
            missing = [s.deployment_id for _w, s in pending]
            raise DeploymentError(
                f"deployment timed out after {self.deploy_timeout}s "
                f"({max_attempts} attempts); unacked: {missing}"
            )
        # Surface failure acks (sandbox denial etc.) by touching .value.
        for _w, spec in specs:
            ack = self._ack_events.pop(spec.deployment_id, None)
            if ack is not None and ack.triggered:
                _ = ack.value  # raises DeploymentError on failure acks
