"""Heartbeat failure detection and worker-health bookkeeping.

The seed controller only noticed a dead worker when an iteration blew
past ``retry_timeout`` — up to ``retry_timeout + retry_interval`` of dead
air.  This module closes that gap with the standard peer-group recipe
(cf. "Exploiting peer group concept for adaptive and highly available
services"): workers emit periodic ``triana-heartbeat`` messages; the
controller *suspects* a worker after ``suspect_after_missed`` silent
intervals and recovers immediately instead of waiting out the timeout.

On top of suspicion the :class:`HeartbeatFailureDetector` keeps an
adaptive per-worker **health score** in ``[0, 1]``: suspicion and deploy
failures drain it, delivered results replenish it.  A worker whose score
falls below ``quarantine_threshold`` is quarantined (no dispatches) for
``quarantine_window`` seconds; a worker quarantined ``blacklist_after``
times is blacklisted for the rest of the run.  Scores, suspicion counts
and quarantine state all surface in the run report's ``recovery``
section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = ["WorkerHealth", "HeartbeatFailureDetector"]


@dataclass
class WorkerHealth:
    """Mutable per-worker record the detector maintains."""

    last_heartbeat: float = 0.0
    score: float = 1.0
    suspected: bool = False
    suspicions: int = 0
    heartbeats: int = 0
    results: int = 0
    quarantined_until: float = 0.0
    quarantines: int = 0
    blacklisted: bool = False
    #: most recent penalty reason that triggered a quarantine
    quarantine_reason: str = ""
    #: reason recorded at the moment of blacklisting
    blacklist_reason: str = ""


class HeartbeatFailureDetector:
    """Suspicion + health scoring over a watched set of workers."""

    def __init__(
        self,
        heartbeat_interval: float = 60.0,
        suspect_after_missed: int = 3,
        quarantine_threshold: float = 0.4,
        quarantine_window: float = 300.0,
        blacklist_after: int = 3,
        suspicion_penalty: float = 0.3,
        result_reward: float = 0.05,
        clock: Optional[Callable[[], float]] = None,
    ):
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if suspect_after_missed < 1:
            raise ValueError("suspect_after_missed must be >= 1")
        self.heartbeat_interval = heartbeat_interval
        self.suspect_after_missed = suspect_after_missed
        self.quarantine_threshold = quarantine_threshold
        self.quarantine_window = quarantine_window
        self.blacklist_after = blacklist_after
        self.suspicion_penalty = suspicion_penalty
        self.result_reward = result_reward
        self.workers: dict[str, WorkerHealth] = {}
        #: optional time source: when set, every ``now`` argument may be
        #: omitted and the detector reads the clock itself.  The
        #: simulated controller keeps passing explicit ``sim.now``
        #: values (bit-identical to the pre-seam behaviour); wall-clock
        #: deployments hand in ``lambda: sim.wall_now`` (or
        #: ``time.monotonic``) and call the observation hooks bare.
        self.clock = clock

    def _now(self, now: Optional[float]) -> float:
        """Resolve an explicit timestamp against the injected clock."""
        if now is not None:
            return now
        if self.clock is None:
            raise ValueError(
                "detector has no clock: pass now= explicitly or construct "
                "HeartbeatFailureDetector(clock=...)"
            )
        return self.clock()

    # -- lifecycle ------------------------------------------------------------
    def watch(self, worker: str, now: Optional[float] = None) -> None:
        """Start (or refresh) watching a worker; grants a full grace period."""
        now = self._now(now)
        rec = self.workers.setdefault(worker, WorkerHealth())
        rec.last_heartbeat = now
        rec.suspected = False

    # -- observations ---------------------------------------------------------
    def observe_heartbeat(self, worker: str, now: Optional[float] = None) -> None:
        """Record a ``triana-heartbeat``; clears any standing suspicion."""
        now = self._now(now)
        rec = self.workers.get(worker)
        if rec is None:
            return  # heartbeat from a worker we never placed work on
        rec.heartbeats += 1
        rec.last_heartbeat = now
        if rec.suspected:
            # Resurrection: trust returns, but the scar (score) remains.
            rec.suspected = False

    def observe_result(self, worker: str, now: Optional[float] = None) -> None:
        """Record a delivered result: refreshes liveness and repays score."""
        now = self._now(now)
        rec = self.workers.get(worker)
        if rec is None:
            return
        rec.results += 1
        rec.last_heartbeat = now  # a result is as good as a heartbeat
        rec.suspected = False
        rec.score = min(1.0, rec.score + self.result_reward)

    def penalise(
        self,
        worker: str,
        now: Optional[float] = None,
        amount: float = 0.0,
        reason: str = "penalty",
    ) -> None:
        """External penalty hook (deploy failures, integrity convictions...)."""
        now = self._now(now)
        rec = self.workers.setdefault(worker, WorkerHealth())
        self._drain(rec, now, amount, reason)

    # -- the periodic check ---------------------------------------------------
    def check(self, now: Optional[float] = None) -> list[str]:
        """Mark workers whose heartbeats went silent; returns new suspects."""
        now = self._now(now)
        deadline = self.suspect_after_missed * self.heartbeat_interval
        fresh: list[str] = []
        for worker, rec in sorted(self.workers.items()):
            if rec.suspected or rec.blacklisted:
                continue
            if now - rec.last_heartbeat >= deadline:
                rec.suspected = True
                rec.suspicions += 1
                self._drain(rec, now, self.suspicion_penalty, "heartbeat-silence")
                fresh.append(worker)
        return fresh

    def _drain(
        self, rec: WorkerHealth, now: float, amount: float, reason: str = "penalty"
    ) -> None:
        rec.score = max(0.0, rec.score - amount)
        if rec.score < self.quarantine_threshold and now >= rec.quarantined_until:
            rec.quarantined_until = now + self.quarantine_window
            rec.quarantines += 1
            rec.quarantine_reason = reason
            if rec.quarantines >= self.blacklist_after:
                rec.blacklisted = True
                rec.blacklist_reason = (
                    f"{reason} ({rec.quarantines} quarantines)"
                )

    # -- queries --------------------------------------------------------------
    def is_alive(self, worker: str, now: Optional[float] = None) -> bool:
        """Not currently suspected (unknown workers are presumed alive)."""
        rec = self.workers.get(worker)
        return rec is None or not rec.suspected

    def is_dispatchable(self, worker: str, now: Optional[float] = None) -> bool:
        """Suitable as a (re)dispatch target right now."""
        now = self._now(now)
        rec = self.workers.get(worker)
        if rec is None:
            return True
        return (
            not rec.suspected
            and not rec.blacklisted
            and now >= rec.quarantined_until
        )

    # -- reporting ------------------------------------------------------------
    def snapshot(self, now: Optional[float] = None) -> dict[str, Any]:
        """Detector state for the run report's ``recovery`` section."""
        now = self._now(now)
        return {
            "suspected": {
                w: r.suspicions for w, r in self.workers.items() if r.suspicions
            },
            "quarantined": sorted(
                w
                for w, r in self.workers.items()
                if now < r.quarantined_until or r.blacklisted
            ),
            "blacklisted": sorted(
                w for w, r in self.workers.items() if r.blacklisted
            ),
            "health": {w: round(r.score, 3) for w, r in self.workers.items()},
            "heartbeats": sum(r.heartbeats for r in self.workers.values()),
            # Why a peer is excluded, not just that it is: deadlines for
            # quarantines still running, and the reason each quarantine /
            # blacklist was issued (empty strings never made the cut).
            "quarantine_deadlines": {
                w: round(r.quarantined_until, 3)
                for w, r in sorted(self.workers.items())
                if now < r.quarantined_until
            },
            "quarantine_reasons": {
                w: r.quarantine_reason
                for w, r in sorted(self.workers.items())
                if r.quarantine_reason
            },
            "blacklist_reasons": {
                w: r.blacklist_reason
                for w, r in sorted(self.workers.items())
                if r.blacklisted
            },
        }

    def telemetry_sample(self, now: Optional[float] = None) -> dict[str, Any]:
        """Light snapshot for the live telemetry sampler.

        Unlike :meth:`snapshot`, ``suspected`` lists the workers
        *currently* suspected — health detectors key on the transition
        into suspicion, not on lifetime suspicion counts.
        """
        now = self._now(now)
        return {
            "suspected": sorted(
                w for w, r in self.workers.items() if r.suspected
            ),
            "quarantined": sorted(
                w
                for w, r in self.workers.items()
                if now < r.quarantined_until and not r.blacklisted
            ),
            "blacklisted": sorted(
                w for w, r in self.workers.items() if r.blacklisted
            ),
            "health": {
                w: round(r.score, 3) for w, r in sorted(self.workers.items())
            },
            "heartbeats": sum(r.heartbeats for r in self.workers.values()),
        }
