"""Exception hierarchy for the Triana service layer."""

from __future__ import annotations


class ServiceError(Exception):
    """Base class for service-layer errors."""


class DeploymentError(ServiceError):
    """A sub-graph could not be deployed to a worker."""


class SchedulingError(ServiceError):
    """The controller could not build or execute a placement."""


class MigrationError(ServiceError):
    """Work could not be recovered from a failed peer."""
