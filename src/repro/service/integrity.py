"""Result integrity: trust nothing a volunteer returns, verify it.

The chaos layer's transport faults (corrupt/duplicate/reorder) are all
caught below the service: checksums and dedup make them loud.  The
compute faults in :mod:`repro.faults.compute` are different — a saboteur
wraps a *wrong answer* in a perfectly valid message, and no liveness
machinery (heartbeats, timeouts, redispatch) will ever notice, because
the peer is alive, fast and lying.  The classic volunteer-computing
defence (SETI@home, BOINC; task-level replication in Yu & Buyya's FT
taxonomy) is to stop trusting single results:

* :class:`ReplicationVoting` (``verification="replicate-k"``) — every
  iteration is executed on ``k`` distinct peers; results are reduced to
  a canonical SHA-256 digest and the first digest to reach a majority
  quorum wins.  Disagreement without a quorum drafts a *fresh* peer as a
  tie-breaker — fresh because a consistent saboteur re-ships the same
  wrong answer from its result cache, so re-asking it proves nothing.
* :class:`SpotCheck` (``verification="spot-p"``) — a deterministic
  fraction ``p`` of iterations are quiz iterations the controller
  recomputes locally and compares against the returned digest.  Cheaper
  than replication (no extra worker executions) but probabilistic.
  Chain-shaped groups (the ``p2p`` pipeline) always verify this way:
  their placement is the topology, so there is no disjoint replica set
  to vote over — the quiz happens at the stage boundary where the final
  stage reports back.

Outvoted or quiz-failed peers are *convicted* through the
:class:`ReputationLedger`, which drives the existing
:class:`~repro.service.detector.HeartbeatFailureDetector` health-score
machinery: convictions drain the score, draining quarantines, repeated
quarantines blacklist — extending the detector's judgement from
*liveness* to *trustworthiness*.  The ``reputation_weighted`` dispatch
policy (:mod:`repro.service.placement`) closes the loop by steering new
work toward peers that have never been caught.

Everything here talks to the run through
:class:`~repro.service.policies.base.DispatchContext` — strategies see
policy-agnostic dispatch/result hooks, never controller internals, so
all three stock policies (and third-party ones) verify for free.
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional

import numpy as np

from ..core.engine import LocalEngine
from ..core.xml_io import graph_from_string, graph_to_string
from .errors import SchedulingError

__all__ = [
    "canonical_digest",
    "VerificationStrategy",
    "ReplicationVoting",
    "SpotCheck",
    "ReputationLedger",
    "make_verifier",
    "verification_names",
]


# -- canonical result digests -------------------------------------------------------


def canonical_digest(outputs: list[Any]) -> str:
    """SHA-256 over a canonical serialisation of one iteration's outputs.

    Two honest executions of the same deterministic unit produce the
    same digest on any peer; any numeric tampering changes it.  Arrays
    hash dtype + shape + raw bytes; containers and objects recurse in a
    stable order.
    """
    h = hashlib.sha256()
    for value in outputs:
        _feed(h, value)
    return h.hexdigest()


def _feed(h, value: Any) -> None:
    if isinstance(value, np.ndarray):
        h.update(b"A")
        h.update(str(value.dtype).encode())
        h.update(str(value.shape).encode())
        h.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (list, tuple)):
        h.update(b"L" if isinstance(value, list) else b"T")
        h.update(str(len(value)).encode())
        for item in value:
            _feed(h, item)
    elif isinstance(value, dict):
        h.update(b"D")
        for key in sorted(value, key=repr):
            h.update(repr(key).encode())
            _feed(h, value[key])
    elif isinstance(value, (bool, int, float, complex, str, bytes)) or value is None:
        h.update(b"S")
        h.update(repr(value).encode())
    elif hasattr(value, "__dict__"):
        # Data-carrier objects (e.g. toolbox payload classes): hash their
        # attribute dict in sorted order, tagged with the class name.
        h.update(b"O")
        h.update(type(value).__name__.encode())
        for name in sorted(vars(value)):
            h.update(name.encode())
            _feed(h, vars(value)[name])
    else:  # pragma: no cover - exotic payloads degrade to repr
        h.update(b"R")
        h.update(repr(value).encode())


# -- reputation ---------------------------------------------------------------------


class ReputationLedger:
    """Conviction bookkeeping wired into the failure detector's scores.

    One ledger per controller (convictions outlive any single group run):
    each conviction applies ``conviction_penalty`` to the peer's health
    score with an explanatory reason, so quarantine deadlines and
    blacklist reasons in the detector snapshot point back at integrity,
    not liveness.
    """

    def __init__(self, detector, conviction_penalty: float = 0.5):
        self.detector = detector
        self.conviction_penalty = conviction_penalty
        #: peer id → number of convictions
        self.convictions: dict[str, int] = {}
        self._seen: set[tuple[str, int]] = set()

    def convict(self, ctx, worker: str, iteration: int, reason: str) -> None:
        """Penalise ``worker`` for a provably wrong result.

        Idempotent per (worker, iteration) — a saboteur's cached re-ship
        of the same wrong answer must not drain the score twice.
        """
        if (worker, iteration) in self._seen:
            return
        self._seen.add((worker, iteration))
        self.convictions[worker] = self.convictions.get(worker, 0) + 1
        self.detector.penalise(
            worker, ctx.sim.now, self.conviction_penalty,
            reason=f"integrity:{reason}",
        )
        tracer = ctx.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("service.convictions").inc()
            tracer.instant(
                "integrity.convict", category="service", track=ctx.peer.peer_id,
                worker=worker, iteration=iteration, reason=reason,
                convictions=self.convictions[worker],
            )
        ctx.notify("convict", worker=worker, iteration=iteration, reason=reason)

    def summary(self) -> dict[str, Any]:
        return {
            "convicted": dict(sorted(self.convictions.items())),
            "total": sum(self.convictions.values()),
        }


# -- strategies ---------------------------------------------------------------------


class VerificationStrategy:
    """Hook surface one group run drives through its DispatchContext.

    The default implementation verifies nothing: every result settles
    immediately, which is byte-for-byte the unverified code path.
    """

    #: registry name; also the CLI spelling (possibly parameterised)
    name: str = ""

    def __init__(self):
        self.ledger: Optional[ReputationLedger] = None
        self.stats: dict[str, int] = {
            "replicas_issued": 0,
            "votes": 0,
            "quorum_accepts": 0,
            "plurality_accepts": 0,
            "tie_breaks": 0,
            "overturned": 0,
            "spot_checks": 0,
            "spot_mismatches": 0,
        }
        #: iteration → accepted digest (audits late results against it)
        self.accepted: dict[int, str] = {}

    # -- lifecycle ----------------------------------------------------------
    def start(self, ctx) -> None:
        """Called once per group run, after the policy's own ``start``."""

    def finalize(self, ctx) -> None:
        """The group's iterations are all settled; close open state."""

    # -- dispatch-side hooks -----------------------------------------------
    def on_dispatch(self, ctx, worker, deployment_id, iteration, inputs) -> None:
        """One iteration was shipped to ``worker`` (first send or re-send)."""

    def on_dispatch_batch(self, ctx, worker, deployment_id, items) -> None:
        """A batch of iterations was shipped to ``worker`` in one envelope."""
        for iteration, inputs in items:
            self.on_dispatch(ctx, worker, deployment_id, iteration, inputs)

    # -- result-side hooks --------------------------------------------------
    def on_result(self, ctx, iteration, worker, outputs) -> None:
        """A result arrived for an unsettled iteration; settle when sure."""
        ctx.settle(iteration, outputs, worker)

    def on_late_result(self, ctx, iteration, worker, outputs) -> None:
        """A result arrived after the iteration settled: audit it.

        Losers of redispatch/speculation races still reveal their
        honesty — a late result disagreeing with the accepted digest is
        a conviction the voting itself never needed.
        """
        digest = self.accepted.get(iteration)
        if digest is not None and canonical_digest(outputs) != digest:
            if self.ledger is not None:
                self.ledger.convict(ctx, worker, iteration, "late-mismatch")

    # -- reporting ----------------------------------------------------------
    def report(self) -> dict[str, Any]:
        out: dict[str, Any] = {"strategy": self.name}
        out.update(self.stats)
        out["wasted_executions"] = (
            self.stats["replicas_issued"] + self.stats["tie_breaks"]
        )
        return out


class _Ballot:
    """Voting state for one iteration under replication."""

    __slots__ = (
        "targets", "votes", "payloads", "first_digest", "tie_breaks",
        "decided", "span",
    )

    def __init__(self):
        #: peers this iteration was shipped to (eligible voters)
        self.targets: set[str] = set()
        #: peer → digest of the result it shipped (arrival order preserved)
        self.votes: dict[str, str] = {}
        #: digest → first outputs payload carrying it
        self.payloads: dict[str, list] = {}
        self.first_digest: str = ""
        self.tie_breaks = 0
        self.decided = False
        self.span: Any = None


class ReplicationVoting(VerificationStrategy):
    """Execute each iteration on ``k`` peers; majority digest wins.

    The fan-out piggybacks on the policy's own dispatch: the first send
    of an iteration triggers ``k - 1`` replica sends to *distinct* peers
    (batched sends replicate batch-wise, so the chunked farm keeps its
    envelope economics; tie-breaks travel as singles — a disagreeing
    batch is re-split).  Accepting at first quorum keeps the honest-fleet
    fast path cheap: with ``k = 3`` the second matching digest settles
    the iteration without waiting for the third.

    Chain-shaped groups (``ctx.chain``) delegate to :class:`SpotCheck`:
    a pipeline's placement *is* its topology, so there is no disjoint
    replica set to vote over.
    """

    name = "replicate"
    #: quiz fraction used when a chain-shaped group forces spot-checking
    CHAIN_SPOT_FRACTION = 0.25

    def __init__(self, k: int = 3):
        super().__init__()
        if k < 2:
            raise SchedulingError("replication factor must be >= 2")
        self.k = k
        self.quorum = k // 2 + 1
        self.name = f"replicate-{k}"
        self.ballots: dict[int, _Ballot] = {}
        self._dep_of_host: dict[str, str] = {}
        self._host_order: list[str] = []
        self._delegate: Optional["SpotCheck"] = None

    def start(self, ctx) -> None:
        if ctx.chain:
            delegate = SpotCheck(self.CHAIN_SPOT_FRACTION)
            delegate.ledger = self.ledger
            delegate.stats = self.stats  # shared: one report per group
            delegate.accepted = self.accepted
            delegate.start(ctx)
            self._delegate = delegate
            return
        self._host_order = list(ctx.replica_hosts)
        self._dep_of_host = dict(zip(ctx.replica_hosts, ctx.dep_ids))

    def finalize(self, ctx) -> None:
        if self._delegate is not None:
            self._delegate.finalize(ctx)
            return
        for iteration in sorted(self.ballots):
            ballot = self.ballots[iteration]
            if ballot.span is not None and not ballot.decided:
                ballot.span.end(outcome="abandoned")
                ballot.span = None

    # -- dispatch side ------------------------------------------------------
    def on_dispatch(self, ctx, worker, deployment_id, iteration, inputs) -> None:
        if self._delegate is not None:
            self._delegate.on_dispatch(ctx, worker, deployment_id, iteration, inputs)
            return
        ballot = self.ballots.get(iteration)
        if ballot is not None:
            # Recovery redispatch or speculation: one more eligible voter.
            ballot.targets.add(worker)
            return
        ballot = _Ballot()
        ballot.targets.add(worker)
        self.ballots[iteration] = ballot
        for host in self._extra_hosts(ctx, worker, self.k - 1):
            ballot.targets.add(host)
            self._replicate_send(ctx, host, iteration, inputs)

    def on_dispatch_batch(self, ctx, worker, deployment_id, items) -> None:
        if self._delegate is not None:
            self._delegate.on_dispatch_batch(ctx, worker, deployment_id, items)
            return
        fresh: list[tuple[int, list]] = []
        for iteration, inputs in items:
            ballot = self.ballots.get(iteration)
            if ballot is not None:
                ballot.targets.add(worker)
                continue
            ballot = _Ballot()
            ballot.targets.add(worker)
            self.ballots[iteration] = ballot
            fresh.append((iteration, inputs))
        if not fresh:
            return
        # Replicate the batch as a batch: the whole point of ``chunked``
        # is envelope amortisation, and its replicas deserve it too.
        for host in self._extra_hosts(ctx, worker, self.k - 1):
            for iteration, _inputs in fresh:
                self.ballots[iteration].targets.add(host)
            self.stats["replicas_issued"] += len(fresh)
            ctx.raw_send_exec_batch(host, self._dep_of_host[host], fresh)
            tracer = ctx.sim.tracer
            if tracer.enabled:
                tracer.instant(
                    "verify.replicate", category="service",
                    track=ctx.peer.peer_id, worker=host,
                    iteration=fresh[0][0], batched=len(fresh),
                )

    def _extra_hosts(self, ctx, primary: str, count: int) -> list[str]:
        """Up to ``count`` distinct replica hosts, primary excluded.

        Deterministic rotation from the primary's slot; dispatchable
        peers first, merely-online ones as a fallback so a heavily
        quarantined fleet still gets its replicas.
        """
        hosts = self._host_order
        if primary in hosts:
            anchor = hosts.index(primary)
        else:
            anchor = 0
        ordered = [hosts[(anchor + off) % len(hosts)] for off in range(1, len(hosts))]
        ordered = [h for h in ordered if h != primary]
        now = ctx.sim.now
        preferred = [
            h for h in ordered
            if ctx.is_online(h) and ctx.detector.is_dispatchable(h, now)
        ]
        fallback = [h for h in ordered if h not in preferred and ctx.is_online(h)]
        chosen: list[str] = []
        for host in preferred + fallback:
            if host not in chosen:
                chosen.append(host)
            if len(chosen) >= count:
                break
        return chosen

    def _replicate_send(self, ctx, host: str, iteration: int, inputs) -> None:
        self.stats["replicas_issued"] += 1
        ctx.raw_send_exec(host, self._dep_of_host[host], iteration, inputs)
        tracer = ctx.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "verify.replicate", category="service", track=ctx.peer.peer_id,
                worker=host, iteration=iteration,
            )

    # -- result side --------------------------------------------------------
    def on_result(self, ctx, iteration, worker, outputs) -> None:
        if self._delegate is not None:
            self._delegate.on_result(ctx, iteration, worker, outputs)
            return
        ballot = self.ballots.get(iteration)
        if ballot is None:
            # No ballot means we never saw a dispatch (shouldn't happen);
            # fail open rather than wedge the run.
            ctx.settle(iteration, outputs, worker)
            return
        digest = canonical_digest(outputs)
        previous = ballot.votes.get(worker)
        if previous is not None:
            if previous == digest:
                # The worker's idempotent result cache re-shipped the
                # vote we already hold — asking *it* again can never
                # break a tie, but the re-ship itself is harmless while
                # other voters are still due (recovery redispatch
                # routinely lands on a peer that already answered).
                # Drop silent targets that have gone offline (their
                # vote is never coming), then re-evaluate: a ballot
                # with every answer in escalates to a fresh peer or,
                # failing that, plurality.
                ballot.targets = {
                    t for t in ballot.targets
                    if t in ballot.votes or ctx.is_online(t)
                }
                self._maybe_decide(ctx, ballot, iteration)
            else:
                # A flaky peer changed its answer: keep the newer vote.
                ballot.votes[worker] = digest
                ballot.payloads.setdefault(digest, list(outputs))
                self._maybe_decide(ctx, ballot, iteration)
            return
        if not ballot.votes:
            ballot.first_digest = digest
            tracer = ctx.sim.tracer
            if tracer.enabled:
                ballot.span = tracer.begin(
                    "verify.wait", category="service", track=ctx.peer.peer_id,
                    iteration=iteration,
                )
        ballot.votes[worker] = digest
        ballot.payloads.setdefault(digest, list(outputs))
        self.stats["votes"] += 1
        tracer = ctx.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "verify.vote", category="service", track=ctx.peer.peer_id,
                worker=worker, iteration=iteration, digest=digest[:12],
            )
        self._maybe_decide(ctx, ballot, iteration)

    def _maybe_decide(self, ctx, ballot: _Ballot, iteration: int) -> None:
        counts: dict[str, int] = {}
        for digest in ballot.votes.values():
            counts[digest] = counts.get(digest, 0) + 1
        # Deterministic plurality: most votes, digest as tie-break.
        leader = min(counts, key=lambda d: (-counts[d], d))
        if counts[leader] >= self.quorum:
            self._accept(ctx, ballot, iteration, leader, "quorum_accepts")
            return
        if len(ballot.votes) >= len(ballot.targets):
            # Everyone asked has answered and nobody has a majority:
            # draft a fresh tie-breaker, or accept the plurality when
            # the fleet is exhausted (liveness over paranoia).
            if not self._tie_break(ctx, ballot, iteration):
                self._accept(ctx, ballot, iteration, leader, "plurality_accepts")

    def _tie_break(self, ctx, ballot: _Ballot, iteration: int) -> bool:
        if ballot.decided:
            return True
        extra = [
            h for h in self._extra_hosts(ctx, "", len(self._host_order))
            if h not in ballot.targets
        ]
        if not extra:
            return False
        host = extra[ballot.tie_breaks % len(extra)]
        ballot.tie_breaks += 1
        ballot.targets.add(host)
        self.stats["tie_breaks"] += 1
        inputs = None
        # The controller no longer holds the inputs — but the farm's
        # Outstanding record does, via the context's live payload store.
        inputs = ctx.iteration_inputs.get(iteration)
        if inputs is None:
            return False
        ctx.raw_send_exec(host, self._dep_of_host[host], iteration, inputs)
        ctx.notify("tie-break", iteration=iteration, worker=host)
        tracer = ctx.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("service.tie_breaks").inc()
            tracer.instant(
                "verify.tie_break", category="service", track=ctx.peer.peer_id,
                worker=host, iteration=iteration,
            )
        return True

    def _accept(
        self, ctx, ballot: _Ballot, iteration: int, digest: str, how: str
    ) -> None:
        ballot.decided = True
        self.stats[how] += 1
        if digest != ballot.first_digest:
            # The unverified controller would have accepted the first
            # arrival; voting overturned it.
            self.stats["overturned"] += 1
        self.accepted[iteration] = digest
        if ballot.span is not None:
            ballot.span.end(
                outcome=how, votes=len(ballot.votes), tie_breaks=ballot.tie_breaks
            )
            ballot.span = None
        winner = next(w for w, d in ballot.votes.items() if d == digest)
        if self.ledger is not None:
            for voter, vote in ballot.votes.items():
                if vote != digest:
                    self.ledger.convict(ctx, voter, iteration, "outvoted")
        outputs = ballot.payloads[digest]
        ballot.payloads.clear()
        ctx.settle(iteration, outputs, winner)


class SpotCheck(VerificationStrategy):
    """Recompute a deterministic fraction of iterations at the controller.

    Quiz iterations are drawn once per group run from the
    ``verify-spotcheck`` RNG stream, so identical seeds quiz identical
    iterations.  The controller mirrors the group's engine locally
    (built from the same XML round-trip the worker uses), advances it
    with the dispatched inputs, and charges modelled CPU time for each
    quiz recompute under a ``verify.recompute`` span.  A digest mismatch
    convicts the shipper and settles the iteration with the locally
    recomputed truth — spot-checks don't just *detect* lies, they repair
    the ones they catch.
    """

    name = "spot"

    def __init__(self, fraction: float = 0.1):
        super().__init__()
        if not 0.0 < fraction <= 1.0:
            raise SchedulingError("spot-check fraction must be in (0, 1]")
        self.fraction = fraction
        self.name = f"spot-{fraction:g}"
        self.quiz: set[int] = set()
        self._inputs: dict[int, list] = {}
        self._engine: Optional[LocalEngine] = None
        self._ext: tuple = ()
        self._out_spec: tuple = ()
        self._next = 0
        #: quiz iteration → (local digest, modelled flops, local outputs)
        self._cache: dict[int, tuple[str, float, list]] = {}

    def start(self, ctx) -> None:
        rng = ctx.rng("verify-spotcheck")
        self.quiz = {
            it for it in range(ctx.iterations)
            if float(rng.random()) < self.fraction
        }
        group = ctx.group
        self._ext = tuple(group.input_map)
        self._out_spec = tuple(group.output_map)
        # Same XML round-trip the worker deploys through, for fidelity.
        self._engine = LocalEngine(
            graph_from_string(graph_to_string(group.graph),
                              registry=group.graph.registry),
            external_inputs=self._ext,
        )

    # -- dispatch side ------------------------------------------------------
    def on_dispatch(self, ctx, worker, deployment_id, iteration, inputs) -> None:
        # First dispatch wins: re-dispatches carry identical inputs.
        self._inputs.setdefault(iteration, list(inputs))

    # -- result side --------------------------------------------------------
    def on_result(self, ctx, iteration, worker, outputs) -> None:
        if iteration not in self.quiz:
            ctx.settle(iteration, outputs, worker)
            return
        ctx.spawn(
            self._quiz_proc(ctx, iteration, worker, outputs),
            name=f"verify-quiz-{iteration}",
        )

    def _quiz_proc(self, ctx, iteration: int, worker: str, outputs):
        tracer = ctx.sim.tracer
        span = (
            tracer.begin(
                "verify.recompute", category="service", track=ctx.peer.peer_id,
                iteration=iteration, worker=worker,
            )
            if tracer.enabled
            else None
        )
        local_digest, flops, local_outputs = self._ensure(iteration)
        speed = ctx.profile(ctx.peer.peer_id).cpu_flops
        yield ctx.sim.timeout(flops / speed if speed > 0 else 0.0)
        self.stats["spot_checks"] += 1
        remote_digest = canonical_digest(outputs)
        ok = remote_digest == local_digest
        if span is not None:
            span.end(outcome="match" if ok else "mismatch")
        if tracer.enabled:
            tracer.instant(
                "verify.vote", category="service", track=ctx.peer.peer_id,
                worker=worker, iteration=iteration, digest=remote_digest[:12],
                quiz=True, match=ok,
            )
        self.accepted[iteration] = local_digest
        if ok:
            ctx.settle(iteration, outputs, worker)
            return
        self.stats["spot_mismatches"] += 1
        self.stats["overturned"] += 1
        if self.ledger is not None:
            self.ledger.convict(ctx, worker, iteration, "spot-check")
        ctx.settle(iteration, local_outputs, ctx.peer.peer_id)

    def _ensure(self, iteration: int) -> tuple[str, float, list]:
        """Advance the mirror engine up to ``iteration``; cache quiz rows.

        The engine is stateful, so iterations are replayed strictly in
        order from the recorded dispatch inputs; only quiz iterations
        pay modelled recompute time (the mirror state for the rest is
        bookkeeping the controller carries anyway).  Synchronous — no
        sim yields — so concurrent quiz processes cannot interleave an
        advance.
        """
        engine = self._engine
        assert engine is not None
        while self._next <= iteration:
            i = self._next
            inputs = self._inputs[i]
            external = dict(zip(self._ext, inputs))
            before = engine.stats.modelled_flops
            outputs_map = engine.step(external)
            flops = engine.stats.modelled_flops - before
            if i in self.quiz:
                outs = [outputs_map[t][n] for t, n in self._out_spec]
                self._cache[i] = (canonical_digest(outs), flops, outs)
            self._next += 1
        return self._cache[iteration]


# -- factory ------------------------------------------------------------------------


def verification_names() -> tuple[str, ...]:
    """The spellings ``make_verifier`` accepts (shown by the CLI)."""
    return ("none", "replicate-<k>", "spot-<fraction>")


def make_verifier(
    spec: Optional[str], ledger: Optional[ReputationLedger] = None
) -> Optional[VerificationStrategy]:
    """Parse a verification spec into a fresh strategy (or ``None``).

    ``"none"``/``None`` → no verifier; ``"replicate-3"`` → triple
    execution with quorum 2; ``"spot-0.2"`` → quiz 20% of iterations.
    """
    if spec is None or spec == "" or spec == "none":
        return None
    kind, _, arg = spec.partition("-")
    try:
        if kind == "replicate":
            strategy: VerificationStrategy = ReplicationVoting(int(arg or 3))
        elif kind == "spot":
            strategy = SpotCheck(float(arg or 0.1))
        else:
            raise ValueError(kind)
    except (ValueError, TypeError):
        raise SchedulingError(
            f"unknown verification spec {spec!r}; "
            f"valid: {', '.join(verification_names())}"
        ) from None
    strategy.ledger = ledger
    return strategy
