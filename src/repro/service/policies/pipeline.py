"""The ``p2p`` pipeline — the paper's second distribution policy.

"Distributing the group vertically i.e. each unit in the group is
distributed onto a separate resource and data is passed between them":
each unit of a **linear** chain is placed on its own peer with
stage-to-stage forwards, iterations enter at stage 0 and flow
peer-to-peer; only the final stage reports back to the controller.
"""

from __future__ import annotations

from ...core.taskgraph import TaskGraph
from ...core.xml_io import graph_to_string
from ..errors import SchedulingError
from ..worker import DeploymentSpec
from .base import DispatchContext, DistributionPolicy

__all__ = ["PipelinePolicy"]


class PipelinePolicy(DistributionPolicy):
    """Pipeline a linear chain across peers with stage-to-stage pipes."""

    name = "p2p"

    def deploy(self, ctx: DispatchContext, group, workers: list[str]):
        """Place each unit of the group on its own peer, piped in order."""
        order = group.graph.topological_order()
        self._check_linear_chain(group, order)
        dep_ids = [ctx.next_deployment_id() for _ in order]
        specs = []
        for i, task_name in enumerate(order):
            task = group.graph.task(task_name)
            stage = TaskGraph(
                name=f"{group.name}/{task_name}", registry=group.graph.registry
            )
            stage.add_task(task_name, task.unit_name, **task.params)
            external_inputs = tuple((task_name, n) for n in range(task.num_inputs))
            if i + 1 < len(order):
                conn = [
                    c
                    for c in group.graph.connections
                    if c.src == task_name and c.dst == order[i + 1]
                ][0]
                output_spec = ((task_name, conn.src_node),)
                forward = (workers[(i + 1) % len(workers)], dep_ids[i + 1])
            else:
                output_spec = tuple(group.output_map)
                forward = None
            specs.append(
                (
                    workers[i % len(workers)],
                    DeploymentSpec(
                        deployment_id=dep_ids[i],
                        controller=ctx.peer.peer_id,
                        xml=graph_to_string(stage),
                        external_inputs=external_inputs,
                        output_spec=output_spec,
                        forward=forward,
                        heartbeat_interval=ctx.detector.heartbeat_interval,
                    ),
                )
            )
        yield from ctx.deploy(specs)
        # Remember the chain so the controller can offer stage migration.
        ctx.chain = [(worker, spec) for worker, spec in specs]

    def dispatch(self, ctx: DispatchContext, iteration: int, inputs: list) -> None:
        # Everything enters at stage 0 and flows peer-to-peer.
        ctx.send_exec(ctx.replica_hosts[0], ctx.dep_ids[0], iteration, inputs)

    def preseed_units(
        self, group, workers: list[str], replicas: int
    ) -> list[tuple[str, tuple[str, ...]]]:
        """Per-stage preseed: each stage's unit goes to its own worker.

        Stage ``i`` deploys on ``workers[i % n]`` — pre-seeding its unit
        there (plus the next ``replicas - 1`` peers, which serve as warm
        replicas for migration/recovery) means the deploy-time fetch is
        a digest revalidation instead of a full download.
        """
        order = group.graph.topological_order()
        by_worker: dict[str, set[str]] = {}
        n = len(workers)
        for i, task_name in enumerate(order):
            unit = group.graph.task(task_name).unit_name
            for r in range(min(replicas, n)):
                by_worker.setdefault(workers[(i + r) % n], set()).add(unit)
        return [
            (worker, tuple(sorted(units)))
            for worker, units in sorted(by_worker.items())
        ]

    def _check_linear_chain(self, group, order: list[str]) -> None:
        for name in order:
            if len(group.graph.out_connections(name)) > 1 or len(
                group.graph.in_connections(name)
            ) > 1:
                raise SchedulingError(
                    f"p2p policy requires a linear chain; task {name!r} in group "
                    f"{group.name!r} has fan-in/fan-out"
                )
        for a, b in zip(order, order[1:]):
            if not any(c.src == a and c.dst == b for c in group.graph.connections):
                raise SchedulingError(
                    f"p2p policy requires a connected chain; {a!r} and {b!r} "
                    "are not linked"
                )
