"""The distribution-policy registry — the units registry's twin.

Task graphs reference policies by name exactly as they reference units:
``<group policy="chunked">`` in XML resolves here at run time.  Registering
a policy also declares its name to the core layer
(:func:`repro.core.taskgraph.register_policy_name`), so graphs carrying the
name can be built, validated and serialized without the service layer in
the loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Type

from ...core.taskgraph import register_policy_name
from ..errors import SchedulingError
from .base import DistributionPolicy

__all__ = [
    "PolicyDescriptor",
    "PolicyRegistry",
    "global_policy_registry",
    "register_policy",
]


@dataclass(frozen=True)
class PolicyDescriptor:
    """Metadata describing one registered distribution policy."""

    name: str
    cls: Type[DistributionPolicy]
    summary: str


class PolicyRegistry:
    """Name → distribution-policy-class mapping.

    The controller resolves a group's policy name against its registry
    (the global one unless injected); third-party policies become usable
    end-to-end — XML through ``repro run`` — by registering alone.
    """

    def __init__(self):
        self._policies: dict[str, PolicyDescriptor] = {}

    def register(self, cls: Type[DistributionPolicy]) -> PolicyDescriptor:
        """Register a policy class; duplicate names are an error."""
        if not (isinstance(cls, type) and issubclass(cls, DistributionPolicy)):
            raise SchedulingError(f"{cls!r} is not a DistributionPolicy subclass")
        name = cls.name
        if not name:
            raise SchedulingError(f"{cls.__name__} must set a policy name")
        if name in self._policies:
            raise SchedulingError(f"policy {name!r} already registered")
        desc = PolicyDescriptor(name=name, cls=cls, summary=cls.summary())
        self._policies[name] = desc
        register_policy_name(name)
        return desc

    def unregister(self, name: str) -> None:
        if name not in self._policies:
            raise SchedulingError(f"policy {name!r} not registered")
        del self._policies[name]

    def lookup(self, name: str) -> PolicyDescriptor:
        if name not in self._policies:
            raise SchedulingError(
                f"unknown distribution policy {name!r}; registered: {self.names()}"
            )
        return self._policies[name]

    def create(self, name: str, **params) -> DistributionPolicy:
        """Instantiate a registered policy (one instance per group run)."""
        return self.lookup(name).cls(**params)

    def __contains__(self, name: str) -> bool:
        return name in self._policies

    def __len__(self) -> int:
        return len(self._policies)

    def __iter__(self) -> Iterator[PolicyDescriptor]:
        return iter(self._policies.values())

    def names(self) -> list[str]:
        return sorted(self._policies)


_GLOBAL = PolicyRegistry()


def global_policy_registry() -> PolicyRegistry:
    """The process-wide registry the built-in policies populate."""
    return _GLOBAL


def register_policy(
    cls: Optional[Type[DistributionPolicy]] = None,
    *,
    registry: Optional[PolicyRegistry] = None,
):
    """Class decorator registering a policy, bare or parenthesised::

        @register_policy
        class Mine(DistributionPolicy): ...

        @register_policy(registry=my_registry)
        class Mine(DistributionPolicy): ...
    """

    def deco(c: Type[DistributionPolicy]) -> Type[DistributionPolicy]:
        (registry or _GLOBAL).register(c)
        return c

    return deco(cls) if cls is not None else deco
