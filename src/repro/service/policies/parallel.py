"""The ``parallel`` farm — the paper's first distribution policy.

"A farming out mechanism and generally involves no communication between
hosts": the whole group is replicated on every worker, iterations are
dealt by a :class:`~repro.service.placement.DispatchPolicy` and results
are re-ordered by iteration at the controller.

The farm owns the two-tier churn recovery documented in
``docs/robustness.md``: heartbeat suspicion acted on within one detector
beat, a ``retry_timeout`` aging fallback, exponential backoff with
deterministic jitter from the ``recovery-backoff`` stream, and
speculative duplication of stragglers once most of the batch is done.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ...core.xml_io import graph_to_string
from ..placement import DispatchPolicy, make_dispatch_policy
from ..worker import DeploymentSpec
from .base import DispatchContext, DistributionPolicy

__all__ = ["Outstanding", "ParallelFarmPolicy"]


@dataclass
class Outstanding:
    """One dispatched-but-unresolved iteration the recovery loop watches."""

    inputs: list[Any]
    base_replica: int
    dispatched_at: float
    attempts: int = 0
    #: replica index currently responsible for this iteration
    replica: int = 0
    #: earliest time another re-dispatch is allowed (exponential backoff)
    retry_at: float = 0.0
    speculated: bool = False


class ParallelFarmPolicy(DistributionPolicy):
    """Farm the group onto every worker; deal iterations, recover churn."""

    name = "parallel"

    def deploy(self, ctx: DispatchContext, group, workers: list[str]):
        """Replicate the whole group on every worker."""
        xml = graph_to_string(group.graph)
        specs = []
        for worker in workers:
            specs.append(
                (
                    worker,
                    DeploymentSpec(
                        deployment_id=ctx.next_deployment_id(),
                        controller=ctx.peer.peer_id,
                        xml=xml,
                        external_inputs=tuple(group.input_map),
                        output_spec=tuple(group.output_map),
                        forward=None,
                        heartbeat_interval=ctx.detector.heartbeat_interval,
                    ),
                )
            )
        yield from ctx.deploy(specs)

    def start(self, ctx: DispatchContext, iterations: int) -> None:
        self.outstanding: dict[int, Outstanding] = {}
        self.dispatcher: DispatchPolicy = make_dispatch_policy(ctx.dispatch_name)
        # Reputation-aware dispatchers (duck-typed so plain ones cost
        # nothing) get the detector and the replica→host mapping.
        bind = getattr(self.dispatcher, "bind_reputation", None)
        if bind is not None:
            bind(ctx.detector, ctx.replica_hosts, ctx.sim)
        self.dispatcher.setup(
            [ctx.profile(h).cpu_flops for h in ctx.replica_hosts]
        )
        #: iteration → replica awaiting completion credit
        self.replica_of: dict[int, int] = {}
        self._stop = {"done": False}

    def dispatch(self, ctx: DispatchContext, iteration: int, inputs: list) -> None:
        replica = self.dispatcher.choose(iteration)
        self.replica_of[iteration] = replica
        self.outstanding[iteration] = Outstanding(
            inputs=inputs,
            base_replica=replica,
            dispatched_at=ctx.sim.now,
            replica=replica,
        )
        ctx.send_exec(
            ctx.replica_hosts[replica], ctx.dep_ids[replica], iteration, inputs
        )

    def begin_collect(self, ctx: DispatchContext) -> None:
        ctx.spawn(self._recovery_loop(ctx), name="recovery-monitor")

    def on_result(self, ctx: DispatchContext, iteration: int, worker: str) -> None:
        if iteration in self.replica_of:
            self.dispatcher.completed(self.replica_of.pop(iteration))
        self.outstanding.pop(iteration, None)
        span = ctx.redispatch_spans.pop(iteration, None)
        if span is not None:
            span.end(outcome="completed", worker=worker)

    def finalize(self, ctx: DispatchContext) -> None:
        self._stop["done"] = True
        for _it, span in sorted(ctx.redispatch_spans.items()):
            span.end(outcome="abandoned")
        ctx.redispatch_spans.clear()

    # -- churn recovery -----------------------------------------------------
    def _recovery_loop(self, ctx: DispatchContext):
        """Suspicion-driven + timeout-fallback redispatch, plus speculation.

        Ticks at ``min(retry_interval, heartbeat_interval)`` so a heartbeat
        suspicion is acted on within one beat of the detector deadline —
        the seed's retry loop could leave a dead iteration waiting up to
        ``retry_timeout + retry_interval``.
        """
        cfg = ctx.settings
        stop = self._stop
        outstanding = self.outstanding
        tick = min(cfg.retry_interval, ctx.detector.heartbeat_interval)
        hb = ctx.detector.heartbeat_interval
        # Renew worker heartbeat leases well inside their 10-beat window.
        renew_every = max(1, int(4 * hb / tick))
        rng = ctx.rng("recovery-backoff")
        ticks = 0
        while not stop["done"]:
            yield ctx.sim.timeout(tick)
            if stop["done"]:
                return
            now = ctx.sim.now
            ticks += 1
            if ticks % renew_every == 0:
                for host in sorted(set(ctx.replica_hosts)):
                    ctx.send(
                        host, "triana-hb-renew",
                        payload=(ctx.peer.peer_id, hb), size_bytes=48,
                    )
            fresh_suspects = ctx.detector.check(now)
            if fresh_suspects:
                tracer = ctx.sim.tracer
                if tracer.enabled:
                    for worker in fresh_suspects:
                        tracer.metrics.counter("service.suspicions").inc()
                        tracer.instant(
                            "detector.suspect", category="service",
                            track=ctx.peer.peer_id, worker=worker,
                        )
                self._on_suspects(ctx, fresh_suspects)
            done = ctx.iterations - len(outstanding)
            for it, rec in sorted(outstanding.items()):
                ev = ctx.result_events.get(it)
                if ev is None or ev.triggered:
                    outstanding.pop(it, None)
                    continue
                host = ctx.replica_hosts[rec.replica]
                aged = now - rec.dispatched_at >= cfg.retry_timeout
                suspected = not ctx.detector.is_alive(host, now)
                if suspected or aged:
                    if now < rec.retry_at:
                        continue  # backing off after a recent redispatch
                    reason = "suspicion" if suspected else "timeout"
                    self._redispatch(ctx, rec, it, now, rng, reason)
                elif (
                    cfg.speculation_threshold < 1.0
                    and done >= cfg.speculation_threshold * ctx.iterations
                    and not rec.speculated
                    and now - rec.dispatched_at >= cfg.speculation_age
                ):
                    self._speculate(ctx, rec, it, now)

    def _on_suspects(self, ctx: DispatchContext, suspects) -> None:
        """Freshly suspected workers: let the dispatcher re-weight."""
        for worker in suspects:
            for idx, host in enumerate(ctx.replica_hosts):
                if host == worker:
                    self.dispatcher.mark_offline(idx)

    def _redispatch(self, ctx, rec, it, now, rng, reason) -> None:
        cfg = ctx.settings
        rec.attempts += 1
        idx = self._pick_replica(ctx, rec, now)
        rec.replica = idx
        rec.dispatched_at = now
        backoff = min(cfg.backoff_base * 2 ** (rec.attempts - 1), cfg.backoff_max)
        rec.retry_at = now + backoff * (1.0 + 0.25 * float(rng.random()))
        ctx.counters["n"] += 1
        ctx.counters[reason] += 1
        tracer = ctx.sim.tracer
        if tracer.enabled:
            previous = ctx.redispatch_spans.pop(it, None)
            if previous is not None:
                previous.end(outcome="superseded")
            ctx.redispatch_spans[it] = tracer.begin(
                "controller.redispatch", category="service",
                track=ctx.peer.peer_id, iteration=it,
                worker=ctx.replica_hosts[idx], reason=reason, attempt=rec.attempts,
            )
            tracer.metrics.counter(f"service.redispatch_{reason}").inc()
        ctx.notify(
            "redispatch", iteration=it, worker=ctx.replica_hosts[idx], reason=reason
        )
        self.redispatch_exec(ctx, idx, it, rec.inputs)

    def redispatch_exec(self, ctx: DispatchContext, idx: int, it: int, inputs) -> None:
        """How a recovered iteration is re-sent (subclasses may batch)."""
        ctx.send_exec(ctx.replica_hosts[idx], ctx.dep_ids[idx], it, inputs)

    def _pick_replica(self, ctx: DispatchContext, rec, now) -> int:
        """Next target: prefer online + healthy, then merely online."""
        k = len(ctx.replica_hosts)
        online_idx = None
        for offset in range(k):
            idx = (rec.base_replica + rec.attempts + offset) % k
            host = ctx.replica_hosts[idx]
            if not ctx.is_online(host):
                continue
            if online_idx is None:
                online_idx = idx
            if ctx.detector.is_dispatchable(host, now):
                return idx
        if online_idx is not None:
            return online_idx
        return (rec.base_replica + rec.attempts) % k

    def _speculate(self, ctx: DispatchContext, rec, it, now) -> None:
        """Duplicate a straggling iteration on a second healthy replica.

        First result wins (the controller drops the loser); the worker
        side de-duplicates, so this is safe even if the original is alive.
        """
        k = len(ctx.replica_hosts)
        for offset in range(1, k):
            idx = (rec.replica + offset) % k
            host = ctx.replica_hosts[idx]
            if ctx.is_online(host) and ctx.detector.is_dispatchable(host, now):
                break
        else:
            return  # no second replica worth speculating on
        rec.speculated = True
        ctx.counters["speculative"] += 1
        tracer = ctx.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("service.speculations").inc()
        ctx.notify("speculate", iteration=it, worker=ctx.replica_hosts[idx])
        self.redispatch_exec(ctx, idx, it, rec.inputs)
