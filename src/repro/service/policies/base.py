"""The distribution-policy strategy interface and its controller facade.

The paper (§3.3) presents ``parallel`` and ``p2p`` as *examples* of how a
grouped sub-workflow may be distributed, not a closed set.  This module
makes the policy a first-class strategy object:

* :class:`DistributionPolicy` — the hook sequence one group goes through
  (``deploy`` → ``dispatch``/``flush`` → ``begin_collect`` →
  ``on_result`` → ``finalize``);
* :class:`DispatchContext` — everything the controller lends a policy for
  one group run: the simulator clock/RNG, messaging, the deploy-with-retry
  machinery, the failure detector, recovery settings and tracing.

Policies receive controller *services*, never the controller object —
``tools/check_layering.py`` enforces that nothing in this package imports
``repro.service.controller``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ...p2p.peer import Peer
from ...simkernel import Event, Simulator
from ..detector import HeartbeatFailureDetector
from ..worker import DeploymentSpec

__all__ = ["RecoverySettings", "DispatchContext", "DistributionPolicy"]


@dataclass(frozen=True)
class RecoverySettings:
    """Controller-level knobs a policy's recovery machinery honours."""

    retry_timeout: float
    retry_interval: float
    backoff_base: float
    backoff_max: float
    speculation_threshold: float
    speculation_age: float


class DispatchContext:
    """One group run's view of the controller, lent to its policy.

    The context carries identity (``peer``), services (send/deploy/
    notify, detector, recovery settings) and per-run state the controller
    and policy share: placements, result events, redispatch spans and the
    recovery counters that feed the :class:`~repro.service.controller.
    RunReport` summary.
    """

    def __init__(
        self,
        *,
        peer: Peer,
        detector: HeartbeatFailureDetector,
        settings: RecoverySettings,
        dispatch_name: str,
        deploy: Callable,
        next_deployment_id: Callable[[], str],
        notify: Callable[..., None],
    ):
        self.peer = peer
        self.sim: Simulator = peer.sim
        self.detector = detector
        self.settings = settings
        #: farm dispatch-policy name (``round_robin`` | ``weighted`` | ...)
        self.dispatch_name = dispatch_name
        self._deploy = deploy
        self.next_deployment_id = next_deployment_id
        self.notify = notify
        #: deployment id → worker host, filled after ``deploy``
        self.placements: dict[str, str] = {}
        self.dep_ids: list[str] = []
        self.replica_hosts: list[str] = []
        #: iteration → event succeeded with the group's outputs
        self.result_events: dict[int, Event] = {}
        #: open ``controller.redispatch`` spans by iteration
        self.redispatch_spans: dict[int, Any] = {}
        #: recovery accounting, aggregated into the run report
        self.counters = {"n": 0, "suspicion": 0, "timeout": 0, "speculative": 0}
        #: (worker, spec) per stage — set by chain-shaped policies so the
        #: controller can offer stage migration
        self.chain: list[tuple[str, DeploymentSpec]] = []
        self.iterations = 0
        #: the policy instance driving this run (set by the controller)
        self.policy: Any = None
        #: result-verification strategy, or None for the trusting default
        #: (None keeps dispatch and settling byte-for-byte the old path)
        self.verifier: Any = None
        #: the policy-carrying group this run distributes
        self.group: Any = None
        #: iteration → last dispatched inputs; only kept when verifying
        #: (tie-break re-executions need the payload after dispatch)
        self.iteration_inputs: dict[int, list] = {}

    # -- controller services ------------------------------------------------
    def deploy(self, specs: list[tuple[str, DeploymentSpec]]):
        """Deploy specs with the controller's retry/ack machinery.

        A generator: ``yield from ctx.deploy(specs)`` inside the policy's
        :meth:`DistributionPolicy.deploy`.  Also records the resulting
        placements on the context.
        """
        yield from self._deploy(specs)
        for worker, spec in specs:
            self.placements[spec.deployment_id] = worker
        self.dep_ids = list(self.placements)
        self.replica_hosts = [self.placements[d] for d in self.dep_ids]

    def send(self, dst: str, kind: str, payload: Any, size_bytes: int) -> None:
        self.peer.send(dst, kind, payload=payload, size_bytes=size_bytes)

    def send_exec(self, worker: str, deployment_id: str, iteration: int, inputs) -> None:
        """Ship one iteration's inputs to a deployment (``group-exec``).

        When a verifier is attached it observes every send (replication
        fans out from here) and the inputs are retained for tie-break
        re-executions; the unverified path is untouched.
        """
        self.raw_send_exec(worker, deployment_id, iteration, inputs)
        if self.verifier is not None:
            self.iteration_inputs[iteration] = inputs
            self.verifier.on_dispatch(self, worker, deployment_id, iteration, inputs)

    def raw_send_exec(
        self, worker: str, deployment_id: str, iteration: int, inputs
    ) -> None:
        """``send_exec`` without the verification hook (verifier fan-out)."""
        size = _payload_size(inputs) + 64
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("service.dispatches").inc()
            tracer.instant(
                "controller.dispatch", category="service", track=self.peer.peer_id,
                worker=worker, deployment=deployment_id, iteration=iteration,
            )
        self.peer.send(
            worker, "group-exec", payload=(deployment_id, iteration, inputs),
            size_bytes=size,
        )

    def send_exec_batch(
        self, worker: str, deployment_id: str, items: list[tuple[int, list]]
    ) -> None:
        """Ship several iterations in one ``group-exec-batch`` envelope.

        The batch pays the 64-byte message envelope once instead of once
        per iteration — the ``chunked`` policy's whole reason to exist.
        """
        self.raw_send_exec_batch(worker, deployment_id, items)
        if self.verifier is not None:
            for iteration, inputs in items:
                self.iteration_inputs[iteration] = inputs
            self.verifier.on_dispatch_batch(self, worker, deployment_id, items)

    def raw_send_exec_batch(
        self, worker: str, deployment_id: str, items: list[tuple[int, list]]
    ) -> None:
        """``send_exec_batch`` without the verification hook."""
        size = sum(_payload_size(inputs) for _it, inputs in items) + 64
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("service.dispatches").inc(len(items))
            tracer.instant(
                "controller.dispatch", category="service", track=self.peer.peer_id,
                worker=worker, deployment=deployment_id,
                iteration=items[0][0], batched=len(items),
            )
        self.peer.send(
            worker, "group-exec-batch", payload=(deployment_id, list(items)),
            size_bytes=size,
        )

    def settle(self, iteration: int, outputs, worker: str) -> bool:
        """Finish one iteration: policy bookkeeping, then the result event.

        The controller settles unverified runs itself; verification
        strategies settle through here once a result is trusted.  Safe
        against races — a second settle of the same iteration is a no-op.
        """
        ev = self.result_events.get(iteration)
        if ev is None or ev.triggered:
            return False
        self.policy.on_result(self, iteration, worker=worker)
        self.iteration_inputs.pop(iteration, None)
        ev.succeed(outputs)
        return True

    def spawn(self, generator, name: str):
        """Run a policy-owned process (e.g. a recovery loop)."""
        return self.sim.process(generator, name=name)

    def rng(self, name: str):
        """A named deterministic RNG stream (see the determinism contract)."""
        return self.sim.rng(name)

    def profile(self, host: str):
        return self.peer.network.profile(host)

    def is_online(self, host: str) -> bool:
        return self.peer.network.is_online(host)


def _payload_size(values) -> int:
    return sum(
        v.payload_nbytes() if hasattr(v, "payload_nbytes") else 64 for v in values
    )


class DistributionPolicy:
    """How one policy-carrying group is spread over worker peers.

    Subclass, set :attr:`name`, override the hooks you need, and register
    the class with :func:`~repro.service.policies.register_policy`.  The
    controller drives one fresh instance per group per run through:

    1. :meth:`deploy` — a generator placing the group on workers;
    2. :meth:`start` — result events exist; allocate per-run state;
    3. :meth:`dispatch` — once per iteration, inputs ready to ship;
    4. :meth:`flush` — the dispatch loop is done (drain any batching);
    5. :meth:`begin_collect` — collection starts (launch recovery here);
    6. :meth:`on_result` — a result arrived (bookkeeping; the controller
       settles the iteration's event itself);
    7. :meth:`finalize` — the group's results are all in.
    """

    #: registry name; also the value of ``<group policy="...">`` in XML
    name: str = ""

    @classmethod
    def summary(cls) -> str:
        """First docstring line — shown by ``repro policies``."""
        doc = (cls.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else ""

    def preseed_units(
        self, group, workers: list[str], replicas: int
    ) -> list[tuple[str, tuple[str, ...]]]:
        """Which modules to pre-place where, before this group deploys.

        Returns ``(worker, unit_names)`` assignments consumed by the
        controller's preseed phase (``preseed_replicas > 0``).  The
        default is farm-shaped: a farm replicates the whole group on
        every worker, so pre-seeding *all* of its units onto the first
        ``replicas`` workers turns those into module replicas the rest
        of the fleet pulls from, instead of everyone queueing on the
        repository uplink.  Chain-shaped policies override this with a
        per-stage plan.
        """
        units = tuple(
            sorted(
                {
                    group.graph.task(t).unit_name
                    for t in group.graph.topological_order()
                }
            )
        )
        if not units:
            return []
        return [(worker, units) for worker in workers[:replicas]]

    def deploy(self, ctx: DispatchContext, group, workers: list[str]):
        """Place ``group`` on ``workers``; yields like a sim process.

        Must ``yield from ctx.deploy(specs)`` (or otherwise wait on the
        acks) and leave ``ctx.placements`` filled.
        """
        raise NotImplementedError
        yield  # pragma: no cover - generator shape

    def start(self, ctx: DispatchContext, iterations: int) -> None:
        """Called once before dispatching; ``ctx.result_events`` exist."""

    def dispatch(self, ctx: DispatchContext, iteration: int, inputs: list) -> None:
        """Route one iteration's boundary inputs into the group."""
        raise NotImplementedError

    def flush(self, ctx: DispatchContext) -> None:
        """All iterations dispatched; send anything still buffered."""

    def begin_collect(self, ctx: DispatchContext) -> None:
        """Collection is starting; launch recovery processes here."""

    def on_result(self, ctx: DispatchContext, iteration: int, worker: str) -> None:
        """A first result for ``iteration`` arrived from ``worker``."""

    def finalize(self, ctx: DispatchContext) -> None:
        """Every iteration collected; stop loops, close open spans."""
