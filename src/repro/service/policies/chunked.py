"""The ``chunked`` farm — batch k iterations per message.

The new policy proving the plugin seam.  On 2003 consumer DSL the
controller's uplink is the scarce resource and every ``group-exec``
message pays a fixed envelope on it; farming many small iterations
spends a noticeable fraction of the uplink on envelopes.  ``chunked``
keeps the parallel farm's placement, dealing and recovery but ships
``chunk_size`` consecutive iterations per replica in one
``group-exec-batch`` message, paying the envelope once per batch.

Workers unpack a batch through the same dedup/idempotence path as
single-iteration messages and still ship results individually, so
collection, recovery and speculation are unchanged — re-dispatched
iterations travel as plain ``group-exec`` singles.
"""

from __future__ import annotations

from .base import DispatchContext
from .parallel import Outstanding, ParallelFarmPolicy

__all__ = ["ChunkedFarmPolicy"]


class ChunkedFarmPolicy(ParallelFarmPolicy):
    """Farm like ``parallel`` but batch k iterations per message."""

    name = "chunked"

    def __init__(self, chunk_size: int = 8):
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.chunk_size = chunk_size

    def start(self, ctx: DispatchContext, iterations: int) -> None:
        super().start(ctx, iterations)
        #: replica → buffered (iteration, inputs) awaiting one batch send
        self._buffers: dict[int, list[tuple[int, list]]] = {}

    def dispatch(self, ctx: DispatchContext, iteration: int, inputs: list) -> None:
        # Same dealing as the parallel farm — only the transport batches,
        # so makespan differences against ``parallel`` are pure envelope
        # economics, not placement luck.
        replica = self.dispatcher.choose(iteration)
        self.replica_of[iteration] = replica
        self.outstanding[iteration] = Outstanding(
            inputs=inputs,
            base_replica=replica,
            dispatched_at=ctx.sim.now,
            replica=replica,
        )
        buffer = self._buffers.setdefault(replica, [])
        buffer.append((iteration, inputs))
        if len(buffer) >= self.chunk_size:
            self._flush_replica(ctx, replica)

    def flush(self, ctx: DispatchContext) -> None:
        for replica in sorted(self._buffers):
            self._flush_replica(ctx, replica)

    def _flush_replica(self, ctx: DispatchContext, replica: int) -> None:
        items = self._buffers.get(replica)
        if not items:
            return
        self._buffers[replica] = []
        if len(items) == 1:
            it, inputs = items[0]
            ctx.send_exec(ctx.replica_hosts[replica], ctx.dep_ids[replica], it, inputs)
        else:
            ctx.send_exec_batch(
                ctx.replica_hosts[replica], ctx.dep_ids[replica], items
            )
