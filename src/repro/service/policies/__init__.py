"""Pluggable group distribution policies (§3.3, opened up).

The paper presents ``parallel`` and ``p2p`` as two *examples* of group
distribution; this package makes the policy a first-class, registry-backed
strategy the way units already are:

* :class:`DistributionPolicy` + :class:`DispatchContext` — the strategy
  interface and the controller facade it programs against;
* :class:`PolicyRegistry` / :func:`register_policy` — name → policy
  resolution, mirroring :class:`~repro.core.registry.UnitRegistry`;
* built-ins: :class:`ParallelFarmPolicy` (``parallel``),
  :class:`PipelinePolicy` (``p2p``) and :class:`ChunkedFarmPolicy`
  (``chunked``), registered on import.

See ``docs/extending.md`` for the "write your own policy" walkthrough.
"""

from .base import DispatchContext, DistributionPolicy, RecoverySettings
from .chunked import ChunkedFarmPolicy
from .parallel import Outstanding, ParallelFarmPolicy
from .pipeline import PipelinePolicy
from .registry import (
    PolicyDescriptor,
    PolicyRegistry,
    global_policy_registry,
    register_policy,
)

__all__ = [
    "ChunkedFarmPolicy",
    "DispatchContext",
    "DistributionPolicy",
    "Outstanding",
    "ParallelFarmPolicy",
    "PipelinePolicy",
    "PolicyDescriptor",
    "PolicyRegistry",
    "RecoverySettings",
    "global_policy_registry",
    "register_policy",
]

for _cls in (ParallelFarmPolicy, PipelinePolicy, ChunkedFarmPolicy):
    if _cls.name not in global_policy_registry():
        global_policy_registry().register(_cls)
del _cls
