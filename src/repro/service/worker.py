"""The Triana service — the server component hosted on every peer.

"The Triana Service is comprised of three components: a client, a server
and a command process server."  This module is the **server**: it accepts
deployed sub-graphs, fetches the required modules on demand, authorises
them against the host sandbox, executes iterations as data arrives, and
pipes results onward — either back to the controller or directly to the
next peer in a pipelined chain ("pipes data onto another machine").

Execution time is *modelled*: each iteration's unit flops are divided by
the host CPU speed, so grid-scale scenarios simulate in milliseconds
while the payloads themselves are computed for real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional  # noqa: F401

from ..core.engine import LocalEngine
from ..core.registry import UnitRegistry
from ..core.xml_io import graph_from_string, unit_names_in_xml
from ..mobility.cache import ModuleCache
from ..mobility.errors import MobilityError, SandboxViolation
from ..mobility.sandbox import SandboxPolicy
from ..p2p.advertisement import ADV_SERVICE, Advertisement
from ..p2p.network import Message
from ..p2p.peer import Peer
from ..simkernel import Simulator, Store

__all__ = ["DeploymentSpec", "TrianaService", "WORKER_SERVICE_KIND"]

WORKER_SERVICE_KIND = "triana-worker"


@dataclass(frozen=True)
class DeploymentSpec:
    """Everything a worker needs to host one sub-graph.

    Attributes
    ----------
    deployment_id:
        Unique id assigned by the controller.
    controller:
        Peer id results/acks go back to.
    xml:
        The sub-graph as task-graph XML (the only thing shipped — code
        follows by on-demand download).
    external_inputs:
        Ordered ``(task, node)`` boundary inputs; ``group-exec`` payloads
        carry one value per entry, in order.
    output_spec:
        Ordered ``(task, node)`` boundary outputs collected per iteration.
    forward:
        ``None`` to send results to the controller, or
        ``(peer_id, deployment_id)`` to pipe them into the next stage.
    paused:
        Deploy in a buffering state: arriving iterations accumulate until
        a ``triana-resume`` message delivers (possibly migrated) unit
        state and any drained leftovers.  Used by chain migration.
    heartbeat_interval:
        When positive, the worker emits ``triana-heartbeat`` messages to
        the controller every this-many seconds while its lease is live
        (the controller renews leases for the duration of a run).  0
        disables heartbeats for this deployment.
    """

    deployment_id: str
    controller: str
    xml: str
    external_inputs: tuple[tuple[str, int], ...]
    output_spec: tuple[tuple[str, int], ...]
    forward: Optional[tuple[str, str]] = None
    paused: bool = False
    heartbeat_interval: float = 0.0


@dataclass
class _Deployment:
    spec: DeploymentSpec
    engine: LocalEngine
    queue: Store
    iterations_done: int = 0
    paused: bool = False
    backlog: list = field(default_factory=list)
    forward_override: Optional[tuple[str, str]] = None
    #: iterations queued or executing (duplicate ``group-exec`` dedup)
    pending: set = field(default_factory=set)
    #: recently shipped outputs by iteration, for idempotent re-ship
    shipped: dict = field(default_factory=dict)


@dataclass
class ServiceStats:
    deployments: int = 0
    deploy_failures: int = 0
    iterations: int = 0
    busy_seconds: float = 0.0
    results_sent: int = 0
    heartbeats_sent: int = 0
    duplicate_execs_dropped: int = 0
    cached_reships: int = 0
    results_corrupted: int = 0
    #: ``module-preseed`` requests processed / units warmed by them
    preseeds: int = 0
    preseed_units_fetched: int = 0


class TrianaService:
    """Worker-side Triana service daemon ("point-and-click" install)."""

    def __init__(
        self,
        peer: Peer,
        repository_host: str,
        sandbox: Optional[SandboxPolicy] = None,
        cache_capacity: int = 10_000_000,
        cache_policy: str = "on_demand",
        efficiency: float = 1.0,
        module_discovery: Optional[Any] = None,
        cache_revalidate: str = "full",
        cache_chunk_bytes: Optional[int] = None,
        cache_fetch_timeout: float = 30.0,
    ):
        self.peer = peer
        self.sim: Simulator = peer.sim
        self.sandbox = sandbox or SandboxPolicy()
        self.cache = ModuleCache(
            peer,
            repository_host,
            capacity_bytes=cache_capacity,
            policy=cache_policy,
            fetch_timeout=cache_fetch_timeout,
            discovery=module_discovery,
            revalidate=cache_revalidate,
            chunk_bytes=cache_chunk_bytes,
        )
        self.efficiency = efficiency
        self.local_registry = UnitRegistry()
        self.deployments: dict[str, _Deployment] = {}
        self.stats = ServiceStats()
        self._tombstones: dict[str, tuple[str, str]] = {}
        #: bounded per-deployment result cache (idempotent re-ship)
        self.result_cache_size = 256
        self._hb_interval = 0.0
        self._hb_lease_until = 0.0
        self._hb_controllers: set[str] = set()
        self._hb_running = False
        peer.on("triana-deploy", self._on_deploy)
        peer.on("group-exec", self._on_exec)
        peer.on("group-exec-batch", self._on_exec_batch)
        peer.on("triana-checkpoint", self._on_checkpoint)
        peer.on("triana-rewire", self._on_rewire)
        peer.on("triana-drain", self._on_drain)
        peer.on("triana-resume", self._on_resume)
        peer.on("triana-reparam", self._on_reparam)
        peer.on("triana-hb-renew", self._on_hb_renew)
        peer.on("module-preseed", self._on_preseed)

    # -- telemetry ---------------------------------------------------------------
    def telemetry_sample(self) -> dict[str, Any]:
        """Per-worker snapshot for the live telemetry sampler.

        ``queued`` counts iterations sitting in deployment queues;
        ``inflight`` is the remainder of the pending sets — iterations
        handed to an engine but not yet completed.
        """
        queued = sum(len(d.queue.items) for d in self.deployments.values())
        pending = sum(len(d.pending) for d in self.deployments.values())
        return {
            "deployments": len(self.deployments),
            "queued": queued,
            "inflight": max(pending - queued, 0),
            "iterations": self.stats.iterations,
            "busy_s": round(self.stats.busy_seconds, 6),
            "results_sent": self.stats.results_sent,
            "heartbeats_sent": self.stats.heartbeats_sent,
            "cache": self.cache.telemetry_sample(),
        }

    # -- advertisement -----------------------------------------------------------
    def advertisement(self) -> Advertisement:
        p = self.peer.profile
        return Advertisement.make(
            ADV_SERVICE,
            f"triana:{self.peer.peer_id}",
            self.peer.peer_id,
            attrs={
                "kind": WORKER_SERVICE_KIND,
                "host": self.peer.peer_id,
                "cpu_flops": p.cpu_flops,
                "free_ram": p.ram_bytes,
            },
        )

    # -- heartbeats ---------------------------------------------------------------
    #: leases last this many beats past the latest deploy/renewal
    HB_LEASE_BEATS = 10

    def _ensure_heartbeat(self, controller: str, interval: float) -> None:
        """Start (or extend) the heartbeat lease toward ``controller``.

        The loop is *leased*, not perpetual: it stops ``HB_LEASE_BEATS``
        intervals after the last deploy or ``triana-hb-renew``, so an idle
        grid's event queue still drains.  Controllers renew the lease for
        as long as a run is in flight.
        """
        if interval <= 0:
            return
        self._hb_interval = interval
        self._hb_controllers.add(controller)
        self._hb_lease_until = max(
            self._hb_lease_until, self.sim.now + self.HB_LEASE_BEATS * interval
        )
        if not self._hb_running:
            self._hb_running = True
            self.sim.process(
                self._heartbeat_loop(), name=f"heartbeat/{self.peer.peer_id}"
            )

    def _on_hb_renew(self, message: Message) -> None:
        controller, interval = message.payload
        self._ensure_heartbeat(controller, float(interval))

    def _heartbeat_loop(self):
        # First beat one interval in: deploys get a quiet network, and the
        # detector's watch() grace covers the gap.
        yield self.sim.timeout(self._hb_interval)
        while self.sim.now < self._hb_lease_until:
            if self.peer.online:
                tracer = self.sim.tracer
                for controller in sorted(self._hb_controllers):
                    self.stats.heartbeats_sent += 1
                    if tracer.enabled:
                        tracer.metrics.counter("service.heartbeats_sent").inc()
                    self.peer.send(
                        controller,
                        "triana-heartbeat",
                        payload=(self.peer.peer_id, self.stats.iterations),
                        size_bytes=48,
                    )
            yield self.sim.timeout(self._hb_interval)
        self._hb_running = False

    # -- replica preseed -----------------------------------------------------------
    def _on_preseed(self, message: Message) -> None:
        controller, units = message.payload
        self.sim.process(
            self._preseed_proc(controller, units),
            name=f"preseed/{self.peer.peer_id}",
        )

    def _preseed_proc(self, controller: str, units):
        """Warm the cache with ``units`` and ack what actually landed.

        Failures (repository down, unknown unit) are swallowed — preseed
        is a best-effort optimisation and the deploy path re-fetches on
        demand anyway.
        """
        self.stats.preseeds += 1
        ok: list[str] = []
        for unit_name in units:
            try:
                yield self.cache.ensure(unit_name)
            except MobilityError:
                continue
            self.stats.preseed_units_fetched += 1
            ok.append(unit_name)
        if self.peer.online:
            self.peer.send(
                controller,
                "preseed-ack",
                payload=(self.peer.peer_id, tuple(ok)),
                size_bytes=64 + 16 * len(ok),
            )

    # -- deployment --------------------------------------------------------------
    def _on_deploy(self, message: Message) -> None:
        spec: DeploymentSpec = message.payload
        self._ensure_heartbeat(spec.controller, spec.heartbeat_interval)
        if spec.deployment_id in self.deployments:
            # Duplicate deploy (controller retry after a lost ack): re-ack.
            self.peer.send(
                spec.controller,
                "deploy-ack",
                payload=(spec.deployment_id, None),
                size_bytes=64,
            )
            return
        self.sim.process(self._deploy_proc(spec), name=f"deploy/{spec.deployment_id}")

    def _deploy_proc(self, spec: DeploymentSpec):
        """Fetch modules (with retry), authorise, build the engine, ack."""
        tracer = self.sim.tracer
        span = (
            tracer.begin(
                "worker.deploy", category="service", track=self.peer.peer_id,
                deployment=spec.deployment_id, controller=spec.controller,
            )
            if tracer.enabled
            else None
        )
        try:
            required = sorted(unit_names_in_xml(spec.xml))
            for unit_name in required:
                pkg = None
                for attempt in range(3):
                    try:
                        pkg = yield self.cache.ensure(unit_name)
                        break
                    except MobilityError:
                        if attempt == 2:
                            raise
                if unit_name not in self.local_registry:
                    self.local_registry.register(pkg.cls)
                self.sandbox.authorise(pkg.cls, version=pkg.version)
                if span is not None:
                    tracer.instant(
                        "sandbox.authorise", category="mobility",
                        track=self.peer.peer_id, unit=unit_name, version=pkg.version,
                    )
            graph = graph_from_string(spec.xml, registry=self.local_registry)
            engine = LocalEngine(graph, external_inputs=spec.external_inputs)
            # "Users also would have the option to specify how much RAM the
            # applications could use" — cap the deployment's working set.
            self.sandbox.check_ram(
                sum(type(u).RAM_ESTIMATE for u in engine.units.values())
            )
        except (MobilityError, SandboxViolation, Exception) as exc:
            self.stats.deploy_failures += 1
            if span is not None:
                span.end(outcome="failed", error=type(exc).__name__)
            self.peer.send(
                spec.controller,
                "deploy-ack",
                payload=(spec.deployment_id, f"{type(exc).__name__}: {exc}"),
                size_bytes=128,
            )
            return
        dep = _Deployment(
            spec=spec, engine=engine, queue=Store(self.sim), paused=spec.paused
        )
        self.deployments[spec.deployment_id] = dep
        self.stats.deployments += 1
        if span is not None:
            span.end(outcome="deployed", units=len(required))
        self.sim.process(self._exec_loop(dep), name=f"exec/{spec.deployment_id}")
        self.peer.send(
            spec.controller, "deploy-ack", payload=(spec.deployment_id, None), size_bytes=64
        )

    # -- execution ------------------------------------------------------------------
    def _on_exec(self, message: Message) -> None:
        deployment_id, iteration, inputs = message.payload
        dep = self.deployments.get(deployment_id)
        if dep is None:
            # Migrated away?  A tombstone forwards stragglers to the new home.
            target = self._tombstones.get(deployment_id)
            if target is not None and self.peer.online:
                new_peer, new_dep = target
                self.peer.send(
                    new_peer,
                    "group-exec",
                    payload=(new_dep, iteration, inputs),
                    size_bytes=message.size_bytes,
                )
            return
        self._accept(dep, iteration, inputs)

    def _on_exec_batch(self, message: Message) -> None:
        """Unpack a ``group-exec-batch`` (chunked farm) into iterations.

        Each item goes through the same dedup/idempotence path as a
        single ``group-exec``; results still ship individually.
        """
        deployment_id, items = message.payload
        dep = self.deployments.get(deployment_id)
        if dep is None:
            target = self._tombstones.get(deployment_id)
            if target is not None and self.peer.online:
                new_peer, new_dep = target
                self.peer.send(
                    new_peer,
                    "group-exec-batch",
                    payload=(new_dep, items),
                    size_bytes=message.size_bytes,
                )
            return
        for iteration, inputs in items:
            self._accept(dep, iteration, inputs)

    def _accept(self, dep: _Deployment, iteration: int, inputs) -> None:
        if iteration in dep.shipped:
            # Already computed and shipped: re-ship the cached outputs so a
            # redispatch after a lost result converges without re-execution.
            self.stats.cached_reships += 1
            self._ship(dep, iteration, dep.shipped[iteration])
            return
        if iteration in dep.pending:
            # Queued or executing right now: a second copy would double-count.
            self.stats.duplicate_execs_dropped += 1
            return
        dep.pending.add(iteration)
        if dep.paused:
            dep.backlog.append((iteration, inputs))
        else:
            dep.queue.put((iteration, inputs))

    def _exec_loop(self, dep: _Deployment):
        """Serial execution of queued iterations at modelled CPU speed."""
        while True:
            iteration, inputs = yield dep.queue.get()
            # Speed is re-read per iteration: the chaos layer's straggler
            # fault scales it mid-run via the fabric's set_speed_factor
            # (a no-op 1.0 on chaos-free transports like TCP).
            speed = (
                self.peer.profile.cpu_flops
                * self.efficiency
                * self.peer.network.speed_factor(self.peer.peer_id)
            )
            external = {
                key: value
                for key, value in zip(dep.spec.external_inputs, inputs)
            }
            tracer = self.sim.tracer
            span = (
                tracer.begin(
                    "worker.exec", category="service", track=self.peer.peer_id,
                    deployment=dep.spec.deployment_id, iteration=iteration,
                )
                if tracer.enabled
                else None
            )
            flops_before = dep.engine.stats.modelled_flops
            outputs_map = dep.engine.step(external)
            duration = (dep.engine.stats.modelled_flops - flops_before) / speed
            yield self.sim.timeout(duration)
            if span is not None:
                span.end(modelled_seconds=duration)
            self.stats.busy_seconds += duration
            self.stats.iterations += 1
            dep.iterations_done += 1
            outputs = [outputs_map[t][n] for t, n in dep.spec.output_spec]
            outputs = self._maybe_tamper(dep, iteration, outputs)
            dep.pending.discard(iteration)
            self._ship(dep, iteration, outputs)

    def _maybe_tamper(
        self, dep: _Deployment, iteration: int, outputs: list[Any]
    ) -> list[Any]:
        """Apply any installed compute-fault model to this execution.

        The chaos layer plants :class:`~repro.faults.compute.ComputeFaultModel`
        instances in the fabric's ``compute_faults`` registry (every
        ``repro.transport`` backend exposes one; only the simulated
        fabric ever populates it); a clean fleet pays one dict lookup.  Tampering is invisible to the worker's own
        bookkeeping on purpose — a saboteur believes (or pretends) its
        answer is fine, so the result ships through the normal path.
        """
        model = getattr(self.peer.network, "compute_faults", {}).get(
            self.peer.peer_id
        )
        if model is None:
            return outputs
        tampered, kind = model.apply(
            dep.spec.deployment_id, iteration, outputs, self.sim.now
        )
        if kind:
            self.stats.results_corrupted += 1
            tracer = self.sim.tracer
            if tracer.enabled:
                tracer.instant(
                    "fault.tamper", category="faults", track=self.peer.peer_id,
                    kind=kind, deployment=dep.spec.deployment_id,
                    iteration=iteration,
                )
        return tampered

    def _ship(self, dep: _Deployment, iteration: int, outputs: list[Any]) -> None:
        # Cache before the online check: if the ship is lost to churn, a
        # later duplicate group-exec re-ships from here without recompute.
        dep.shipped[iteration] = outputs
        if len(dep.shipped) > self.result_cache_size:
            del dep.shipped[min(dep.shipped)]
        size = sum(
            v.payload_nbytes() if hasattr(v, "payload_nbytes") else 64 for v in outputs
        )
        if not self.peer.online:
            return  # churned away mid-compute; controller recovers
        self.stats.results_sent += 1
        forward = dep.forward_override or dep.spec.forward
        if forward is None:
            self.peer.send(
                dep.spec.controller,
                "group-result",
                payload=(dep.spec.deployment_id, iteration, outputs),
                size_bytes=size,
            )
        else:
            next_peer, next_dep = forward
            self.peer.send(
                next_peer,
                "group-exec",
                payload=(next_dep, iteration, outputs),
                size_bytes=size,
            )

    # -- checkpoint & migration protocol ------------------------------------------------
    def _on_checkpoint(self, message: Message) -> None:
        requester, deployment_id = message.payload
        dep = self.deployments.get(deployment_id)
        state = dep.engine.checkpoint() if dep is not None else None
        self.peer.send(
            requester,
            "checkpoint-reply",
            payload=(deployment_id, state),
            size_bytes=1024,
        )

    def _on_reparam(self, message: Message) -> None:
        """Update unit parameters of a live deployment.

        The Case-1 view change: "messages are then sent to all the
        distributed servers so that the new data slice through each time
        frame can be calculated and returned" — no re-deploy, no code
        movement, just new parameters for already-running units.
        """
        requester, deployment_id, task_name, params = message.payload
        dep = self.deployments.get(deployment_id)
        error = None
        if dep is None:
            error = f"no deployment {deployment_id!r}"
        elif task_name not in dep.engine.units:
            error = (
                f"no task {task_name!r} in deployment "
                f"(have {sorted(dep.engine.units)})"
            )
        else:
            try:
                unit = dep.engine.units[task_name]
                for pname, pvalue in params.items():
                    unit.set_param(pname, pvalue)
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
        self.peer.send(
            requester,
            "reparam-ack",
            payload=(deployment_id, task_name, error),
            size_bytes=96,
        )

    def _on_rewire(self, message: Message) -> None:
        """Re-point a deployment's forwarding target (chain migration)."""
        deployment_id, new_forward = message.payload
        dep = self.deployments.get(deployment_id)
        if dep is not None:
            dep.forward_override = tuple(new_forward) if new_forward else None

    def _on_drain(self, message: Message) -> None:
        """Hand over a deployment: checkpoint + queued work, leave a tombstone.

        The exec process may be left suspended on the emptied queue; it is
        unreachable afterwards and carries no simulation events.
        """
        requester, deployment_id, new_home = message.payload
        dep = self.deployments.pop(deployment_id, None)
        if dep is None:
            self.peer.send(
                requester, "drain-reply", payload=(deployment_id, None, []), size_bytes=64
            )
            return
        if new_home is not None:
            self._tombstones[deployment_id] = tuple(new_home)
        leftovers = list(dep.queue.items) + list(dep.backlog)
        dep.queue.items.clear()
        dep.backlog.clear()
        state = dep.engine.checkpoint()
        size = 1024 + sum(
            sum(v.payload_nbytes() if hasattr(v, "payload_nbytes") else 64 for v in item[1])
            for item in leftovers
        )
        self.peer.send(
            requester,
            "drain-reply",
            payload=(deployment_id, state, leftovers),
            size_bytes=size,
        )

    def _on_resume(self, message: Message) -> None:
        """Receive migrated state + leftovers and start executing."""
        deployment_id, state, leftovers = message.payload
        dep = self.deployments.get(deployment_id)
        if dep is None:
            return
        if state:
            dep.engine.restore(state)
        merged = sorted(list(leftovers) + dep.backlog, key=lambda item: item[0])
        dep.backlog.clear()
        dep.paused = False
        for item in merged:
            dep.queue.put(item)
