"""One-call Consumer Grid assembly — the library's front door.

"To deploy the Consumer Grid, a user would need to have the Triana peer
installed locally."  :class:`ConsumerGrid` builds the full simulated
deployment in one line: the network, a discovery strategy, a module
repository ("downloaded from a pre-defined portal"), a controller, and a
fleet of volunteer workers running Triana service daemons.

Example
-------
>>> from repro import ConsumerGrid
>>> from tests.test_core_taskgraph import fig1_graph   # doctest: +SKIP
>>> grid = ConsumerGrid(n_workers=4, seed=42)          # doctest: +SKIP
>>> report = grid.run(graph, iterations=20)            # doctest: +SKIP
"""

from __future__ import annotations

from typing import Callable, Optional

from .core.registry import UnitRegistry, global_registry
from .core.taskgraph import TaskGraph
from .mobility.repository import ModuleRepository
from .mobility.sandbox import SandboxPolicy
from .observe import (
    FlightRecorder,
    HealthMonitor,
    TelemetrySampler,
    Tracer,
    default_detectors,
    write_metrics,
    write_trace,
)
from .p2p.discovery import (
    CentralIndexDiscovery,
    DiscoveryService,
    FloodingDiscovery,
    RendezvousDiscovery,
)
from .p2p.network import DSL_PROFILE, NodeProfile, SimNetwork
from .p2p.peer import Peer
from .resources.availability import AvailabilityModel
from .service.controller import RunReport, TrianaController
from .service.worker import TrianaService
from .simkernel import Simulator
from .transport import (
    RealtimeSimulator,
    SimTransport,
    TcpTransport,
    transport_names,
)

__all__ = ["ConsumerGrid"]


def _make_discovery(kind: str, query_window: float) -> DiscoveryService:
    if kind == "central":
        return CentralIndexDiscovery(query_window=query_window)
    if kind == "flooding":
        return FloodingDiscovery(query_window=query_window)
    if kind == "rendezvous":
        return RendezvousDiscovery(query_window=query_window)
    raise ValueError(f"unknown discovery kind {kind!r}")


class ConsumerGrid:
    """A complete simulated Consumer Grid deployment.

    Parameters
    ----------
    n_workers:
        Number of volunteer worker peers.
    seed:
        Simulation seed (full determinism).
    discovery:
        ``central`` | ``flooding`` | ``rendezvous``.
    worker_profile:
        Link/CPU profile for volunteers (default: 2003 DSL consumer).
    sandbox / cache_policy / worker_efficiency:
        Forwarded to each worker's :class:`TrianaService`.
    trace:
        Record spans/events/metrics from construction on (see
        :mod:`repro.observe` and docs/observability.md).
    tracer:
        Use a specific (caller-owned) tracer instead; implies ``trace``.
    telemetry:
        Enable the live telemetry sampler and health monitor (implies
        ``trace``): periodic grid snapshots every ``telemetry_interval``
        sim seconds, online anomaly detection, a ``health`` section on
        the run report, and a flight recorder for post-mortems.  Like
        tracing it is strictly passive — results are bit-identical.
    telemetry_interval / health_config:
        Sampler tick spacing and keyword overrides for
        :func:`~repro.observe.health.default_detectors`.
    module_replicas:
        Pre-seed each group's modules onto this many workers before
        deploying and let every worker cache serve as a cooperative
        replica (discovery-routed fetches, digest revalidation).  0 (the
        default) keeps the seed's repository-only protocol.
    module_chunk_bytes:
        Split package transfers larger than this into pipelined chunks;
        ``None`` ships each package as one message.
    cache_fetch_timeout:
        Per-fetch timeout of the worker module caches — raise it for
        experiments shipping multi-megabyte packages over consumer DSL.
    """

    def __init__(
        self,
        n_workers: int = 4,
        seed: int = 0,
        discovery: str = "central",
        worker_profile: Optional[NodeProfile] = None,
        controller_profile: Optional[NodeProfile] = None,
        registry: Optional[UnitRegistry] = None,
        sandbox_factory: Optional[Callable[[], SandboxPolicy]] = None,
        cache_policy: str = "on_demand",
        worker_efficiency: float = 1.0,
        query_window: float = 2.0,
        retry_timeout: float = 900.0,
        retry_interval: float = 300.0,
        jitter_fraction: float = 0.0,
        contention: bool = False,
        loss_fraction: float = 0.0,
        corrupt_fraction: float = 0.0,
        duplicate_fraction: float = 0.0,
        reorder_fraction: float = 0.0,
        heartbeat_interval: float = 60.0,
        suspect_after_missed: int = 3,
        backoff_base: Optional[float] = None,
        backoff_max: float = 120.0,
        speculation_threshold: float = 0.9,
        speculation_age: Optional[float] = None,
        fault_plan=None,
        trace: bool = False,
        tracer: Optional[Tracer] = None,
        telemetry: bool = False,
        telemetry_interval: float = 5.0,
        health_config: Optional[dict] = None,
        policy_registry=None,
        module_replicas: int = 0,
        module_chunk_bytes: Optional[int] = None,
        cache_fetch_timeout: float = 30.0,
        transport: str = "sim",
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if transport not in transport_names():
            raise ValueError(
                f"unknown transport {transport!r}; registered: "
                f"{', '.join(transport_names())}"
            )
        if tracer is None and (trace or telemetry):
            tracer = Tracer()
        if transport == "tcp":
            # Single-process loopback deployment: every peer still lives
            # in this process, but frames cross real sockets through the
            # canonical codec.  For grids spanning OS processes use
            # repro.deployment (which the CLI's --transport tcp drives).
            chaos = {
                "jitter_fraction": jitter_fraction,
                "contention": contention,
                "loss_fraction": loss_fraction,
                "corrupt_fraction": corrupt_fraction,
                "duplicate_fraction": duplicate_fraction,
                "reorder_fraction": reorder_fraction,
                "fault_plan": fault_plan,
            }
            bad = sorted(k for k, v in chaos.items() if v)
            if bad:
                raise ValueError(
                    "chaos modelling is simulation apparatus; not supported "
                    f"on the tcp transport: {', '.join(bad)}"
                )
            self.sim = RealtimeSimulator(seed=seed, tracer=tracer)
            self.transport = TcpTransport(self.sim)
            self.network = self.transport
        else:
            self.sim = Simulator(seed=seed, tracer=tracer)
            self.network = SimNetwork(
                self.sim,
                jitter_fraction=jitter_fraction,
                contention=contention,
                loss_fraction=loss_fraction,
                corrupt_fraction=corrupt_fraction,
                duplicate_fraction=duplicate_fraction,
                reorder_fraction=reorder_fraction,
            )
            # Peers speak through the adapter; chaos/telemetry tooling
            # keeps the raw SimNetwork handle (self.network).  The
            # adapter delegates, so both views share state.
            self.transport = SimTransport(self.network)
        if discovery not in self.transport.supported_discovery():
            raise ValueError(
                f"discovery {discovery!r} is not supported on the "
                f"{transport!r} transport "
                f"(supported: {', '.join(self.transport.supported_discovery())})"
            )
        self.discovery = _make_discovery(discovery, query_window)
        self.registry = registry if registry is not None else global_registry()

        # The portal: hosts the module repository and (for central
        # discovery) the advertisement index.
        self.portal = Peer("portal", self.transport, profile=controller_profile)
        self.discovery.attach(self.portal)
        self.repository = ModuleRepository(
            self.portal, self.registry, chunk_bytes=module_chunk_bytes
        )

        self.controller_peer = Peer(
            "controller", self.transport, profile=controller_profile
        )
        self.discovery.attach(self.controller_peer)
        self.controller = TrianaController(
            self.controller_peer,
            self.discovery,
            retry_timeout=retry_timeout,
            retry_interval=retry_interval,
            heartbeat_interval=heartbeat_interval,
            suspect_after_missed=suspect_after_missed,
            backoff_base=backoff_base,
            backoff_max=backoff_max,
            speculation_threshold=speculation_threshold,
            speculation_age=speculation_age,
            policy_registry=policy_registry,
            preseed_replicas=module_replicas,
        )

        if isinstance(self.discovery, CentralIndexDiscovery):
            self.discovery.set_index(self.portal)
        elif isinstance(self.discovery, RendezvousDiscovery):
            self.discovery.add_rendezvous(self.portal)

        self.workers: dict[str, TrianaService] = {}
        self.worker_peers: dict[str, Peer] = {}
        self.availability: dict[str, AvailabilityModel] = {}
        for i in range(n_workers):
            peer = Peer(f"worker-{i}", self.transport, profile=worker_profile or DSL_PROFILE)
            self.discovery.attach(peer)
            service = TrianaService(
                peer,
                repository_host="portal",
                sandbox=sandbox_factory() if sandbox_factory else SandboxPolicy(),
                cache_policy=cache_policy,
                efficiency=worker_efficiency,
                module_discovery=self.discovery if module_replicas > 0 else None,
                cache_revalidate="digest" if module_replicas > 0 else "full",
                cache_chunk_bytes=module_chunk_bytes,
                cache_fetch_timeout=cache_fetch_timeout,
            )
            self.discovery.publish(peer, service.advertisement())
            self.workers[peer.peer_id] = service
            self.worker_peers[peer.peer_id] = peer

        if isinstance(self.discovery, FloodingDiscovery):
            self.network.random_overlay(degree=4)
        self.sim.run()  # settle publishes

        # Chaos layer: scheduled *after* the settle so a plan's t=0 faults
        # cannot fire during assembly, before any run is in flight.
        self.fault_injector = None
        if fault_plan is not None:
            from .faults import FaultInjector

            peers = {
                "portal": self.portal,
                "controller": self.controller_peer,
                **self.worker_peers,
            }
            self.fault_injector = FaultInjector(
                self.sim, self.network, fault_plan, peers=peers
            ).schedule()

        # Live telemetry: installed last so its sources can read every
        # subsystem (including the fault injector) already in place.
        self.telemetry: Optional[TelemetrySampler] = None
        self.health: Optional[HealthMonitor] = None
        self.flight_recorder: Optional[FlightRecorder] = None
        if telemetry:
            self.enable_telemetry(
                interval=telemetry_interval, health_config=health_config
            )

    def enable_telemetry(
        self,
        interval: float = 5.0,
        health_config: Optional[dict] = None,
    ) -> TelemetrySampler:
        """Install the telemetry sampler, health monitor and flight recorder.

        Idempotent; callable post-construction too (e.g. from tooling
        that builds a grid first).  Enables tracing if it was off —
        liveness is snapshotted so utilization accounting stays right.
        """
        if self.telemetry is not None:
            return self.telemetry
        if not self.sim.tracer.enabled:
            self.sim.install_tracer(Tracer())
            self.network.trace_liveness_snapshot()
        sampler = TelemetrySampler(interval=interval)
        self.sim.install_sampler(sampler)
        recorder = FlightRecorder()
        recorder.attach(self.sim.tracer)
        monitor = HealthMonitor(
            detectors=default_detectors(**(health_config or {}))
        )
        monitor.attach(self.sim.tracer)
        sampler.attach_monitor(monitor)

        sampler.add_source("net", self.network.telemetry_sample)
        workers = self.workers
        def _workers_sample():
            return {
                wid: svc.telemetry_sample()
                for wid, svc in sorted(workers.items())
            }
        sampler.add_source("workers", _workers_sample)
        controller = self.controller
        sampler.add_source(
            "detector",
            lambda: controller.detector.telemetry_sample(self.sim.now),
        )
        sampler.add_source(
            "reputation", lambda: controller.reputation.summary()
        )
        if self.fault_injector is not None:
            sampler.add_source("faults", self.fault_injector.telemetry_sample)
        self.telemetry = sampler
        self.health = monitor
        self.flight_recorder = recorder
        return sampler

    def add_cluster_worker(
        self,
        name: str,
        nodes: int = 4,
        cores_per_node: int = 2,
        profile: Optional[NodeProfile] = None,
        efficiency: float = 1.0,
    ):
        """Add a peer that fronts a GRAM-managed cluster (§3.1).

        Returns the :class:`~repro.service.cluster.ClusterTrianaService`.
        """
        from .resources.gram import BatchQueue
        from .service.cluster import ClusterTrianaService

        peer = Peer(name, self.transport, profile=profile or DSL_PROFILE)
        self.discovery.attach(peer)
        queue = BatchQueue(
            self.sim,
            nodes=nodes,
            cores_per_node=cores_per_node,
            cpu_flops=peer.profile.cpu_flops * efficiency,
        )
        service = ClusterTrianaService(peer, repository_host="portal", queue=queue)
        self.discovery.publish(peer, service.advertisement())
        self.workers[name] = service
        self.worker_peers[name] = peer
        self.sim.run()
        return service

    # -- volunteer dynamics -----------------------------------------------------
    def install_availability(
        self, factory: Callable[[str], AvailabilityModel]
    ) -> None:
        """Give every worker an availability model (churn, screensaver...)."""
        for peer_id, peer in self.worker_peers.items():
            model = factory(peer_id)
            model.install(peer)
            self.availability[peer_id] = model

    # -- running applications ------------------------------------------------------
    def discover_workers(self, min_cpu_flops: float = 0.0) -> list[str]:
        """Synchronous worker discovery (runs the sim until the reply)."""
        ev = self.controller.discover_workers(min_cpu_flops)
        return self.sim.run(until=ev)

    def run(
        self,
        graph: TaskGraph,
        iterations: int,
        probes: tuple[str, ...] = (),
        workers: Optional[list[str]] = None,
        run_until: Optional[float] = None,
        dispatch: str = "round_robin",
        verification: str = "none",
        trace_out: Optional[str] = None,
        metrics_out: Optional[str] = None,
        telemetry_out: Optional[str] = None,
    ) -> RunReport:
        """Deploy and execute a task graph; blocks until completion.

        ``workers`` defaults to every discovered worker; ``dispatch``
        selects the farm dealing policy (any name from
        :func:`~repro.service.placement.dispatch_policy_names`, e.g.
        ``round_robin`` | ``weighted``).  Group *distribution* policies
        come from the graph's ``<group policy="...">`` attributes and
        resolve against the controller's
        :class:`~repro.service.policies.PolicyRegistry` — pass
        ``policy_registry`` at construction to inject custom ones.
        ``verification`` turns on result-integrity checking (``none`` |
        ``replicate-<k>`` | ``spot-<p>``, see
        :mod:`repro.service.integrity`) — the defence against the chaos
        layer's saboteur faults.
        ``trace_out`` writes the run's trace to that path afterwards
        (``.json`` → Chrome/Perfetto, ``.jsonl`` → event log,
        ``.txt``/``.log`` → text timeline); ``metrics_out`` writes the
        run's :class:`~repro.observe.metrics.MetricsRegistry` snapshot
        as JSON.  Either switches tracing on for the run if it wasn't
        already.  ``telemetry_out`` writes the sampler's buffered rows
        as JSONL (requires ``telemetry=True`` at construction, or a
        prior :meth:`enable_telemetry` call).
        """
        if (trace_out is not None or metrics_out is not None) and not self.sim.tracer.enabled:
            # Late opt-in: swap the recording tracer in before discovery
            # so the run's p2p/mobility/service spans are all captured.
            self.sim.install_tracer(Tracer())
            # Liveness transitions before the install were unrecorded;
            # seed them so already-offline peers count as unavailable.
            self.network.trace_liveness_snapshot()
        if workers is None:
            workers = self.discover_workers()
        done = self.controller.run_distributed(
            graph, iterations, workers, probes, dispatch=dispatch,
            verification=verification,
        )
        if run_until is not None:
            self.sim.run(until=run_until)
            if not done.processed:
                raise TimeoutError(
                    f"run did not finish by t={run_until}; "
                    "increase the horizon or check churn settings"
                )
            report = done.value
        else:
            report = self.sim.run(until=done)
        if self.fault_injector is not None:
            report.recovery["faults"] = self.fault_injector.summary()
        if self.health is not None:
            report.health = {
                "sampler": self.telemetry.summary(),
                **self.health.summary(),
            }
        if trace_out is not None:
            write_trace(self.sim.tracer, trace_out)
        if metrics_out is not None:
            write_metrics(self.sim.tracer, metrics_out)
        if telemetry_out is not None:
            if self.telemetry is None:
                raise ValueError(
                    "telemetry_out requires ConsumerGrid(telemetry=True) "
                    "or a prior enable_telemetry() call"
                )
            self.telemetry.export_jsonl(telemetry_out)
        return report
