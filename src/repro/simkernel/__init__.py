"""Deterministic discrete-event simulation kernel (system S1).

Public surface::

    from repro.simkernel import Simulator, Store, Resource, Interrupt

The kernel underpins the simulated P2P network (:mod:`repro.p2p`), the
volunteer-availability models (:mod:`repro.resources`) and the batch
gateway.  See ``DESIGN.md`` §2.
"""

from .errors import (
    EventStateError,
    Interrupt,
    ProcessError,
    SimError,
    SimTimeError,
)
from .queues import CalendarQueue, Resource, Store
from .rng import RngRegistry, stable_hash
from .sim import AllOf, AnyOf, Event, Process, Simulator, Timeout

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Event",
    "EventStateError",
    "Interrupt",
    "Process",
    "ProcessError",
    "Resource",
    "RngRegistry",
    "SimError",
    "SimTimeError",
    "Simulator",
    "Store",
    "Timeout",
    "stable_hash",
]
