"""A deterministic discrete-event simulation kernel.

This module is the foundation every simulated subsystem (the P2P network,
volunteer churn, batch queues) is built on.  It provides:

* :class:`Simulator` — the event loop with a floating-point clock,
* :class:`Event` — one-shot triggerable events carrying a value or error,
* :class:`Timeout` — an event that fires after a simulated delay,
* :class:`Process` — generator-based coroutines that ``yield`` events,
* :class:`AnyOf` / :class:`AllOf` — composite wait conditions.

The design follows the classic SimPy shape but is self-contained (no
third-party dependency) and strictly deterministic: simultaneous events
fire in schedule (FIFO) order.  Pending events live in a
:class:`~repro.simkernel.queues.CalendarQueue` — a bucket-per-timestamp
calendar whose pop order is bit-identical to the previous global heap's
``(time, seq)`` order; see ``docs/performance.md`` for the complexity
model and the determinism contract.

All event classes carry ``__slots__``: simulations at swarm scale
allocate millions of events, and slotted instances skip the per-object
``__dict__`` (smaller, faster to create, lighter on the GC).  Subclasses
must therefore declare their own ``__slots__`` too — adding ad-hoc
attributes to events is not supported.

Example
-------
>>> sim = Simulator()
>>> def hello(sim, log):
...     yield sim.timeout(5.0)
...     log.append(sim.now)
>>> log = []
>>> _ = sim.process(hello(sim, log))
>>> sim.run()
>>> log
[5.0]
"""

from __future__ import annotations

from collections.abc import Generator, Iterable
from typing import Any, Callable, Optional

from ..observe.tracer import NullTracer
from .errors import EventStateError, Interrupt, ProcessError, SimTimeError
from .rng import RngRegistry

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Simulator",
]

# Event lifecycle states.
_PENDING = 0  # not yet triggered
_TRIGGERED = 1  # value set, callbacks scheduled but not yet run
_PROCESSED = 2  # callbacks have run


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` or :meth:`fail`
    triggers it exactly once, after which its callbacks run at the current
    simulation time.
    """

    __slots__ = ("sim", "callbacks", "_state", "_value", "_exc")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[["Event"], None]] = []
        self._state = _PENDING
        self._value: Any = None
        self._exc: Optional[BaseException] = None

    # -- state inspection ---------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (or error)."""
        return self._state != _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._state == _PROCESSED

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return self.triggered and self._exc is None

    @property
    def value(self) -> Any:
        """The success value, or raise the stored failure."""
        if not self.triggered:
            raise EventStateError("event value read before trigger")
        if self._exc is not None:
            raise self._exc
        return self._value

    # -- triggering ---------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != _PENDING:
            raise EventStateError(f"{self!r} already triggered")
        self._value = value
        self._state = _TRIGGERED
        # Hot path: triggering at the current time is the single most
        # frequent kernel operation, so push straight into the queue's
        # head bucket rather than going through _schedule().
        sim = self.sim
        sim._queue.push(sim.now, self)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event with an exception to be raised in waiters."""
        if not isinstance(exc, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._state != _PENDING:
            raise EventStateError(f"{self!r} already triggered")
        self._exc = exc
        self._state = _TRIGGERED
        sim = self.sim
        sim._queue.push(sim.now, self)
        return self

    def _run_callbacks(self) -> None:
        self._state = _PROCESSED
        callbacks, self.callbacks = self.callbacks, []
        for cb in callbacks:
            cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = {_PENDING: "pending", _TRIGGERED: "triggered", _PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at t={self.sim.now}>"


class Timeout(Event):
    """An event that succeeds automatically after ``delay`` sim-time units."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if not delay >= 0:
            # Catches negative delays *and* NaN (which compares False
            # both ways and would otherwise corrupt the queue order).
            raise SimTimeError(f"negative or NaN timeout delay {delay!r}")
        super().__init__(sim)
        self.delay = float(delay)
        self._value = value
        self._state = _TRIGGERED
        sim._queue.push(sim.now + self.delay, self)


class _Initialize(Event):
    """Internal event used to start a process on the next step."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        super().__init__(sim)
        self._value = None
        self._state = _TRIGGERED
        self.callbacks.append(process._resume)
        sim._queue.push(sim.now, self)


class Process(Event):
    """A generator-based simulated process.

    The wrapped generator yields :class:`Event` instances; the process
    suspends until each yielded event triggers, then receives the event's
    value via ``send`` (or its exception via ``throw``).  The process is
    itself an event that triggers when the generator returns (value = the
    ``StopIteration`` value) or raises.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, sim: "Simulator", generator: Generator, name: str | None = None):
        if not isinstance(generator, Generator):
            raise ProcessError(
                f"Process requires a generator, got {type(generator).__name__}"
            )
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Optional[Event] = None
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        waiting on an event detaches it from that event.
        """
        if self.triggered:
            raise ProcessError(f"cannot interrupt finished process {self.name!r}")
        # Detach from whatever we were waiting on so that the original
        # event's trigger does not also resume us later.
        if self._target is not None and self._resume in self._target.callbacks:
            self._target.callbacks.remove(self._resume)
        self._target = None
        interrupt_ev = Event(self.sim)
        interrupt_ev.callbacks.append(self._resume)
        interrupt_ev.fail(Interrupt(cause))

    def _resume(self, event: Event) -> None:
        self._target = None
        try:
            if event._exc is not None:
                next_ev = self._generator.throw(event._exc)
            else:
                next_ev = self._generator.send(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process as a failure.
            self.fail(exc)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(next_ev, Event):
            err = ProcessError(
                f"process {self.name!r} yielded {next_ev!r}; processes must "
                "yield Event instances (e.g. sim.timeout(...))"
            )
            self._generator.close()
            self.fail(err)
            return
        if next_ev.sim is not self.sim:
            self._generator.close()
            self.fail(ProcessError("yielded event belongs to a different Simulator"))
            return
        self._target = next_ev
        if next_ev.processed:
            # Already-processed events resume the process on the next step.
            redo = Event(self.sim)
            redo.callbacks.append(self._resume)
            if next_ev._exc is not None:
                redo.fail(next_ev._exc)
            else:
                redo.succeed(next_ev._value)
        else:
            next_ev.callbacks.append(self._resume)


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_done")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise ProcessError("condition mixes events from different simulators")
        # Events whose callbacks have fired (i.e. actually happened in sim
        # time).  A Timeout is "triggered" from construction but has not
        # happened yet, so triggered-ness alone is not a usable signal.
        self._done: set[Event] = set()
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                self._observe(ev)
            else:
                ev.callbacks.append(self._observe)

    def _observe(self, event: Event) -> None:
        if self.triggered:
            return
        if event._exc is not None:
            self.fail(event._exc)
            return
        self._done.add(event)
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - overridden
        raise NotImplementedError

    def _collect(self) -> dict[Event, Any]:
        return {ev: ev._value for ev in self.events if ev in self._done}


class AnyOf(_Condition):
    """Triggers when *any* constituent event succeeds (or one fails)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return bool(self._done)


class AllOf(_Condition):
    """Triggers when *all* constituent events have succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return len(self._done) == len(self.events)


class Simulator:
    """The discrete-event loop: a clock plus an ordered event queue.

    Parameters
    ----------
    seed:
        Root seed for the simulator's :class:`RngRegistry`; all stochastic
        components should draw via :meth:`rng`.
    tracer:
        Optional :class:`~repro.observe.tracer.Tracer`.  Defaults to a
        fresh :class:`~repro.observe.tracer.NullTracer`, which records
        nothing but still routes progress-view subscriptions.  Tracing
        is passive: it never schedules events or consumes randomness, so
        traced and untraced runs are bit-identical.
    """

    def __init__(self, seed: int = 0, tracer=None):
        self.now: float = 0.0
        self._queue = CalendarQueue()
        self._rngs = RngRegistry(seed)
        self.events_executed = 0
        self.tracer = tracer if tracer is not None else NullTracer()
        self.tracer.attach_clock(lambda: self.now)

    def install_tracer(self, tracer) -> None:
        """Swap the tracer in, keeping existing progress subscriptions."""
        tracer.attach_clock(lambda: self.now)
        tracer._subs.extend(self.tracer._subs)
        if tracer._sampler is None:
            tracer._sampler = self.tracer._sampler
        if tracer._recorder is None:
            tracer._recorder = self.tracer._recorder
        self.tracer = tracer

    def install_sampler(self, sampler) -> None:
        """Attach a telemetry sampler, enabling tracing if necessary.

        Sampling rides the traced per-event hook (``Tracer.on_step``),
        so a recording :class:`~repro.observe.tracer.Tracer` is required
        — one is installed automatically when the simulator still runs
        its default :class:`~repro.observe.tracer.NullTracer`.  The
        sampler's tick grid is anchored at the current clock.
        """
        if not self.tracer.enabled:
            from ..observe.tracer import Tracer

            self.install_tracer(Tracer())
        sampler.bind(self)
        self.tracer.attach_sampler(sampler)

    # -- randomness ---------------------------------------------------------
    def rng(self, name: str):
        """Named deterministic random stream (see :class:`RngRegistry`)."""
        return self._rngs.stream(name)

    @property
    def seed(self) -> int:
        return self._rngs.seed

    # -- event construction --------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event; trigger it with ``succeed``/``fail``."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event that fires ``delay`` units of simulated time from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str | None = None) -> Process:
        """Start a process from a generator; returns the Process event."""
        return Process(self, generator, name=name)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def call_at(self, when: float, fn: Callable[[], Any]) -> Event:
        """Run a plain callable at absolute simulated time ``when``."""
        if when < self.now:
            raise SimTimeError(f"call_at({when}) is in the past (now={self.now})")
        ev = Timeout(self, when - self.now)
        ev.callbacks.append(lambda _ev: fn())
        return ev

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        """Enqueue ``event`` to fire ``delay`` sim seconds from now.

        Raises :class:`~repro.simkernel.errors.SimTimeError` (a
        :class:`~repro.simkernel.errors.SimError`) for negative *or NaN*
        delays — NaN compares false against everything, so a plain
        ``delay < 0`` check let it through silently and corrupted the
        queue order.
        """
        if delay == 0.0:
            self._queue.push(self.now, event)
        elif delay > 0.0:
            self._queue.push(self.now + delay, event)
        else:
            raise SimTimeError(f"negative or NaN delay {delay!r}")

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if queue is empty."""
        return self._queue.peek()

    def step(self) -> None:
        """Advance the clock to the next event and run its callbacks."""
        when, event = self._queue.pop()
        self.now = when
        self.events_executed += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.on_step(self)
        event._run_callbacks()

    def run(self, until: float | Event | None = None) -> Any:
        """Run until the queue drains, a time is reached, or an event fires.

        ``until`` may be ``None`` (drain), a number (absolute sim time), or
        an :class:`Event` — in the last case the event's value is returned
        (its failure re-raised).
        """
        tracer = self.tracer
        if not tracer.enabled:
            return self._run(until)
        with tracer.span("sim.run", category="simkernel", track="sim"):
            return self._run(until)

    def _run(self, until: float | Event | None) -> Any:
        # The three drain loops below are the kernel's hottest code;
        # they inline step() with the queue pop and tracer check hoisted
        # into locals.  Behaviour is identical to calling step() in a
        # loop (the property tests and BENCH baselines pin this down).
        queue = self._queue
        pop = queue.pop
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not queue._len:
                    raise ProcessError(
                        "simulation queue drained before the awaited event fired"
                    )
                self.step()
            return stop.value
        if until is not None:
            horizon = float(until)
            if horizon < self.now:
                raise SimTimeError(f"run(until={horizon}) is in the past")
            while queue._len and queue.peek() <= horizon:
                when, event = pop()
                self.now = when
                self.events_executed += 1
                tracer = self.tracer
                if tracer.enabled:
                    tracer.on_step(self)
                event._run_callbacks()
            self.now = max(self.now, horizon)
            return None
        while queue._len:
            when, event = pop()
            self.now = when
            self.events_executed += 1
            tracer = self.tracer
            if tracer.enabled:
                tracer.on_step(self)
            event._run_callbacks()
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self.now}, pending={len(self._queue)})"


# Deliberately at module bottom: queues.py needs Event/Simulator above,
# and Simulator.__init__ only dereferences CalendarQueue at call time.
from .queues import CalendarQueue  # noqa: E402
