"""Deterministic named random-number streams.

Every stochastic component of the simulator draws from a stream obtained by
name from a :class:`RngRegistry`.  Streams are derived from the registry's
root seed and the stream name only, so adding a new consumer of randomness
never perturbs the draws seen by existing consumers — a property the
reproducibility tests rely on.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngRegistry", "stable_hash"]


def stable_hash(text: str) -> int:
    """Return a platform-stable 64-bit hash of ``text``.

    Python's builtin ``hash`` is salted per-process; benchmarks and tests
    need stream derivation that is identical across runs and machines.
    """
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngRegistry:
    """A factory of independent, reproducible ``numpy`` generators.

    Parameters
    ----------
    seed:
        Root seed for the whole simulation.  Two registries built with the
        same seed hand out identical streams for identical names.
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object, so consumers share draw state within one registry.
        """
        if name not in self._streams:
            ss = np.random.SeedSequence([self._seed, stable_hash(name)])
            self._streams[name] = np.random.default_rng(ss)
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name``, ignoring cached state.

        Useful when a test wants the stream's initial draws regardless of
        what other code already consumed.
        """
        ss = np.random.SeedSequence([self._seed, stable_hash(name)])
        return np.random.default_rng(ss)

    def names(self) -> list[str]:
        """Names of all streams created so far (in creation order)."""
        return list(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self._seed}, streams={len(self._streams)})"
