"""Exception hierarchy for the simulation kernel."""

from __future__ import annotations


class SimError(Exception):
    """Base class for all simulation-kernel errors."""


class SimTimeError(SimError):
    """An event was scheduled in the past or with a negative delay."""


class ProcessError(SimError):
    """A simulated process misbehaved (bad yield, interaction after exit)."""


class EventStateError(SimError):
    """An event was triggered twice or waited on after consumption."""


class Interrupt(SimError):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.simkernel.sim.Process.interrupt`.
    """

    def __init__(self, cause: object = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause
