"""Waitable queues and capacity resources for simulated processes.

:class:`Store` is an unbounded-or-bounded FIFO of arbitrary items;
:class:`Resource` models a pool of identical slots (e.g. CPU cores of a
batch node).  Both hand out :class:`~repro.simkernel.sim.Event` objects so
processes can ``yield`` on them.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .errors import ProcessError
from .sim import Event, Simulator

__all__ = ["Store", "Resource"]


class Store:
    """A FIFO store that processes can block on.

    ``put`` succeeds immediately unless the store is full (bounded
    ``capacity``); ``get`` succeeds immediately if an item is available,
    otherwise when the next ``put`` arrives.  Fairness is strict FIFO for
    both sides, which keeps simulations deterministic.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("Store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Return an event that succeeds once ``item`` is stored."""
        ev = Event(self.sim)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Return an event that succeeds with the next item."""
        ev = Event(self.sim)
        if self.items:
            item = self.items.popleft()
            ev.succeed(item)
            self._drain_putters()
        else:
            self._getters.append(ev)
        return ev

    def _drain_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            put_ev, item = self._putters.popleft()
            self.items.append(item)
            put_ev.succeed(None)


class Resource:
    """``capacity`` identical slots; processes request and release them.

    Typical use inside a process::

        req = resource.request()
        yield req
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use: set[Event] = set()
        self._waiting: deque[Event] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._in_use)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that succeeds when a slot is granted."""
        ev = Event(self.sim)
        if len(self._in_use) < self.capacity:
            self._in_use.add(ev)
            ev.succeed(ev)
        else:
            self._waiting.append(ev)
        return ev

    def release(self, request: Event) -> None:
        """Release a previously granted slot."""
        if request in self._in_use:
            self._in_use.remove(request)
        elif request in self._waiting:
            self._waiting.remove(request)
            return
        else:
            raise ProcessError("release() of a request that holds no slot")
        if self._waiting:
            nxt = self._waiting.popleft()
            self._in_use.add(nxt)
            nxt.succeed(nxt)
