"""Event and waitable queues for the simulation kernel.

Three structures live here:

* :class:`CalendarQueue` — the kernel's pending-event queue: a
  bucket-per-timestamp calendar replacing the global binary heap.  This
  is the hot path of every simulation (see ``docs/performance.md``).
* :class:`Store` — an unbounded-or-bounded FIFO of arbitrary items;
* :class:`Resource` — a pool of identical slots (e.g. CPU cores of a
  batch node).

``Store`` and ``Resource`` hand out
:class:`~repro.simkernel.sim.Event` objects so processes can ``yield``
on them; :class:`CalendarQueue` is consumed by
:class:`~repro.simkernel.sim.Simulator` itself.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any

from .errors import ProcessError

__all__ = ["CalendarQueue", "Store", "Resource"]

_INF = float("inf")

#: Missing-bucket sentinel for :meth:`CalendarQueue.push` (``None`` is a
#: legal item).
_EMPTY = object()


class CalendarQueue:
    """Bucket-per-timestamp event calendar with exact heapq-compatible order.

    The kernel's previous queue was one global binary heap of
    ``(time, seq, event)`` tuples: every push and pop paid
    ``O(log n)`` tuple comparisons against the *whole* pending set.
    Discrete-event workloads are extremely tie-heavy — most events are
    scheduled with delay 0 at the current clock, and timer rounds
    (heartbeats, gossip, retries) land whole cohorts on shared
    timestamps — so the heap mostly compared equal times and fell
    through to the sequence number.

    This queue exploits exactly that structure:

    * **head bucket** — a plain ``deque`` of events at the *current*
      timestamp.  Scheduling at the current time is one ``append``;
      popping is one ``popleft``.  O(1), no comparisons, no tuples.
    * **calendar** — a dict mapping each *distinct future* timestamp to
      its own FIFO ``deque``, plus a small binary heap of those distinct
      timestamps.  A push to an existing timestamp is one dict lookup +
      ``append``; only the *first* event at a new timestamp pays a heap
      push, and the heap holds one entry per distinct pending time, not
      one per event.

    Determinism contract (load-bearing — the BENCH baselines pin it):

    1. Events pop in nondecreasing timestamp order.
    2. Events with *equal* timestamps pop in insertion (schedule) order.

    The old heap achieved (2) via the monotone sequence number; here it
    falls out of deque FIFO order, because the kernel's sequence of
    ``push`` calls is itself the schedule order.  Property tests
    (``tests/test_simkernel_queues.py``) replay randomized tie-heavy
    workloads through both this queue and a reference heap and assert
    bit-identical pop order.

    Invariants: pushed times are ``>= `` the last popped time (the
    simulator enforces non-negative delays), the head bucket holds
    exactly the events at ``_head_time``, and ``_times`` holds exactly
    one entry per calendar dict key.
    """

    __slots__ = ("_head", "_head_time", "_buckets", "_times", "_len")

    def __init__(self) -> None:
        self._head: deque = deque()  # events at _head_time, FIFO
        self._head_time: float = 0.0  # timestamp of the head bucket
        self._buckets: dict[float, deque] = {}  # future time -> FIFO
        self._times: list[float] = []  # heap of distinct future times
        self._len = 0

    def push(self, time: float, item: Any) -> None:
        """Enqueue ``item`` at ``time`` (must be >= the last popped time).

        Single-occupant future timestamps store the item bare in the
        calendar dict; a FIFO ``deque`` is only materialised when a
        second item lands on the same time.  This keeps the common
        distinct-timestamp push allocation-free, at the (documented)
        cost that items must not themselves be ``deque`` instances —
        the kernel only ever enqueues :class:`~repro.simkernel.sim.Event`
        objects.
        """
        if time == self._head_time:
            self._head.append(item)
        else:
            buckets = self._buckets
            bucket = buckets.get(time, _EMPTY)
            if bucket is _EMPTY:
                buckets[time] = item
                heappush(self._times, time)
            elif type(bucket) is deque:
                bucket.append(item)
            else:
                buckets[time] = deque((bucket, item))
        self._len += 1

    def pop(self) -> tuple[float, Any]:
        """Dequeue the earliest item; FIFO among equal times.

        Raises ``IndexError`` when empty (matching ``heapq.heappop``).
        """
        head = self._head
        if not head:
            # Advance the calendar: the earliest future timestamp
            # becomes the new head bucket.
            when = heappop(self._times)
            bucket = self._buckets.pop(when)
            self._head_time = when
            self._len -= 1
            if type(bucket) is deque:
                self._head = bucket
                return when, bucket.popleft()
            # Bare single occupant: the head bucket stays empty (later
            # same-time pushes will append to it).
            return when, bucket
        self._len -= 1
        return self._head_time, head.popleft()

    def peek(self) -> float:
        """Earliest pending timestamp, or ``inf`` when empty."""
        if self._head:
            return self._head_time
        return self._times[0] if self._times else _INF

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CalendarQueue(len={self._len}, head_t={self._head_time}, "
            f"future_times={len(self._times)})"
        )


# Imported *after* CalendarQueue so the sim <-> queues cycle resolves in
# either import order: sim.py imports CalendarQueue at its module bottom
# (once Event/Simulator exist), and by the time execution reaches this
# line CalendarQueue is already bound on this module.
from .sim import Event, Simulator  # noqa: E402


class Store:
    """A FIFO store that processes can block on.

    ``put`` succeeds immediately unless the store is full (bounded
    ``capacity``); ``get`` succeeds immediately if an item is available,
    otherwise when the next ``put`` arrives.  Fairness is strict FIFO for
    both sides, which keeps simulations deterministic.
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError("Store capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: Any) -> Event:
        """Return an event that succeeds once ``item`` is stored."""
        ev = Event(self.sim)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            ev.succeed(None)
        elif len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed(None)
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Return an event that succeeds with the next item."""
        ev = Event(self.sim)
        if self.items:
            item = self.items.popleft()
            ev.succeed(item)
            self._drain_putters()
        else:
            self._getters.append(ev)
        return ev

    def _drain_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            put_ev, item = self._putters.popleft()
            self.items.append(item)
            put_ev.succeed(None)


class Resource:
    """``capacity`` identical slots; processes request and release them.

    Typical use inside a process::

        req = resource.request()
        yield req
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release(req)
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError("Resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use: set[Event] = set()
        self._waiting: deque[Event] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._in_use)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Event:
        """Return an event that succeeds when a slot is granted."""
        ev = Event(self.sim)
        if len(self._in_use) < self.capacity:
            self._in_use.add(ev)
            ev.succeed(ev)
        else:
            self._waiting.append(ev)
        return ev

    def release(self, request: Event) -> None:
        """Release a previously granted slot."""
        if request in self._in_use:
            self._in_use.remove(request)
        elif request in self._waiting:
            self._waiting.remove(request)
            return
        else:
            raise ProcessError("release() of a request that holds no slot")
        if self._waiting:
            nxt = self._waiting.popleft()
            self._in_use.add(nxt)
            nxt.succeed(nxt)
