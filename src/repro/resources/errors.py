"""Exception hierarchy for the resource substrate."""

from __future__ import annotations


class ResourceError(Exception):
    """Base class for resource-layer errors."""


class AuthenticationError(ResourceError):
    """A credential was missing, expired, or signed by an untrusted CA."""


class QueueError(ResourceError):
    """Batch queue misuse (bad job spec, unknown job...)."""
