"""Resource substrate (system S8): hosts, volunteers, batch gateways, accounts.

* :class:`ComputeHost` — flops → simulated seconds on a host profile
* availability models — :class:`AlwaysOn`, :class:`PoissonChurn`,
  :class:`ScreensaverCycle` (the volunteer dynamics of §3.7)
* :class:`BatchQueue` / :class:`GramGateway` — the Globus-GRAM cluster path
* account managers — Globus-style per-user accounts vs the Triana virtual
  account with billing (§2)
"""

from .accounts import (
    CertificateAuthority,
    Credential,
    GlobusAccountManager,
    UsageRecord,
    VirtualAccountManager,
)
from .availability import (
    AlwaysOn,
    AvailabilityModel,
    AvailabilityStats,
    PoissonChurn,
    ScreensaverCycle,
    ScriptedAvailability,
    fleet_availability,
)
from .errors import AuthenticationError, QueueError, ResourceError
from .gram import BatchQueue, GramGateway, JobSpec
from .host import ComputeHost, HostStats

__all__ = [
    "AlwaysOn",
    "AuthenticationError",
    "AvailabilityModel",
    "AvailabilityStats",
    "BatchQueue",
    "CertificateAuthority",
    "ComputeHost",
    "Credential",
    "GlobusAccountManager",
    "GramGateway",
    "HostStats",
    "JobSpec",
    "PoissonChurn",
    "QueueError",
    "ResourceError",
    "ScreensaverCycle",
    "ScriptedAvailability",
    "UsageRecord",
    "VirtualAccountManager",
    "fleet_availability",
]
