"""Compute-host execution model.

The second execution plane of DESIGN.md §5: grid-scale experiments do not
*run* the five-hour matched-filter chunks, they *account* for them.  A
:class:`ComputeHost` turns modelled flops into simulated seconds at the
host's CPU speed, serialising work over its cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..p2p.network import NodeProfile
from ..simkernel import Event, Resource, Simulator
from .errors import ResourceError

__all__ = ["ComputeHost", "HostStats"]


@dataclass
class HostStats:
    jobs_run: int = 0
    busy_seconds: float = 0.0
    flops_done: float = 0.0


class ComputeHost:
    """One machine's CPU, as seen by the execution cost model."""

    def __init__(
        self,
        sim: Simulator,
        profile: NodeProfile | None = None,
        cores: int = 1,
        efficiency: float = 1.0,
    ):
        if cores < 1:
            raise ResourceError("cores must be >= 1")
        if not 0 < efficiency <= 1.0:
            raise ResourceError("efficiency must be in (0, 1]")
        self.sim = sim
        self.profile = profile or NodeProfile()
        self.cores = Resource(sim, capacity=cores)
        self.efficiency = efficiency
        self.stats = HostStats()

    def duration_of(self, flops: float) -> float:
        """Seconds one core needs for ``flops`` of work."""
        if flops < 0:
            raise ResourceError("flops must be >= 0")
        return flops / (self.profile.cpu_flops * self.efficiency)

    def run(self, flops: float) -> Event:
        """Execute work; returns the completion event (value = duration)."""
        duration = self.duration_of(flops)

        def job(sim: Simulator):
            req = self.cores.request()
            yield req
            try:
                yield sim.timeout(duration)
            finally:
                self.cores.release(req)
            self.stats.jobs_run += 1
            self.stats.busy_seconds += duration
            self.stats.flops_done += flops
            return duration

        return self.sim.process(job(self.sim), name="compute-job")

    @property
    def utilisation_possible(self) -> float:
        """Busy-seconds so far divided by elapsed wall-clock × cores."""
        if self.sim.now == 0:
            return 0.0
        return self.stats.busy_seconds / (self.sim.now * self.cores.capacity)
