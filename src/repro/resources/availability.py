"""Volunteer availability models (the consumer in the Consumer Grid).

§3.7: "make user's CPU available when their workstation is idle i.e. when
the screen saver turns on" — and Case 2 lists the downtime sources the
sizing must absorb: "connection lost, user intervenes, computational
bandwidth not reached".

Three models share one interface: ``install(peer)`` spawns a simkernel
process that toggles the peer on/off and invokes registered listeners.
All randomness comes from named simulator streams, so a seed fully
determines every session pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..p2p.peer import Peer
from ..simkernel import Simulator
from .errors import ResourceError

__all__ = [
    "AvailabilityStats",
    "AvailabilityModel",
    "AlwaysOn",
    "PoissonChurn",
    "ScreensaverCycle",
    "ScriptedAvailability",
]


@dataclass
class AvailabilityStats:
    sessions: int = 0
    online_seconds: float = 0.0
    offline_seconds: float = 0.0

    @property
    def availability(self) -> float:
        total = self.online_seconds + self.offline_seconds
        return self.online_seconds / total if total > 0 else 1.0


class AvailabilityModel:
    """Base class: drives one peer's liveness and notifies listeners."""

    def __init__(self):
        self.stats = AvailabilityStats()
        self._on_down: list[Callable[[Peer], None]] = []
        self._on_up: list[Callable[[Peer], None]] = []

    def on_down(self, fn: Callable[[Peer], None]) -> None:
        """Register a churn listener (the controller migrates work here)."""
        self._on_down.append(fn)

    def on_up(self, fn: Callable[[Peer], None]) -> None:
        self._on_up.append(fn)

    def _go_down(self, peer: Peer) -> None:
        peer.go_offline()
        for fn in self._on_down:
            fn(peer)

    def _go_up(self, peer: Peer) -> None:
        peer.go_online()
        self.stats.sessions += 1
        for fn in self._on_up:
            fn(peer)

    def install(self, peer: Peer) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def expected_availability(self) -> float:  # pragma: no cover - overridden
        """Long-run fraction of time the peer is online."""
        raise NotImplementedError


class AlwaysOn(AvailabilityModel):
    """A dedicated machine: never churns (the paper's '20 PCs' baseline)."""

    def install(self, peer: Peer) -> None:
        self.stats.sessions += 1

    def expected_availability(self) -> float:
        return 1.0


class PoissonChurn(AvailabilityModel):
    """Exponential on/off churn ("connection lost, user intervenes").

    Parameters
    ----------
    mean_uptime / mean_downtime:
        Means of the exponential session and gap lengths, seconds.
    """

    def __init__(self, mean_uptime: float, mean_downtime: float, stream: str = "churn"):
        super().__init__()
        if mean_uptime <= 0 or mean_downtime <= 0:
            raise ResourceError("mean up/down times must be positive")
        self.mean_uptime = mean_uptime
        self.mean_downtime = mean_downtime
        self.stream = stream

    def expected_availability(self) -> float:
        return self.mean_uptime / (self.mean_uptime + self.mean_downtime)

    def install(self, peer: Peer) -> None:
        sim = peer.sim
        rng = sim.rng(f"{self.stream}/{peer.peer_id}")

        def cycle(sim: Simulator):
            self.stats.sessions += 1
            while True:
                up = rng.exponential(self.mean_uptime)
                yield sim.timeout(up)
                self.stats.online_seconds += up
                self._go_down(peer)
                down = rng.exponential(self.mean_downtime)
                yield sim.timeout(down)
                self.stats.offline_seconds += down
                self._go_up(peer)

        sim.process(cycle(sim), name=f"churn/{peer.peer_id}")


class ScreensaverCycle(AvailabilityModel):
    """Deterministic diurnal cycle: the machine volunteers while idle.

    Each period of ``day_seconds`` contains one contiguous idle window of
    ``idle_fraction`` of the day; the window's offset is drawn once per
    peer, so a fleet's windows are staggered like real timezone/habit
    spread.  Outside the window the owner is using the machine.
    """

    def __init__(
        self,
        idle_fraction: float = 0.6,
        day_seconds: float = 86_400.0,
        stream: str = "screensaver",
    ):
        super().__init__()
        if not 0 < idle_fraction <= 1.0:
            raise ResourceError("idle_fraction must be in (0, 1]")
        self.idle_fraction = idle_fraction
        self.day_seconds = day_seconds
        self.stream = stream

    def expected_availability(self) -> float:
        return self.idle_fraction

    def install(self, peer: Peer) -> None:
        sim = peer.sim
        rng = sim.rng(f"{self.stream}/{peer.peer_id}")
        offset = float(rng.uniform(0, self.day_seconds))
        idle_len = self.idle_fraction * self.day_seconds
        busy_len = self.day_seconds - idle_len

        def cycle(sim: Simulator):
            # Phase in: the machine starts busy until its idle window opens.
            if offset > 0:
                self._go_down(peer)
                yield sim.timeout(offset)
                self.stats.offline_seconds += offset
                self._go_up(peer)
            else:
                self.stats.sessions += 1
            while True:
                yield sim.timeout(idle_len)
                self.stats.online_seconds += idle_len
                if busy_len <= 0:
                    continue
                self._go_down(peer)
                yield sim.timeout(busy_len)
                self.stats.offline_seconds += busy_len
                self._go_up(peer)

        sim.process(cycle(sim), name=f"screensaver/{peer.peer_id}")


class ScriptedAvailability(AvailabilityModel):
    """Outages at scripted absolute times (the chaos layer's crash model).

    ``windows`` is a list of ``(start, duration)`` pairs in absolute
    simulation time; ``duration <= 0`` means the peer never comes back.
    Unlike the stochastic models this one is a *script*: the fault
    injector uses it so that injected crashes flow through the same
    stats/listener machinery as organic churn.
    """

    def __init__(self, windows: list[tuple[float, float]]):
        super().__init__()
        self.windows = sorted((float(s), float(d)) for s, d in windows)
        for (s, d), (s2, _d2) in zip(self.windows, self.windows[1:]):
            if d <= 0 or s + d > s2:
                raise ResourceError(
                    f"outage windows must be finite and non-overlapping "
                    f"(({s}, {d}) then start {s2})"
                )
        if any(s < 0 for s, _ in self.windows):
            raise ResourceError("outage windows must start at t >= 0")

    def expected_availability(self) -> float:
        if not self.windows:
            return 1.0
        last_start, last_dur = self.windows[-1]
        if last_dur <= 0:
            return 0.0
        horizon = last_start + last_dur
        down = sum(d for _s, d in self.windows)
        return max(0.0, 1.0 - down / horizon) if horizon > 0 else 1.0

    def install(self, peer: Peer) -> None:
        sim = peer.sim
        self.stats.sessions += 1

        def script(sim: Simulator):
            last = sim.now
            for start, duration in self.windows:
                if start < sim.now:
                    continue  # scheduled in the past: skip, don't fire late
                yield sim.timeout(start - sim.now)
                self.stats.online_seconds += sim.now - last
                self._go_down(peer)
                if duration <= 0:
                    return  # permanent crash
                yield sim.timeout(duration)
                self.stats.offline_seconds += duration
                self._go_up(peer)
                last = sim.now

        sim.process(script(sim), name=f"scripted/{peer.peer_id}")


def fleet_availability(models: list[AvailabilityModel]) -> float:
    """Mean expected availability across a fleet."""
    if not models:
        return 0.0
    return sum(m.expected_availability() for m in models) / len(models)
