"""A GRAM-like batch resource manager behind a gateway peer.

"The server component within each peer can interact with Globus GRAM to
launch jobs locally on the node.  This is useful to support nodes which
host parallel machines or workstations clusters."  A Triana peer fronting
a cluster submits group execution to this local RM instead of running
in-process.

:class:`BatchQueue` is a FIFO multi-node scheduler; :class:`GramGateway`
is the authenticated submission interface (certificate + account checks,
per §2).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from ..simkernel import Event, Resource, Simulator
from .accounts import CertificateAuthority, Credential, GlobusAccountManager
from .errors import AuthenticationError, QueueError

__all__ = ["JobSpec", "BatchQueue", "GramGateway"]

_job_ids = itertools.count(1)


@dataclass(frozen=True)
class JobSpec:
    """One batch job: modelled work plus how long the user will wait."""

    flops: float
    user: str = "anonymous"
    wall_limit: Optional[float] = None

    def __post_init__(self):
        if self.flops <= 0:
            raise QueueError("job flops must be positive")


@dataclass
class QueueStats:
    submitted: int = 0
    completed: int = 0
    killed_wall_limit: int = 0
    total_wait: float = 0.0
    total_run: float = 0.0


class BatchQueue:
    """FIFO batch scheduler over ``nodes`` × ``cores_per_node`` slots."""

    def __init__(
        self,
        sim: Simulator,
        nodes: int = 4,
        cores_per_node: int = 2,
        cpu_flops: float = 2.0e9,
    ):
        if nodes < 1 or cores_per_node < 1:
            raise QueueError("nodes and cores_per_node must be >= 1")
        self.sim = sim
        self.cpu_flops = cpu_flops
        self.slots = Resource(sim, capacity=nodes * cores_per_node)
        self.stats = QueueStats()

    def submit(self, spec: JobSpec) -> Event:
        """Queue a job; the returned process event yields its runtime."""
        self.stats.submitted += 1
        submit_time = self.sim.now

        def job(sim: Simulator):
            req = self.slots.request()
            yield req
            wait = sim.now - submit_time
            self.stats.total_wait += wait
            runtime = spec.flops / self.cpu_flops
            try:
                if spec.wall_limit is not None and runtime > spec.wall_limit:
                    self.stats.killed_wall_limit += 1
                    raise QueueError(
                        f"job exceeded wall limit ({runtime:.0f}s > "
                        f"{spec.wall_limit:.0f}s)"
                    )
                yield sim.timeout(runtime)
            finally:
                self.slots.release(req)
            self.stats.completed += 1
            self.stats.total_run += runtime
            return runtime

        return self.sim.process(job(self.sim), name=f"batch-job-{next(_job_ids)}")


class GramGateway:
    """Authenticated front door to a batch queue (the Globus path).

    Submission requires a valid CA credential *and* a pre-created
    account — exactly the administrative friction §2 describes.
    """

    def __init__(
        self,
        queue: BatchQueue,
        ca: CertificateAuthority,
        accounts: GlobusAccountManager,
    ):
        self.queue = queue
        self.ca = ca
        self.accounts = accounts
        self.rejected = 0

    def submit(self, spec: JobSpec, credential: Credential) -> Event:
        """Authenticate, authorise and enqueue; bills on completion."""
        try:
            self.accounts.authorise(credential, self.queue.sim.now)
        except AuthenticationError:
            self.rejected += 1
            raise
        done = self.queue.submit(spec)

        def bill(ev: Event) -> None:
            if ev.ok:
                self.accounts.charge(spec.user, ev.value)

        done.callbacks.append(bill)
        return done
