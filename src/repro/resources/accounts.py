"""Accounts, certificates and billing — the Globus contrast (§2).

The paper's critique: Globus needs per-user accounts created by an
administrator and certificates from a CA, which is "a daunting task
indeed" at consumer scale; Triana instead runs everything under one
*virtual account* per resource, with "a daemon informing the CA of the
resources available.  The shell would also maintain billing information
for resources used."

This module implements both worlds so experiment E9 can count the
administrative operations each needs:

* :class:`CertificateAuthority` + :class:`Credential` — Globus-style PKI;
* :class:`GlobusAccountManager` — one admin-created account per user;
* :class:`VirtualAccountManager` — one shared account, per-user billing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..simkernel.rng import stable_hash
from .errors import AuthenticationError, ResourceError

__all__ = [
    "Credential",
    "CertificateAuthority",
    "GlobusAccountManager",
    "VirtualAccountManager",
    "UsageRecord",
]


@dataclass(frozen=True)
class Credential:
    """A signed identity assertion (public-key certificate stand-in)."""

    subject: str
    issuer: str
    expires_at: float
    signature: int

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at


class CertificateAuthority:
    """A toy CA: issues and verifies signed credentials.

    The signature is a keyed hash over the certificate fields — enough to
    make forgery and tampering *detectable in tests* without real crypto.
    """

    def __init__(self, name: str, secret: int = 0xC0FFEE):
        self.name = name
        self._secret = secret
        self.issued = 0

    def _sign(self, subject: str, expires_at: float) -> int:
        return stable_hash(f"{self.name}|{subject}|{expires_at}|{self._secret}")

    def issue(self, subject: str, now: float, lifetime: float = 3.15e7) -> Credential:
        self.issued += 1
        expires = now + lifetime
        return Credential(subject, self.name, expires, self._sign(subject, expires))

    def verify(self, cred: Credential, now: float) -> None:
        """Raise :class:`AuthenticationError` unless the credential is good."""
        if cred.issuer != self.name:
            raise AuthenticationError(
                f"credential issued by {cred.issuer!r}, not trusted CA {self.name!r}"
            )
        if cred.is_expired(now):
            raise AuthenticationError(f"credential for {cred.subject!r} expired")
        if cred.signature != self._sign(cred.subject, cred.expires_at):
            raise AuthenticationError("credential signature invalid (tampered?)")


@dataclass
class UsageRecord:
    """Billing line: cpu-seconds consumed by one principal."""

    principal: str
    cpu_seconds: float = 0.0
    jobs: int = 0


class GlobusAccountManager:
    """Per-user accounts that an administrator must create explicitly.

    "Administrators with resources that they are willing to make
    available have to create accounts explicitly for Globus users."
    """

    def __init__(self, ca: CertificateAuthority):
        self.ca = ca
        self.accounts: dict[str, UsageRecord] = {}
        self.admin_operations = 0

    def create_account(self, user: str) -> None:
        if user in self.accounts:
            raise ResourceError(f"account {user!r} already exists")
        self.admin_operations += 1
        self.accounts[user] = UsageRecord(principal=user)

    def authorise(self, cred: Credential, now: float) -> UsageRecord:
        """Certificate check *and* a pre-created account are required."""
        self.ca.verify(cred, now)
        record = self.accounts.get(cred.subject)
        if record is None:
            raise AuthenticationError(
                f"no account for {cred.subject!r}; ask the administrator"
            )
        return record

    def charge(self, user: str, cpu_seconds: float) -> None:
        record = self.accounts.get(user)
        if record is None:
            raise ResourceError(f"no account {user!r}")
        record.cpu_seconds += cpu_seconds
        record.jobs += 1


class VirtualAccountManager:
    """One shared account per resource; per-user billing lines only.

    "This functionality would perhaps be best served by the creation of a
    single Globus account ... The shell would also maintain billing
    information for resources used."  Enrolment is self-service —
    zero administrator operations per user.
    """

    def __init__(self, resource_name: str):
        self.resource_name = resource_name
        self.admin_operations = 1  # installing the service daemon, once
        self.billing: dict[str, UsageRecord] = {}

    def authorise(self, user: str) -> UsageRecord:
        """Any user may run; a billing record appears on first use."""
        if user not in self.billing:
            self.billing[user] = UsageRecord(principal=user)
        return self.billing[user]

    def charge(self, user: str, cpu_seconds: float) -> None:
        record = self.authorise(user)
        record.cpu_seconds += cpu_seconds
        record.jobs += 1

    def total_cpu_seconds(self) -> float:
        return sum(r.cpu_seconds for r in self.billing.values())

    def invoice(self) -> list[UsageRecord]:
        """Billing lines sorted by usage (highest first)."""
        return sorted(self.billing.values(), key=lambda r: -r.cpu_seconds)
