"""Command-line interface: run, convert and inspect task graphs.

The headless counterpart of the Triana GUI::

    python -m repro units --category signal     # browse the toolbox
    python -m repro policies                    # distribution policies
    python -m repro run fig1.xml -n 20 --probe Accum
    python -m repro run fig1.xml -n 20 --workers 4    # simulated grid
    python -m repro convert fig1.xml --to wsfl        # format bridge
    python -m repro analyze run.jsonl                 # why was it slow?

Graph files may be in any of the three §3.1 formats (native taskgraph
XML, WSFL, Petri net); the format is sniffed from the root element.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .analysis.tables import render_kv, render_table
from .core import (
    LocalEngine,
    TaskGraph,
    global_registry,
    graph_from_petrinet,
    graph_from_string,
    graph_from_wsfl,
    graph_to_petrinet,
    graph_to_string,
    graph_to_wsfl,
)
from .core.errors import SerializationError, WorkflowError

__all__ = ["main", "load_graph_text", "FORMATS"]

FORMATS = ("native", "wsfl", "petrinet")

_PARSERS = {
    "native": graph_from_string,
    "wsfl": graph_from_wsfl,
    "petrinet": graph_from_petrinet,
}
_WRITERS = {
    "native": graph_to_string,
    "wsfl": graph_to_wsfl,
    "petrinet": graph_to_petrinet,
}
_ROOTS = {"taskgraph": "native", "flowModel": "wsfl", "net": "petrinet"}


def sniff_format(text: str) -> str:
    """Guess the wire format from the XML root element."""
    stripped = text.lstrip()
    for root, fmt in _ROOTS.items():
        if stripped.startswith(f"<{root}"):
            return fmt
    raise SerializationError(
        "unrecognised graph format; expected a <taskgraph>, <flowModel> or "
        "<net> document"
    )


def load_graph_text(text: str, fmt: str = "auto") -> TaskGraph:
    """Parse graph text in the given (or sniffed) format."""
    if fmt == "auto":
        fmt = sniff_format(text)
    if fmt not in _PARSERS:
        raise SerializationError(f"unknown format {fmt!r}; valid: {FORMATS}")
    return _PARSERS[fmt](text)


def _cmd_units(args) -> int:
    registry = global_registry()
    hits = registry.search(category=args.category, text=args.search or "")
    print(render_table(
        ["unit", "version", "category", "in", "out", "code bytes"],
        [
            (d.name, d.version, d.category, d.cls.NUM_INPUTS,
             d.cls.NUM_OUTPUTS, d.code_size)
            for d in hits
        ],
        title=f"{len(hits)} units registered",
    ))
    return 0


def _cmd_policies(args) -> int:
    from .service.placement import dispatch_policy_names
    from .service.policies import global_policy_registry

    registry = global_policy_registry()
    print(render_table(
        ["policy", "class", "summary"],
        [
            (d.name, d.cls.__name__, d.summary)
            for d in sorted(registry, key=lambda d: d.name)
        ],
        title=f"{len(registry)} distribution policies registered",
    ))
    print(f"farm dispatch ( --dispatch ): {', '.join(dispatch_policy_names())}")
    return 0


def _cmd_transports(args) -> int:
    from .transport import iter_transports

    backends = iter_transports()
    print(render_table(
        ["transport", "class", "summary"],
        [(d.name, d.cls.__name__, d.summary) for d in backends],
        title=f"{len(backends)} transport backends registered",
    ))
    print("select with: repro run ... --workers N --transport {sim,tcp}")
    return 0


def _cmd_faults(args) -> int:
    from .faults import CHAOS_LEVELS, FAULT_KIND_DOCS, chaos

    print(render_table(
        ["kind", "what it does"],
        sorted(FAULT_KIND_DOCS.items()),
        title=f"{len(FAULT_KIND_DOCS)} fault kinds registered",
    ))
    print(render_table(
        ["level"] + sorted(next(iter(CHAOS_LEVELS.values()))),
        [
            (level, *[params[k] for k in sorted(params)])
            for level, params in CHAOS_LEVELS.items()
        ],
        title="chaos() preset levels",
    ))
    if args.level is not None:
        workers = [f"worker-{i}" for i in range(args.workers)]
        plan = chaos(args.level, seed=args.seed, workers=workers,
                     portal="portal")
        print(render_table(
            ["fault"],
            [(f.describe(),) for f in plan],
            title=(f"chaos({args.level!r}, seed={args.seed}, "
                   f"workers={args.workers}) → {len(plan)} faults"),
        ))
    return 0


def _cmd_convert(args) -> int:
    text = open(args.graph).read()
    graph = load_graph_text(text, args.from_format)
    print(_WRITERS[args.to](graph))
    return 0


def _cmd_validate(args) -> int:
    text = open(args.graph).read()
    graph = load_graph_text(text, args.from_format)
    graph.validate()
    groups = graph.groups()
    print(render_kv(
        [
            ("graph", graph.name),
            ("tasks", len(graph.tasks)),
            ("connections", len(graph.connections)),
            ("groups", [f"{g.name}({g.policy})" for g in groups]),
            ("valid", True),
        ],
        title=f"validated {args.graph}",
    ))
    return 0


def _cmd_run(args) -> int:
    text = open(args.graph).read()
    graph = load_graph_text(text, args.from_format)
    probes = tuple(args.probe or ())
    if args.workers == 0:
        if args.trace_out or args.metrics_out or args.telemetry_out:
            flag = ("--trace-out" if args.trace_out
                    else "--metrics-out" if args.metrics_out
                    else "--telemetry-out")
            print(f"error: {flag} needs a simulated grid (--workers > 0)",
                  file=sys.stderr)
            return 1
        engine = LocalEngine(graph)
        attached = [engine.attach_probe(p) for p in probes]
        engine.run(iterations=args.iterations)
        print(render_kv(
            [
                ("mode", "local engine"),
                ("iterations", engine.stats.iterations),
                ("unit firings", engine.stats.firings),
                ("modelled gflop", engine.stats.modelled_flops / 1e9),
            ],
            title=f"ran {graph.name}",
        ))
        for probe in attached:
            print(f"probe {probe.task}: {len(probe.values)} values, "
                  f"last = {type(probe.last).__name__}")
        return 0

    if args.transport == "tcp":
        if args.trace_out or args.metrics_out or args.telemetry_out:
            print("error: --trace-out/--metrics-out/--telemetry-out need the "
                  "sim transport (observability files describe one process)",
                  file=sys.stderr)
            return 1
        if args.discovery != "central":
            print("error: --transport tcp supports central discovery only",
                  file=sys.stderr)
            return 1
        from .deployment import run_tcp_localhost

        report = run_tcp_localhost(
            graph,
            iterations=args.iterations,
            n_workers=args.workers,
            dispatch=args.dispatch,
            probes=probes,
            verification=args.verification,
            seed=args.seed,
        )
        rows = [
            ("mode", f"tcp localhost ({args.workers} worker processes + "
                     "controller)"),
            ("policy", report.policy),
            ("iterations", report.iterations),
            ("deploy time (wall s)", round(report.deploy_time, 3)),
            ("makespan (wall s)", round(report.makespan, 3)),
            ("re-dispatches", report.redispatches),
            ("placements", dict(report.placements)),
        ]
        print(render_kv(rows, title=f"ran {graph.name}"))
        for name, values in report.probe_values.items():
            print(f"probe {name}: {len(values)} values")
        return 0

    from .grid import ConsumerGrid

    grid = ConsumerGrid(
        n_workers=args.workers,
        seed=args.seed,
        discovery=args.discovery,
        telemetry=bool(args.telemetry_out),
    )
    report = grid.run(
        graph, iterations=args.iterations, probes=probes, dispatch=args.dispatch,
        verification=args.verification,
        trace_out=args.trace_out, metrics_out=args.metrics_out,
        telemetry_out=args.telemetry_out,
    )
    if args.trace_out:
        summary = report.tracing
        print(f"trace written to {args.trace_out} "
              f"({summary.get('spans', 0)} spans, {summary.get('events', 0)} events)")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    if args.telemetry_out:
        print(f"telemetry written to {args.telemetry_out} "
              f"({report.health.get('sampler', {}).get('samples', 0)} samples, "
              f"{report.health.get('incidents', 0)} incident(s))")
    rows = [
        ("mode", f"simulated grid ({args.workers} workers, "
                 f"{args.discovery} discovery)"),
        ("policy", report.policy),
        ("iterations", report.iterations),
        ("deploy time (sim s)", report.deploy_time),
        ("makespan (sim s)", report.makespan),
        ("re-dispatches", report.redispatches),
        ("placements", dict(report.placements)),
    ]
    if report.integrity:
        rows += [
            ("verification", report.integrity.get("verification")),
            ("replicas issued", report.integrity.get("replicas_issued")),
            ("overturned results", report.integrity.get("overturned")),
            ("convicted peers", report.integrity.get("convicted")),
        ]
    print(render_kv(rows, title=f"ran {graph.name}"))
    for name, values in report.probe_values.items():
        print(f"probe {name}: {len(values)} values")
    return 0


def _cmd_top(args) -> int:
    from .observe import render_top

    text = open(args.target).read()
    if text.lstrip().startswith("<"):
        # A graph file: run it on a telemetered grid, then render the
        # dashboard over the live trace.
        from .grid import ConsumerGrid

        graph = load_graph_text(text, "auto")
        grid = ConsumerGrid(
            n_workers=args.workers,
            seed=args.seed,
            discovery=args.discovery,
            telemetry=True,
            telemetry_interval=args.interval,
        )
        report = grid.run(graph, iterations=args.iterations,
                          dispatch=args.dispatch)
        print(render_top(grid.sim.tracer), end="")
        print(f"makespan {report.makespan:.3f} sim s, "
              f"{report.health.get('incidents', 0)} incident(s)")
        return 0
    # Otherwise: a trace file written by --trace-out.
    print(render_top(args.target), end="")
    return 0


def _cmd_analyze(args) -> int:
    import json as _json

    from .observe import analyze, compare_runs, doctor, render_diff

    if args.diff is not None:
        diff = compare_runs(args.trace, args.diff, threshold_pct=args.threshold)
        if args.json:
            print(_json.dumps(diff, sort_keys=True, indent=2))
        else:
            print(render_diff(diff), end="")
        return 1 if (args.fail_on_regression and diff["regressions"]) else 0
    if args.json:
        print(_json.dumps(analyze(args.trace), sort_keys=True, indent=2))
    else:
        print(doctor(args.trace), end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Consumer Grid reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_units = sub.add_parser("units", help="list the unit toolbox")
    p_units.add_argument("--category", default=None)
    p_units.add_argument("--search", default=None)
    p_units.set_defaults(fn=_cmd_units)

    p_policies = sub.add_parser(
        "policies", help="list registered group distribution policies"
    )
    p_policies.set_defaults(fn=_cmd_policies)

    p_transports = sub.add_parser(
        "transports", help="list registered transport backends"
    )
    p_transports.set_defaults(fn=_cmd_transports)

    p_faults = sub.add_parser(
        "faults", help="list fault kinds and chaos() preset contents"
    )
    p_faults.add_argument("--level", default=None,
                          help="expand one preset into its concrete plan "
                               "(mild | moderate | heavy | hostile)")
    p_faults.add_argument("--seed", type=int, default=0,
                          help="seed for the expanded plan (with --level)")
    p_faults.add_argument("--workers", type=int, default=6,
                          help="fleet size for the expanded plan "
                               "(with --level)")
    p_faults.set_defaults(fn=_cmd_faults)

    p_validate = sub.add_parser("validate", help="type-check a task graph file")
    p_validate.add_argument("graph")
    p_validate.add_argument("--from-format", default="auto",
                            choices=("auto", *FORMATS))
    p_validate.set_defaults(fn=_cmd_validate)

    p_convert = sub.add_parser("convert", help="convert between wire formats")
    p_convert.add_argument("graph")
    p_convert.add_argument("--to", required=True, choices=FORMATS)
    p_convert.add_argument("--from-format", default="auto",
                           choices=("auto", *FORMATS))
    p_convert.set_defaults(fn=_cmd_convert)

    p_run = sub.add_parser("run", help="execute a task graph")
    p_run.add_argument("graph")
    p_run.add_argument("-n", "--iterations", type=int, default=1)
    p_run.add_argument("--workers", type=int, default=0,
                       help="0 = local engine; >0 = simulated Consumer Grid")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--discovery", default="central",
                       choices=("central", "flooding", "rendezvous"))
    from .service.placement import dispatch_policy_names

    p_run.add_argument("--dispatch", default="round_robin",
                       choices=dispatch_policy_names())
    p_run.add_argument("--transport", default="sim", choices=("sim", "tcp"),
                       help="grid substrate: sim = deterministic simulated "
                            "network (default); tcp = real localhost "
                            "sockets, controller in-process + one OS "
                            "process per worker")
    p_run.add_argument("--verification", default="none", metavar="SPEC",
                       help="result-integrity strategy: none, replicate-<k> "
                            "(vote over k peers), or spot-<p> (recompute a "
                            "fraction p locally); grid mode only")
    p_run.add_argument("--probe", action="append",
                       help="task name to observe (repeatable)")
    p_run.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a run trace (.json = Chrome/Perfetto, "
                            ".jsonl = event log, .txt/.log = text "
                            "timeline); grid mode only")
    p_run.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the run's metrics registry snapshot "
                            "as JSON; grid mode only")
    p_run.add_argument("--telemetry-out", default=None, metavar="PATH",
                       help="enable live telemetry and write the sampled "
                            "timeseries as JSONL; grid mode only")
    p_run.add_argument("--from-format", default="auto",
                       choices=("auto", *FORMATS))
    p_run.set_defaults(fn=_cmd_run)

    p_top = sub.add_parser(
        "top",
        help="live-grid dashboard: per-peer utilization bars, incident "
             "timeline, worst offenders",
    )
    p_top.add_argument("target",
                       help="a trace file from --trace-out, or a graph file "
                            "to run on a telemetered grid")
    p_top.add_argument("-n", "--iterations", type=int, default=1,
                       help="iterations when target is a graph file")
    p_top.add_argument("--workers", type=int, default=4,
                       help="fleet size when target is a graph file")
    p_top.add_argument("--seed", type=int, default=0)
    p_top.add_argument("--discovery", default="central",
                       choices=("central", "flooding", "rendezvous"))
    p_top.add_argument("--dispatch", default="round_robin",
                       choices=dispatch_policy_names())
    p_top.add_argument("--interval", type=float, default=5.0,
                       help="telemetry sample interval in sim seconds")
    p_top.set_defaults(fn=_cmd_top)

    p_analyze = sub.add_parser(
        "analyze",
        help="analyze a run trace: critical path, per-peer utilization, "
             "bottleneck attribution, run diffing",
    )
    p_analyze.add_argument("trace",
                           help="trace file from --trace-out "
                                "(.jsonl event log or .json Chrome trace)")
    p_analyze.add_argument("--diff", default=None, metavar="OTHER",
                           help="compare against a second trace "
                                "(trace = baseline, OTHER = candidate)")
    p_analyze.add_argument("--threshold", type=float, default=5.0,
                           help="regression threshold in %% for --diff "
                                "(default 5)")
    p_analyze.add_argument("--fail-on-regression", action="store_true",
                           help="exit 1 if --diff finds regressions over "
                                "the threshold")
    p_analyze.add_argument("--json", action="store_true",
                           help="emit the analysis as JSON instead of text")
    p_analyze.set_defaults(fn=_cmd_analyze)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (WorkflowError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
