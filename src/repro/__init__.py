"""repro — reproduction of "Supporting Peer-2-Peer Interactions in the
Consumer Grid" (Taylor, Rana, Philp, Wang, Shields — IPPS 2003).

A Triana-like visual-workflow system deployed peer-to-peer over a
simulated consumer network, with code mobility, sandboxed execution,
JXTA-style discovery/pipes, volunteer availability models, and the
paper's three application scenarios.

Subsystems (see DESIGN.md):

===================  ========================================================
``repro.simkernel``  deterministic discrete-event simulation kernel
``repro.p2p``        consumer network, peers, discovery, pipes, JXTAServe
``repro.core``       workflow engine: types, units, task graphs, XML, toolbox
``repro.mobility``   module repository, on-demand download, sandbox
``repro.resources``  hosts, volunteer availability, GRAM gateway, accounts
``repro.service``    Triana worker services + controller (distribution)
``repro.faults``     chaos layer: declarative fault plans + injector
``repro.observe``    tracing + metrics + trace exporters (observability)
``repro.apps``       galaxy formation, inspiral search, database scenarios
``repro.analysis``   metrics and table harness for the benchmarks
===================  ========================================================

Quickstart::

    from repro import ConsumerGrid, TaskGraph

    g = TaskGraph("fig1")
    g.add_task("Wave", "Wave", frequency=64.0)
    g.add_task("Gaussian", "GaussianNoise", sigma=2.0)
    g.add_task("FFT", "FFT")
    g.add_task("Power", "PowerSpectrum")
    g.add_task("Accum", "AccumStat")
    g.add_task("Grapher", "Grapher")
    for a, b in [("Wave", "Gaussian"), ("Gaussian", "FFT"),
                 ("FFT", "Power"), ("Power", "Accum"), ("Accum", "Grapher")]:
        g.connect(a, 0, b, 0)
    g.group_tasks("GroupTask", ["Gaussian", "FFT"], policy="parallel")

    grid = ConsumerGrid(n_workers=4, seed=42)
    report = grid.run(g, iterations=20, probes=("Accum",))
"""

from . import apps  # noqa: F401  (registers scenario units)
from .core import (
    GraphError,
    LocalEngine,
    SampleSet,
    Spectrum,
    TaskGraph,
    TypeMismatchError,
    Unit,
    UnitRegistry,
    global_registry,
    graph_from_string,
    graph_to_string,
)
from .faults import Fault, FaultInjector, FaultPlan, chaos
from .grid import ConsumerGrid
from .observe import MetricsRegistry, NullTracer, Tracer, write_trace
from .service import (
    HeartbeatFailureDetector,
    RunReport,
    TrianaController,
    TrianaService,
)
from .simkernel import Simulator

__version__ = "1.0.0"

__all__ = [
    "ConsumerGrid",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "GraphError",
    "HeartbeatFailureDetector",
    "LocalEngine",
    "MetricsRegistry",
    "NullTracer",
    "RunReport",
    "SampleSet",
    "Simulator",
    "Tracer",
    "Spectrum",
    "TaskGraph",
    "TrianaController",
    "TrianaService",
    "TypeMismatchError",
    "Unit",
    "UnitRegistry",
    "__version__",
    "chaos",
    "global_registry",
    "graph_from_string",
    "graph_to_string",
    "write_trace",
]
