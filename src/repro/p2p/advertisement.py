"""Advertisements — the JXTA-style self-describing resource records.

"Peer naming, grouping, and advertising is achieved using JXTA."  An
advertisement is a small typed record published into a discovery service:
peers advertise themselves (with capability attributes such as "CPU
capability and available free memory", §4), pipes advertise their unique
names, and module repositories advertise downloadable units.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = [
    "Advertisement", "AdvCache", "AttrPredicate",
    "ADV_PEER", "ADV_PIPE", "ADV_SERVICE", "ADV_MODULE",
    "module_adv_name", "module_replica_advertisement",
]

ADV_PEER = "peer"
ADV_PIPE = "pipe"
ADV_SERVICE = "service"
ADV_MODULE = "module"


def module_adv_name(unit_name: str) -> str:
    """Discovery name under which replicas of a unit advertise."""
    return f"module:{unit_name}"


def module_replica_advertisement(
    unit_name: str,
    host: str,
    version: str,
    digest: str,
    code_size: int,
    expires_at: float = float("inf"),
) -> "Advertisement":
    """An ``ADV_MODULE`` record announcing ``host`` holds one package.

    Re-publishing for a new version replaces the old record (the cache
    key is (type, name, publisher)), so a replica never advertises two
    versions of the same unit at once.  Fetchers match on ``digest`` —
    the content address — never on the version string alone.
    """
    return Advertisement.make(
        ADV_MODULE,
        module_adv_name(unit_name),
        host,
        attrs={
            "host": host,
            "version": version,
            "digest": digest,
            "code_size": code_size,
        },
        expires_at=expires_at,
    )

@dataclass(frozen=True)
class AttrPredicate:
    """Declarative attribute filter for discovery queries.

    Historically query predicates were Python closures, which is fine
    inside one simulated process but unshippable: a ``central-query``
    frame carries its :class:`~repro.p2p.discovery.QuerySpec` —
    predicate included — to the index node, and on a real transport
    that frame crosses a process boundary.  ``AttrPredicate`` is the
    wire-safe form: three conjunctive clause sets over the
    advertisement's attribute dict, stored as sorted tuples so records
    encode canonically.

    * ``equals``     — every ``(key, value)`` must match exactly;
    * ``not_equals`` — every ``(key, value)`` must differ;
    * ``at_least``   — every ``(key, threshold)`` must satisfy
      ``attrs.get(key, 0.0) >= threshold`` (the paper's "minimum CPU
      capability" style constraint).

    Instances are callable with the same signature as the old closures,
    so every discovery backend accepts either form unchanged.
    """

    equals: tuple = ()
    not_equals: tuple = ()
    at_least: tuple = ()

    @staticmethod
    def make(equals=None, not_equals=None, at_least=None) -> "AttrPredicate":
        """Build from dicts/iterables of pairs; clause order is canonical."""
        def norm(spec) -> tuple:
            if not spec:
                return ()
            items = spec.items() if isinstance(spec, dict) else spec
            return tuple(sorted((str(k), v) for k, v in items))

        return AttrPredicate(
            equals=norm(equals), not_equals=norm(not_equals), at_least=norm(at_least)
        )

    def __call__(self, attrs: dict) -> bool:
        for key, value in self.equals:
            if attrs.get(key) != value:
                return False
        for key, value in self.not_equals:
            if attrs.get(key) == value:
                return False
        for key, threshold in self.at_least:
            if attrs.get(key, 0.0) < threshold:
                return False
        return True


_adv_counter = itertools.count()


@dataclass(frozen=True)
class Advertisement:
    """One published resource record.

    Attributes
    ----------
    adv_type:
        One of ``peer | pipe | service | module``.
    name:
        Resource name (unique pipe name, peer id, service kind...).
    publisher:
        Peer id that published the record.
    attrs:
        Free-form attribute map used for predicate matching, e.g.
        ``{"cpu_flops": 2e9, "free_ram": 256e6}``.
    expires_at:
        Absolute sim time after which the record is stale; ``inf`` = never.
    """

    adv_type: str
    name: str
    publisher: str
    attrs: tuple[tuple[str, Any], ...] = ()
    expires_at: float = float("inf")
    adv_id: int = field(default_factory=lambda: next(_adv_counter))

    @staticmethod
    def make(
        adv_type: str,
        name: str,
        publisher: str,
        attrs: Optional[dict[str, Any]] = None,
        expires_at: float = float("inf"),
    ) -> "Advertisement":
        """Build an advertisement from a plain attribute dict."""
        items = tuple(sorted((attrs or {}).items()))
        return Advertisement(adv_type, name, publisher, items, expires_at)

    @property
    def attributes(self) -> dict[str, Any]:
        return dict(self.attrs)

    def matches(
        self,
        adv_type: Optional[str] = None,
        name: Optional[str] = None,
        predicate: Optional[Callable[[dict[str, Any]], bool]] = None,
    ) -> bool:
        """True if this record satisfies the query."""
        if adv_type is not None and self.adv_type != adv_type:
            return False
        if name is not None and self.name != name:
            return False
        if predicate is not None and not predicate(self.attributes):
            return False
        return True

    def wire_size(self) -> int:
        """Modelled serialised size in bytes."""
        return 128 + 32 * len(self.attrs)


class AdvCache:
    """A peer-local advertisement cache with expiry.

    Duplicate publishes of the same (type, name, publisher) replace the
    old record — re-publishing refreshes the expiry.
    """

    def __init__(self):
        self._records: dict[tuple[str, str, str], Advertisement] = {}

    def put(self, adv: Advertisement) -> None:
        self._records[(adv.adv_type, adv.name, adv.publisher)] = adv

    def remove(self, adv: Advertisement) -> None:
        self._records.pop((adv.adv_type, adv.name, adv.publisher), None)

    def remove_publisher(self, publisher: str) -> int:
        """Drop every record from one publisher; returns how many."""
        doomed = [k for k in self._records if k[2] == publisher]
        for k in doomed:
            del self._records[k]
        return len(doomed)

    def query(
        self,
        now: float,
        adv_type: Optional[str] = None,
        name: Optional[str] = None,
        predicate: Optional[Callable[[dict[str, Any]], bool]] = None,
    ) -> list[Advertisement]:
        """Matching, unexpired records (deterministic order)."""
        self.expire(now)
        hits = [
            adv
            for adv in self._records.values()
            if adv.matches(adv_type, name, predicate)
        ]
        return sorted(hits, key=lambda a: a.adv_id)

    def expire(self, now: float) -> int:
        """Remove stale records; returns how many were dropped."""
        doomed = [k for k, adv in self._records.items() if adv.expires_at <= now]
        for k in doomed:
            del self._records[k]
        return len(doomed)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(sorted(self._records.values(), key=lambda a: a.adv_id))
