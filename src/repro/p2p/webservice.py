"""The Web-facing side of a Triana peer.

§1: "a Triana server could be implemented as a Servlet and run as a Web
service" and "We also hope to provide a Web Services Description
Language (WSDL) interface to these at a later time."  §3.2: "users
should be able to obtain progress of their running network via the
internet using a standard Web browser."

This module provides both:

* :class:`WebServiceEndpoint` — a servlet-style request/response facade
  on a peer: ``http-request`` messages carry (method, path, body) and are
  answered with (status, body) — the in-simulation equivalent of HTTP;
* :func:`service_to_wsdl` — a WSDL-like interface description generated
  from a JXTAServe service's nodes.
"""

from __future__ import annotations

import itertools
import xml.etree.ElementTree as ET
from typing import Callable, Optional

from ..simkernel import Event
from .errors import P2PError
from .jxtaserve import JxtaService
from .network import Message
from .peer import Peer

__all__ = ["WebServiceEndpoint", "WebClient", "service_to_wsdl"]

_request_ids = itertools.count(1)


class WebServiceEndpoint:
    """A servlet container on one peer: routes paths to handlers.

    Handlers take ``(method, path, body)`` and return ``(status, body)``.
    """

    def __init__(self, peer: Peer):
        self.peer = peer
        self._routes: dict[str, Callable[[str, str, str], tuple[int, str]]] = {}
        self.requests_served = 0
        peer.on("http-request", self._on_request)

    def route(self, path: str, handler: Callable[[str, str, str], tuple[int, str]]) -> None:
        """Mount a handler at an exact path."""
        if path in self._routes:
            raise P2PError(f"path {path!r} already routed")
        self._routes[path] = handler

    def _on_request(self, message: Message) -> None:
        request_id, method, path, body = message.payload
        handler = self._routes.get(path)
        if handler is None:
            status, response = 404, f"no such path {path!r}"
        else:
            try:
                status, response = handler(method, path, body)
            except Exception as exc:  # servlet-style error page
                status, response = 500, f"{type(exc).__name__}: {exc}"
        self.requests_served += 1
        self.peer.send(
            message.src,
            "http-response",
            payload=(request_id, status, response),
            size_bytes=64 + len(response),
        )


class WebClient:
    """The browser/WAP side: issues requests, yields response events."""

    def __init__(self, peer: Peer):
        self.peer = peer
        self._pending: dict[int, Event] = {}
        peer.on("http-response", self._on_response)

    def request(
        self, server: str, path: str, method: str = "GET", body: str = ""
    ) -> Event:
        """Send a request; the event yields ``(status, body)``."""
        request_id = next(_request_ids)
        ev = self.peer.sim.event()
        self._pending[request_id] = ev
        self.peer.send(
            server,
            "http-request",
            payload=(request_id, method, path, body),
            size_bytes=96 + len(body),
        )
        return ev

    def _on_response(self, message: Message) -> None:
        request_id, status, body = message.payload
        ev = self._pending.pop(request_id, None)
        if ev is not None and not ev.triggered:
            ev.succeed((status, body))


def service_to_wsdl(service: JxtaService) -> str:
    """Generate a WSDL-like interface description for a service.

    Port types mirror the service's input/output pipe nodes; the service
    element binds them to the hosting peer (the "endpoint address").
    """
    definitions = ET.Element(
        "definitions", name=service.name, targetNamespace=f"urn:triana:{service.name}"
    )
    for k, _pipe in enumerate(service.inputs):
        msg = ET.SubElement(definitions, "message", name=f"{service.name}In{k}")
        ET.SubElement(msg, "part", name="payload", type="triana:TrianaType")
    for k in range(len(service.outputs)):
        msg = ET.SubElement(definitions, "message", name=f"{service.name}Out{k}")
        ET.SubElement(msg, "part", name="payload", type="triana:TrianaType")
    port_type = ET.SubElement(definitions, "portType", name=f"{service.name}PortType")
    op = ET.SubElement(port_type, "operation", name=service.kind)
    for k in range(len(service.inputs)):
        ET.SubElement(op, "input", message=f"{service.name}In{k}")
    for k in range(len(service.outputs)):
        ET.SubElement(op, "output", message=f"{service.name}Out{k}")
    svc = ET.SubElement(definitions, "service", name=service.name)
    port = ET.SubElement(svc, "port", name=f"{service.name}Port",
                         binding=f"{service.name}Binding")
    ET.SubElement(port, "address", location=f"triana://{service.peer.peer_id}/{service.name}")
    ET.indent(definitions)
    return ET.tostring(definitions, encoding="unicode")
