"""JXTAServe — the service-oriented facade over pipes and discovery.

"JXTAServe therefore implements a service-oriented architecture based on
JXTA.  A JXTAServe service can have one or more input nodes (one is
needed for control at least) and can have zero, one or more output nodes.
It advertises its input and output nodes as JXTA pipes and connects
between pipes using the virtual communication paradigm."

A :class:`JxtaService` lives on one peer, owns named input pipes
(``<service>.in<k>``), and output endpoints that bind to other services'
input pipes.  The Triana service layer (:mod:`repro.service`) runs its
units as JXTAServe services — "There is almost a one to one correlation
with the Triana implementation and the functionality of JXTAServe."
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..simkernel import AllOf, Event
from .advertisement import ADV_SERVICE, Advertisement
from .discovery import DiscoveryService
from .errors import PipeError
from .peer import Peer
from .pipes import OutputPipe, PipeManager

__all__ = ["JxtaService", "JxtaServe"]


def input_pipe_name(service_name: str, node: int) -> str:
    """The unique pipe name convention for a service input node."""
    return f"{service_name}.in{node}"


class JxtaService:
    """One service instance hosted on a peer."""

    def __init__(
        self,
        serve: "JxtaServe",
        name: str,
        kind: str,
        num_inputs: int = 1,
        num_outputs: int = 0,
        handler: Optional[Callable[[int, Any, "JxtaService"], None]] = None,
        attrs: Optional[dict[str, Any]] = None,
    ):
        if num_inputs < 1:
            raise PipeError("a JXTAServe service needs at least one input (control)")
        self.serve = serve
        self.name = name
        self.kind = kind
        self.peer: Peer = serve.peer
        self.handler = handler
        self.attrs = dict(attrs or {})
        self.inputs = [
            serve.pipes.create_input(
                input_pipe_name(name, k),
                callback=(lambda payload, k=k: self._on_input(k, payload)),
            )
            for k in range(num_inputs)
        ]
        self.outputs: list[Optional[OutputPipe]] = [None] * num_outputs

    # -- data plane ----------------------------------------------------------
    def _on_input(self, node: int, payload: Any) -> None:
        if self.handler is not None:
            self.handler(node, payload, self)

    def emit(self, node: int, payload: Any, size_bytes: Optional[int] = None) -> float:
        """Send a payload out of output node ``node``."""
        pipe = self.outputs[node]
        if pipe is None:
            raise PipeError(f"service {self.name!r} output {node} is not connected")
        return pipe.send(payload, size_bytes)

    # -- wiring ---------------------------------------------------------------
    def connect(self, out_node: int, remote_service: str, remote_node: int) -> Event:
        """Bind output ``out_node`` to another service's input pipe.

        Returns the bind event (succeeds with the host peer id).
        """
        if not 0 <= out_node < len(self.outputs):
            raise PipeError(f"service {self.name!r} has no output node {out_node}")
        pipe = self.serve.pipes.create_output(input_pipe_name(remote_service, remote_node))
        self.outputs[out_node] = pipe
        return pipe.bind()

    def connect_direct(self, out_node: int, remote_service: str, remote_node: int, host: str) -> None:
        """Bind without discovery when placement is already known."""
        pipe = self.serve.pipes.create_output(input_pipe_name(remote_service, remote_node))
        pipe.bind_direct(host)
        self.outputs[out_node] = pipe

    def advertisement(self) -> Advertisement:
        attrs = {"host": self.peer.peer_id, "kind": self.kind, **self.attrs}
        return Advertisement.make(ADV_SERVICE, self.name, self.peer.peer_id, attrs=attrs)


class JxtaServe:
    """The per-peer JXTAServe runtime (pipe manager + service registry)."""

    def __init__(self, peer: Peer, discovery: DiscoveryService):
        self.peer = peer
        self.discovery = discovery
        self.pipes = PipeManager.for_peer(peer, discovery)
        self.services: dict[str, JxtaService] = {}

    def register_service(
        self,
        name: str,
        kind: str,
        num_inputs: int = 1,
        num_outputs: int = 0,
        handler: Optional[Callable[[int, Any, JxtaService], None]] = None,
        attrs: Optional[dict[str, Any]] = None,
    ) -> JxtaService:
        """Create, advertise and return a service."""
        if name in self.services:
            raise PipeError(f"service {name!r} already registered on {self.peer.peer_id!r}")
        svc = JxtaService(self, name, kind, num_inputs, num_outputs, handler, attrs)
        self.services[name] = svc
        self.discovery.publish(self.peer, svc.advertisement())
        return svc

    def find_services(self, kind: str, predicate=None) -> Event:
        """Discover services of a kind anywhere on the network."""
        def full_predicate(attrs: dict[str, Any]) -> bool:
            if attrs.get("kind") != kind:
                return False
            return predicate is None or predicate(attrs)

        return self.discovery.query(self.peer, adv_type=ADV_SERVICE, predicate=full_predicate)

    def connect_chain(self, names: list[str], hosts: dict[str, str]) -> AllOf:
        """Wire service ``names[i]`` output 0 → ``names[i+1]`` input 0.

        ``hosts`` maps service name → peer id for direct binding of the
        stages whose placement the controller chose.  Returns an AllOf of
        the (trivial) bind events for interface symmetry.
        """
        events = []
        for a, b in zip(names, names[1:]):
            svc = self.services.get(a)
            if svc is None:
                raise PipeError(f"service {a!r} is not hosted on this peer")
            svc.connect_direct(0, b, 0, hosts[b])
            done = self.peer.sim.event()
            done.succeed(hosts[b])
            events.append(done)
        return AllOf(self.peer.sim, events)
