"""P2P substrate (systems S2+S3): simulated consumer network + JXTA-like layer.

Layering, bottom-up::

    SimNetwork          raw message passing with DSL/LAN link models
    Peer / PeerGroup    endpoints with advertisement caches and handlers
    Discovery           central-index | flooding | rendezvous strategies
    Pipes               named, advertised, bind-by-discovery channels
    JxtaServe           service-oriented facade (the paper's JXTAServe)
"""

from .advertisement import (
    ADV_MODULE,
    ADV_PEER,
    ADV_PIPE,
    ADV_SERVICE,
    AdvCache,
    Advertisement,
)
from .discovery import (
    CentralIndexDiscovery,
    DiscoveryService,
    DiscoveryStats,
    FloodingDiscovery,
    RendezvousDiscovery,
)
from .errors import DiscoveryError, NetworkError, P2PError, PeerOfflineError, PipeError
from .jxtaserve import JxtaServe, JxtaService, input_pipe_name
from .network import DSL_PROFILE, LAN_PROFILE, Message, NetStats, NodeProfile, SimNetwork
from .peer import Peer, PeerGroup
from .pipes import InputPipe, OutputPipe, PipeManager
from .webservice import WebClient, WebServiceEndpoint, service_to_wsdl

__all__ = [
    "ADV_MODULE",
    "ADV_PEER",
    "ADV_PIPE",
    "ADV_SERVICE",
    "AdvCache",
    "Advertisement",
    "CentralIndexDiscovery",
    "DSL_PROFILE",
    "DiscoveryError",
    "DiscoveryService",
    "DiscoveryStats",
    "FloodingDiscovery",
    "InputPipe",
    "JxtaServe",
    "JxtaService",
    "LAN_PROFILE",
    "Message",
    "NetStats",
    "NetworkError",
    "NodeProfile",
    "OutputPipe",
    "P2PError",
    "Peer",
    "PeerGroup",
    "PeerOfflineError",
    "PipeError",
    "PipeManager",
    "RendezvousDiscovery",
    "SimNetwork",
    "WebClient",
    "WebServiceEndpoint",
    "input_pipe_name",
    "service_to_wsdl",
]
