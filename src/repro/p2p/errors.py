"""Exception hierarchy for the P2P substrate."""

from __future__ import annotations


class P2PError(Exception):
    """Base class for all P2P-layer errors."""


class NetworkError(P2PError):
    """Malformed send, unknown node, or link-level failure."""


class PeerOfflineError(P2PError):
    """An operation required a peer that is not currently online."""


class DiscoveryError(P2PError):
    """Discovery misconfiguration (no rendezvous, no index...)."""


class PipeError(P2PError):
    """Pipe binding/transfer failure."""
