"""JXTA-style virtual pipes.

"for each input connection, the remote service advertises an input pipe
with that connection's unique name.  Since the local service knows the
connection's unique name it locates the pipe with that name and binds to
it" (§3.5).  This module reproduces that mechanism:

* an :class:`InputPipe` is created under a unique name and advertised
  through the discovery service;
* an :class:`OutputPipe` *binds* by discovering the advertisement, then
  streams payloads to the hosting peer;
* data arriving on an input pipe lands in a waitable
  :class:`~repro.simkernel.Store` (and an optional callback).

Pipe traffic adapts to whatever the underlying fabric models — "the
virtual communication paradigm in JXTA networks".  Pipes never touch
the fabric directly: everything goes through the hosting
:class:`~repro.p2p.peer.Peer`, so they run unchanged on any
``repro.transport`` backend (simulated or TCP).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..simkernel import Event, Store
from .advertisement import ADV_PIPE, Advertisement
from .discovery import DiscoveryService
from .errors import PipeError
from .network import Message
from .peer import Peer

__all__ = ["InputPipe", "OutputPipe", "PipeManager"]


class InputPipe:
    """A named, advertised receive endpoint on one peer."""

    def __init__(self, manager: "PipeManager", name: str):
        self.manager = manager
        self.name = name
        self.peer = manager.peer
        self.store: Store = Store(self.peer.sim)
        self.callback: Optional[Callable[[Any], None]] = None
        self.received = 0

    def get(self) -> Event:
        """Event yielding the next payload (FIFO)."""
        return self.store.get()

    def _deliver(self, payload: Any) -> None:
        self.received += 1
        self.store.put(payload)
        if self.callback is not None:
            self.callback(payload)

    def advertisement(self) -> Advertisement:
        return Advertisement.make(
            ADV_PIPE, self.name, self.peer.peer_id, attrs={"host": self.peer.peer_id}
        )


class OutputPipe:
    """A send endpoint that binds to a named input pipe by discovery."""

    def __init__(self, manager: "PipeManager", name: str):
        self.manager = manager
        self.name = name
        self.peer = manager.peer
        self.target: Optional[str] = None
        self.sent = 0

    @property
    def bound(self) -> bool:
        return self.target is not None

    def bind(self) -> Event:
        """Locate the input pipe's advertisement and bind to its host.

        Returns an event that succeeds with the host peer id, or fails
        with :class:`PipeError` if no advertisement was found within the
        discovery window.
        """
        done = self.peer.sim.event()
        tracer = self.peer.sim.tracer
        span = (
            tracer.begin(
                "pipe.bind", category="p2p", track=self.peer.peer_id, pipe=self.name
            )
            if tracer.enabled
            else None
        )
        query = self.manager.discovery.query(self.peer, adv_type=ADV_PIPE, name=self.name)

        def on_result(ev: Event) -> None:
            advs = ev.value
            if not advs:
                if span is not None:
                    span.end(outcome="unresolved")
                done.fail(PipeError(f"no advertisement for pipe {self.name!r}"))
                return
            self.target = advs[0].attributes["host"]
            if span is not None:
                span.end(outcome="bound", host=self.target)
            done.succeed(self.target)

        query.callbacks.append(on_result)
        return done

    def bind_direct(self, host: str) -> None:
        """Bind without discovery (when the controller dictates placement)."""
        self.target = host

    def send(self, payload: Any, size_bytes: Optional[int] = None) -> float:
        """Ship one payload down the pipe; returns modelled latency."""
        if self.target is None:
            raise PipeError(f"output pipe {self.name!r} is not bound")
        if size_bytes is None:
            size_bytes = (
                payload.payload_nbytes() if hasattr(payload, "payload_nbytes") else 256
            )
        self.sent += 1
        return self.peer.send(
            self.target, "pipe-data", payload=(self.name, payload), size_bytes=size_bytes
        )


class PipeManager:
    """Per-peer pipe factory and demultiplexer.

    At most one manager exists per peer (it owns the ``pipe-data``
    handler); use :meth:`for_peer` when the caller may not be first.
    """

    def __init__(self, peer: Peer, discovery: DiscoveryService):
        if getattr(peer, "_pipe_manager", None) is not None:
            raise PipeError(
                f"peer {peer.peer_id!r} already has a PipeManager; "
                "use PipeManager.for_peer()"
            )
        self.peer = peer
        self.discovery = discovery
        self.inputs: dict[str, InputPipe] = {}
        peer.on("pipe-data", self._on_data)
        peer._pipe_manager = self  # type: ignore[attr-defined]

    @classmethod
    def for_peer(cls, peer: Peer, discovery: DiscoveryService) -> "PipeManager":
        """Return the peer's existing manager or create one."""
        existing = getattr(peer, "_pipe_manager", None)
        if existing is not None:
            return existing
        return cls(peer, discovery)

    def create_input(
        self, name: str, callback: Optional[Callable[[Any], None]] = None
    ) -> InputPipe:
        """Create and advertise an input pipe under a unique name."""
        if name in self.inputs:
            raise PipeError(f"input pipe {name!r} already exists on {self.peer.peer_id!r}")
        pipe = InputPipe(self, name)
        pipe.callback = callback
        self.inputs[name] = pipe
        self.discovery.publish(self.peer, pipe.advertisement())
        return pipe

    def remove_input(self, name: str) -> None:
        pipe = self.inputs.pop(name, None)
        if pipe is None:
            raise PipeError(f"no input pipe {name!r} on {self.peer.peer_id!r}")

    def create_output(self, name: str) -> OutputPipe:
        """Create an output endpoint that will bind to pipe ``name``."""
        return OutputPipe(self, name)

    def _on_data(self, message: Message) -> None:
        name, payload = message.payload
        pipe = self.inputs.get(name)
        if pipe is not None:
            pipe._deliver(payload)
        # Data for unknown pipes is dropped (late traffic after teardown).
