"""Peers and peer groups.

"a Consumer Grid is composed of a number of peers.  Each peer provides a
service ... in that it can receive and process requests and returns
results" — and "every entity on the network can be both a service user
and a service provider".

A :class:`Peer` is one network endpoint: it owns an advertisement cache,
a table of protocol handlers keyed by message kind, and liveness state.
Higher layers (discovery strategies, pipes, the Triana service) attach
handlers to peers rather than subclassing them.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..simkernel import Simulator
from .advertisement import ADV_PEER, AdvCache, Advertisement
from .errors import NetworkError, PeerOfflineError
from .network import Message, NodeProfile, SimNetwork

__all__ = ["Peer", "PeerGroup"]


class Peer:
    """One Consumer Grid participant.

    ``network`` is anything satisfying the
    :class:`~repro.transport.base.Transport` surface — the raw
    :class:`SimNetwork` (still accepted, and what most unit tests
    build on), its :class:`~repro.transport.sim.SimTransport` adapter,
    or a socket transport such as
    :class:`~repro.transport.tcp.TcpTransport`.  The peer reads its
    clock (``self.sim``) from the transport, which is how the same
    protocol code runs on simulated time and wall time.

    ``__slots__`` keeps 100k-peer swarms cheap; ``_pipe_manager`` is
    declared here because :class:`~repro.p2p.pipes.PipeManager` annotates
    peers with a back-reference on attach.
    """

    __slots__ = ("peer_id", "network", "sim", "cache", "groups", "_handlers", "_pipe_manager")

    def __init__(
        self,
        peer_id: str,
        network: "SimNetwork | Any",
        profile: Optional[NodeProfile] = None,
        groups: tuple[str, ...] = (),
    ):
        self.peer_id = peer_id
        self.network = network
        self.sim: Simulator = network.sim
        self.cache = AdvCache()
        self.groups: set[str] = set(groups)
        self._handlers: dict[str, Callable[[Message], None]] = {}
        network.add_node(peer_id, self._dispatch, profile)

    # -- liveness -------------------------------------------------------------
    @property
    def online(self) -> bool:
        return self.network.is_online(self.peer_id)

    def go_offline(self) -> None:
        """Churn: the user pulled the plug / intervened."""
        self.network.set_online(self.peer_id, False)

    def go_online(self) -> None:
        self.network.set_online(self.peer_id, True)

    @property
    def profile(self) -> NodeProfile:
        return self.network.profile(self.peer_id)

    # -- protocol handlers -----------------------------------------------------
    def on(self, kind: str, handler: Callable[[Message], None]) -> None:
        """Install a handler for one message kind (one handler per kind)."""
        if kind in self._handlers:
            raise NetworkError(
                f"peer {self.peer_id!r} already handles {kind!r}"
            )
        self._handlers[kind] = handler

    def replace_handler(self, kind: str, handler: Callable[[Message], None]) -> None:
        self._handlers[kind] = handler

    def _dispatch(self, message: Message) -> None:
        handler = self._handlers.get(message.kind)
        if handler is not None:
            handler(message)
        # Unknown kinds are dropped: an open network receives junk.

    # -- messaging ---------------------------------------------------------------
    def send(self, dst: str, kind: str, payload: Any = None, size_bytes: int = 256) -> float:
        """Send a message; offline senders cannot transmit."""
        if not self.online:
            raise PeerOfflineError(f"peer {self.peer_id!r} is offline")
        return self.network.send(
            Message(kind=kind, src=self.peer_id, dst=dst, payload=payload, size_bytes=size_bytes)
        )

    # -- self-description ----------------------------------------------------------
    def self_advertisement(self, ttl: float = float("inf")) -> Advertisement:
        """Peer advertisement carrying capability attributes (§4)."""
        p = self.profile
        expires = self.sim.now + ttl if ttl != float("inf") else float("inf")
        return Advertisement.make(
            ADV_PEER,
            self.peer_id,
            self.peer_id,
            attrs={
                "cpu_flops": p.cpu_flops,
                "free_ram": p.ram_bytes,
                "up_bps": p.up_bps,
                "down_bps": p.down_bps,
                "groups": ",".join(sorted(self.groups)),
            },
            expires_at=expires,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "online" if self.online else "offline"
        return f"Peer({self.peer_id!r}, {state})"


class PeerGroup:
    """A virtual peer group: "group peers with common capability".

    Groups are advisory labels carried in peer advertisements; a group
    object tracks membership and can filter discovery results.
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("group name must be non-empty")
        self.name = name
        self.members: set[str] = set()

    def join(self, peer: Peer) -> None:
        peer.groups.add(self.name)
        self.members.add(peer.peer_id)

    def leave(self, peer: Peer) -> None:
        peer.groups.discard(self.name)
        self.members.discard(peer.peer_id)

    def __contains__(self, peer_id: str) -> bool:
        return peer_id in self.members

    def __len__(self) -> int:
        return len(self.members)

    def predicate(self) -> Callable[[dict[str, Any]], bool]:
        """Attribute predicate selecting advertisements from members."""
        return lambda attrs: self.name in str(attrs.get("groups", "")).split(",")
