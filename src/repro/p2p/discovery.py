"""Peer/resource discovery strategies (system S3, experiment E7).

The paper names the central problem: "A number of P2P application utilise
a 'flooding' mechanism to forward messages to maximise reachability.
This severely restricts the scalability of such approaches" — and adopts
JXTA's rendezvous-based discovery instead, while noting Napster-style
central indexes as prior art.  Three interchangeable strategies are
implemented so the claim is *measurable*:

* :class:`CentralIndexDiscovery` — Napster: one index peer holds every
  advertisement (2 messages per query, single point of failure);
* :class:`FloodingDiscovery` — Gnutella: TTL-limited flood over the
  overlay, replies direct to the querying peer (message cost grows with
  the reachable neighbourhood);
* :class:`RendezvousDiscovery` — JXTA: a small set of rendezvous super-
  peers index their edge peers and forward queries only among themselves.

All three share one interface: ``publish(peer, adv)`` and
``query(peer, ...) -> Event`` whose value is a list of advertisements.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..simkernel import Event
from .advertisement import Advertisement
from .errors import DiscoveryError
from .network import Message
from .peer import Peer

__all__ = [
    "DiscoveryStats",
    "DiscoveryService",
    "CentralIndexDiscovery",
    "FloodingDiscovery",
    "RendezvousDiscovery",
]

_request_ids = itertools.count(1)


@dataclass
class QuerySpec:
    """What a query is looking for."""

    adv_type: Optional[str] = None
    name: Optional[str] = None
    predicate: Optional[Callable[[dict[str, Any]], bool]] = None


@dataclass
class DiscoveryStats:
    """Per-strategy accounting (benchmarks read these)."""

    publishes: int = 0
    queries: int = 0
    query_messages: int = 0
    reply_messages: int = 0
    results_returned: int = 0


@dataclass
class _PendingQuery:
    event: Event
    #: keyed by (adv_id, type, name, publisher) — adv_id alone is only
    #: unique within one OS process (it is a module-level counter), and
    #: on a real transport replies aggregate records minted by several
    #: processes.  The composite key keeps such records distinct while
    #: staying bit-identical in simulation, where adv_ids never collide.
    results: dict[tuple, Advertisement] = field(default_factory=dict)
    expected_replies: Optional[int] = None
    replies_seen: int = 0
    done: bool = False
    #: open ``discovery.query`` span while the query window is live
    span: Any = None

    def add(self, advs: list[Advertisement]) -> None:
        for adv in advs:
            key = (adv.adv_id, adv.adv_type, adv.name, adv.publisher)
            self.results[key] = adv

    def finish(self) -> list[Advertisement]:
        if not self.done:
            self.done = True
            ordered = sorted(self.results.values(), key=lambda a: a.adv_id)
            self.event.succeed(ordered)
            return ordered
        return []


class DiscoveryService:
    """Shared machinery: pending-query table and reply handling."""

    #: message kinds, overridden per strategy for distinct accounting
    KIND_PREFIX = "disc"

    def __init__(self, query_window: float = 2.0):
        self.query_window = query_window
        self.stats = DiscoveryStats()
        self._pending: dict[tuple[str, int], _PendingQuery] = {}
        self._peers: dict[str, Peer] = {}

    # -- wiring ------------------------------------------------------------------
    def attach(self, peer: Peer) -> None:
        """Install this strategy's handlers on a peer."""
        if peer.peer_id in self._peers:
            raise DiscoveryError(f"peer {peer.peer_id!r} already attached")
        self._peers[peer.peer_id] = peer
        peer.on(f"{self.KIND_PREFIX}-reply", self._on_reply)
        self._attach_extra(peer)

    def _attach_extra(self, peer: Peer) -> None:  # pragma: no cover - overridden
        pass

    def peer(self, peer_id: str) -> Peer:
        if peer_id not in self._peers:
            raise DiscoveryError(f"peer {peer_id!r} not attached to discovery")
        return self._peers[peer_id]

    # -- public API ------------------------------------------------------------------
    def publish(self, peer: Peer, adv: Advertisement) -> None:
        raise NotImplementedError

    def query(
        self,
        peer: Peer,
        adv_type: Optional[str] = None,
        name: Optional[str] = None,
        predicate: Optional[Callable[[dict[str, Any]], bool]] = None,
        window: Optional[float] = None,
    ) -> Event:
        """Launch a query; the returned event yields advertisements.

        ``window`` overrides the strategy's ``query_window`` for this one
        query — latency-sensitive callers (module replica resolution)
        use a short window so a fetch is never stalled behind the full
        discovery horizon.
        """
        spec = QuerySpec(adv_type, name, predicate)
        req = next(_request_ids)
        pending = _PendingQuery(event=peer.sim.event())
        tracer = peer.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("p2p.discovery_queries").inc()
            pending.span = tracer.begin(
                "discovery.query", category="p2p", track=peer.peer_id,
                strategy=self.KIND_PREFIX, adv_type=adv_type, query_name=name,
            )
        self._pending[(peer.peer_id, req)] = pending
        self.stats.queries += 1
        # Local cache contributes immediately.
        pending.add(peer.cache.query(peer.sim.now, adv_type, name, predicate))
        self._send_query(peer, req, spec, pending)
        key = (peer.peer_id, req)

        def close() -> None:
            entry = self._pending.get(key)
            if entry is not None:
                self._complete(key, entry)

        horizon = self.query_window if window is None else window
        peer.sim.call_at(peer.sim.now + horizon, close)
        return pending.event

    def _complete(self, key: tuple[str, int], entry: _PendingQuery) -> None:
        """Finish a query (early or at window close) exactly once."""
        self._pending.pop(key, None)
        results = entry.finish()
        self.stats.results_returned += len(results)
        if entry.span is not None:
            entry.span.end(results=len(entry.results), replies=entry.replies_seen)
            entry.span = None

    def _send_query(
        self, peer: Peer, req: int, spec: QuerySpec, pending: _PendingQuery
    ) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    # -- reply plumbing ------------------------------------------------------------------
    def _reply(self, via_peer: Peer, origin: str, req: int, advs: list[Advertisement]) -> None:
        if not advs:
            advs = []
        size = 64 + sum(a.wire_size() for a in advs)
        via_peer.send(origin, f"{self.KIND_PREFIX}-reply", payload=(req, advs), size_bytes=size)
        self.stats.reply_messages += 1

    def _on_reply(self, message: Message) -> None:
        req, advs = message.payload
        entry = self._pending.get((message.dst, req))
        if entry is None or entry.done:
            return
        entry.add(advs)
        entry.replies_seen += 1
        # Receiving a reply also teaches the local cache (JXTA behaviour).
        for adv in advs:
            self._peers[message.dst].cache.put(adv)
        if (
            entry.expected_replies is not None
            and entry.replies_seen >= entry.expected_replies
        ):
            self._complete((message.dst, req), entry)


class CentralIndexDiscovery(DiscoveryService):
    """Napster-style central index.

    "Napster is not a true P2P system since the availability of peers is
    located through a central database" — the baseline strategy.
    """

    KIND_PREFIX = "central"

    def __init__(self, query_window: float = 2.0):
        super().__init__(query_window)
        self.index_id: Optional[str] = None

    def set_index(self, peer: Peer) -> None:
        """Designate the index node (must already be attached)."""
        self.peer(peer.peer_id)
        self.index_id = peer.peer_id

    def set_index_id(self, peer_id: str) -> None:
        """Designate a *remote* index by id (multi-process transports).

        The index peer lives in another OS process, so it cannot be
        attached locally; publishes and queries simply address frames
        to ``peer_id`` over the transport.
        """
        self.index_id = peer_id

    def _attach_extra(self, peer: Peer) -> None:
        peer.on("central-publish", self._on_publish)
        peer.on("central-query", self._on_query)

    def publish(self, peer: Peer, adv: Advertisement) -> None:
        if self.index_id is None:
            raise DiscoveryError("central index not designated")
        self.stats.publishes += 1
        peer.cache.put(adv)
        if peer.peer_id == self.index_id:
            return
        peer.send(self.index_id, "central-publish", payload=adv, size_bytes=adv.wire_size())

    def _on_publish(self, message: Message) -> None:
        self._peers[message.dst].cache.put(message.payload)

    def _send_query(self, peer: Peer, req: int, spec: QuerySpec, pending: _PendingQuery) -> None:
        if self.index_id is None:
            raise DiscoveryError("central index not designated")
        if peer.peer_id == self.index_id:
            pending.add(peer.cache.query(peer.sim.now, spec.adv_type, spec.name, spec.predicate))
            return
        pending.expected_replies = 1
        peer.send(self.index_id, "central-query", payload=(req, spec), size_bytes=128)
        self.stats.query_messages += 1

    def _on_query(self, message: Message) -> None:
        req, spec = message.payload
        index = self._peers[message.dst]
        hits = index.cache.query(index.sim.now, spec.adv_type, spec.name, spec.predicate)
        self._reply(index, message.src, req, hits)


class FloodingDiscovery(DiscoveryService):
    """Gnutella-style TTL flood over the overlay graph."""

    KIND_PREFIX = "flood"

    def __init__(self, ttl: int = 4, query_window: float = 2.0):
        super().__init__(query_window)
        if ttl < 1:
            raise DiscoveryError("flood TTL must be >= 1")
        self.ttl = ttl
        self._seen: dict[str, set[tuple[str, int]]] = {}

    def _attach_extra(self, peer: Peer) -> None:
        peer.on("flood-query", self._on_query)
        self._seen[peer.peer_id] = set()

    def publish(self, peer: Peer, adv: Advertisement) -> None:
        # Flooding networks publish only locally; queries do the walking.
        self.stats.publishes += 1
        peer.cache.put(adv)

    def _send_query(self, peer: Peer, req: int, spec: QuerySpec, pending: _PendingQuery) -> None:
        self._seen[peer.peer_id].add((peer.peer_id, req))
        for nb in peer.network.neighbours(peer.peer_id):
            peer.send(
                nb,
                "flood-query",
                payload=(peer.peer_id, req, spec, self.ttl),
                size_bytes=128,
            )
            self.stats.query_messages += 1

    def _on_query(self, message: Message) -> None:
        origin, req, spec, ttl = message.payload
        me = self._peers[message.dst]
        key = (origin, req)
        if key in self._seen[me.peer_id]:
            return
        self._seen[me.peer_id].add(key)
        hits = me.cache.query(me.sim.now, spec.adv_type, spec.name, spec.predicate)
        if hits and me.peer_id != origin:
            self._reply(me, origin, req, hits)
        if ttl > 1:
            for nb in me.network.neighbours(me.peer_id):
                if nb == message.src:
                    continue
                me.send(
                    nb,
                    "flood-query",
                    payload=(origin, req, spec, ttl - 1),
                    size_bytes=128,
                )
                self.stats.query_messages += 1


class RendezvousDiscovery(DiscoveryService):
    """JXTA-style rendezvous super-peer discovery.

    Edge peers publish to their rendezvous; a query goes to the peer's
    rendezvous, which consults its own cache and forwards the query once
    to each other rendezvous.  Message cost per query is O(#rendezvous),
    independent of network size.
    """

    KIND_PREFIX = "rdv"

    def __init__(self, query_window: float = 2.0):
        super().__init__(query_window)
        self.rendezvous_ids: list[str] = []
        self._assigned: dict[str, str] = {}

    def add_rendezvous(self, peer: Peer) -> None:
        self.peer(peer.peer_id)
        if peer.peer_id not in self.rendezvous_ids:
            self.rendezvous_ids.append(peer.peer_id)

    def rendezvous_for(self, peer_id: str) -> str:
        """Deterministic edge→rendezvous assignment (round-robin by order)."""
        if not self.rendezvous_ids:
            raise DiscoveryError("no rendezvous peers designated")
        if peer_id in self.rendezvous_ids:
            return peer_id
        if peer_id not in self._assigned:
            idx = len(self._assigned) % len(self.rendezvous_ids)
            self._assigned[peer_id] = self.rendezvous_ids[idx]
        return self._assigned[peer_id]

    def _attach_extra(self, peer: Peer) -> None:
        peer.on("rdv-publish", self._on_publish)
        peer.on("rdv-query", self._on_query)
        peer.on("rdv-forward", self._on_forward)

    def publish(self, peer: Peer, adv: Advertisement) -> None:
        self.stats.publishes += 1
        peer.cache.put(adv)
        rdv = self.rendezvous_for(peer.peer_id)
        if rdv != peer.peer_id:
            peer.send(rdv, "rdv-publish", payload=adv, size_bytes=adv.wire_size())

    def _on_publish(self, message: Message) -> None:
        self._peers[message.dst].cache.put(message.payload)

    def _send_query(self, peer: Peer, req: int, spec: QuerySpec, pending: _PendingQuery) -> None:
        rdv_id = self.rendezvous_for(peer.peer_id)
        pending.expected_replies = len(self.rendezvous_ids)
        if rdv_id == peer.peer_id:
            # A rendezvous queries itself locally and forwards to the others.
            pending.expected_replies = len(self.rendezvous_ids) - 1
            pending.add(peer.cache.query(peer.sim.now, spec.adv_type, spec.name, spec.predicate))
            if pending.expected_replies == 0:
                self._complete((peer.peer_id, req), pending)
                return
            for other in self.rendezvous_ids:
                if other != peer.peer_id:
                    peer.send(other, "rdv-forward", payload=(peer.peer_id, req, spec), size_bytes=128)
                    self.stats.query_messages += 1
        else:
            peer.send(rdv_id, "rdv-query", payload=(peer.peer_id, req, spec), size_bytes=128)
            self.stats.query_messages += 1

    def _on_query(self, message: Message) -> None:
        origin, req, spec = message.payload
        rdv = self._peers[message.dst]
        hits = rdv.cache.query(rdv.sim.now, spec.adv_type, spec.name, spec.predicate)
        self._reply(rdv, origin, req, hits)
        for other in self.rendezvous_ids:
            if other != rdv.peer_id:
                rdv.send(other, "rdv-forward", payload=(origin, req, spec), size_bytes=128)
                self.stats.query_messages += 1

    def _on_forward(self, message: Message) -> None:
        origin, req, spec = message.payload
        rdv = self._peers[message.dst]
        hits = rdv.cache.query(rdv.sim.now, spec.adv_type, spec.name, spec.predicate)
        self._reply(rdv, origin, req, hits)
