"""The simulated consumer network (system S2).

The paper targets "resources such as DSL/Cable" — asymmetric, modest-
bandwidth home links with appreciable latency — connected over an overlay.
This module models exactly that on top of the discrete-event kernel:

* every node has a :class:`NodeProfile` (uplink/downlink bandwidth,
  access latency, CPU speed used by the execution cost model);
* message delivery time = source access latency + destination access
  latency + serialisation time over the slower of the two directions
  (uplink of the sender, downlink of the receiver), plus deterministic
  jitter drawn from a named RNG stream;
* nodes can be taken offline (churn); messages to offline nodes are
  counted and dropped — reliability is the job of higher layers;
* an optional *overlay graph* restricts which nodes are neighbours, which
  is what flooding discovery walks;
* fault hooks for the chaos layer (:mod:`repro.faults`): named partitions
  that cut delivery between node groups, probabilistic message corruption
  (detected by checksum at the receiver and discarded), duplication and
  reordering, and per-node CPU speed factors for straggler injection.

All behaviour is deterministic for a given simulator seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import networkx as nx

from ..simkernel import Simulator
from .errors import NetworkError

__all__ = [
    "NodeProfile", "Message", "NetStats", "SimNetwork",
    "DSL_PROFILE", "LAN_PROFILE", "chunk_sizes",
]


def chunk_sizes(total_bytes: int, chunk_bytes: int) -> list[int]:
    """Split a transfer into fixed-size chunks (last one ragged).

    The framing used by chunked module transfers: under contention each
    chunk claims the uplink separately, so several transfers interleave
    chunk-by-chunk instead of serialising whole payloads.
    """
    if chunk_bytes <= 0:
        raise NetworkError("chunk_bytes must be positive")
    if total_bytes <= 0:
        return [0]
    full, rest = divmod(total_bytes, chunk_bytes)
    return [chunk_bytes] * full + ([rest] if rest else [])


@dataclass(frozen=True, slots=True)
class NodeProfile:
    """Link and host characteristics of one network node.

    Defaults approximate a 2003-era DSL consumer line and desktop PC.
    """

    up_bps: float = 256e3 / 8  # 256 kbit/s uplink in bytes/s
    down_bps: float = 1e6 / 8  # 1 Mbit/s downlink in bytes/s
    latency_s: float = 0.020  # one-way access latency
    cpu_flops: float = 2.0e9  # ~2 GHz PC (the paper's reference machine)
    ram_bytes: int = 512 * 1024 * 1024

    def __post_init__(self):
        if self.up_bps <= 0 or self.down_bps <= 0:
            raise ValueError("bandwidths must be positive")
        if self.latency_s < 0:
            raise ValueError("latency must be >= 0")
        if self.cpu_flops <= 0:
            raise ValueError("cpu_flops must be positive")


#: Convenience profiles.
DSL_PROFILE = NodeProfile()
LAN_PROFILE = NodeProfile(
    up_bps=100e6 / 8, down_bps=100e6 / 8, latency_s=0.0005, cpu_flops=2.0e9
)


@dataclass(slots=True)
class Message:
    """One network message.

    ``slots=True``: a 100k-peer swarm allocates one of these per
    heartbeat/gossip hop, so the instance dict is worth eliminating.
    """

    kind: str
    src: str
    dst: str
    payload: Any = None
    size_bytes: int = 256

    def __post_init__(self):
        if self.size_bytes < 0:
            raise ValueError("size_bytes must be >= 0")


@dataclass(slots=True)
class NetStats:
    """Aggregate traffic accounting for one network."""

    sent: int = 0
    delivered: int = 0
    dropped_offline: int = 0
    dropped_loss: int = 0
    dropped_partition: int = 0
    corrupted: int = 0
    duplicated: int = 0
    reordered: int = 0
    bytes_sent: int = 0
    #: frames scheduled for delivery but not yet handed to a receiver
    #: (includes frames that will be dropped in flight)
    in_flight: int = 0
    in_flight_bytes: int = 0
    by_kind: dict[str, int] = field(default_factory=dict)


class SimNetwork:
    """Message-passing fabric connecting simulated nodes.

    With ``contention=False`` (default) transfers are independent: each
    message takes its own :meth:`transfer_time` regardless of concurrent
    traffic.  With ``contention=True`` each node's uplink and downlink
    are serialised resources — concurrent sends queue, which is how a
    consumer DSL line actually behaves when a controller blasts frames
    at a farm.
    """

    def __init__(
        self,
        sim: Simulator,
        jitter_fraction: float = 0.1,
        contention: bool = False,
        loss_fraction: float = 0.0,
        corrupt_fraction: float = 0.0,
        duplicate_fraction: float = 0.0,
        reorder_fraction: float = 0.0,
    ):
        for name, frac in (
            ("loss_fraction", loss_fraction),
            ("corrupt_fraction", corrupt_fraction),
            ("duplicate_fraction", duplicate_fraction),
            ("reorder_fraction", reorder_fraction),
        ):
            if not 0.0 <= frac < 1.0:
                raise NetworkError(f"{name} must be in [0, 1)")
        self.sim = sim
        self.jitter_fraction = jitter_fraction
        self.contention = contention
        self.loss_fraction = loss_fraction
        self.corrupt_fraction = corrupt_fraction
        self.duplicate_fraction = duplicate_fraction
        self.reorder_fraction = reorder_fraction
        self._profiles: dict[str, NodeProfile] = {}
        self._handlers: dict[str, Callable[[Message], None]] = {}
        self._online: dict[str, bool] = {}
        self._speed_factors: dict[str, float] = {}
        self._uplinks: dict[str, "object"] = {}
        self._downlinks: dict[str, "object"] = {}
        self._cuts: dict[int, tuple[frozenset[str], frozenset[str]]] = {}
        self._next_cut_id = 1
        self.overlay = nx.Graph()
        self.stats = NetStats()
        #: per-peer compute-fault models, keyed by peer id.  The faults
        #: layer installs entries, the service layer polls them — this
        #: neutral dict is the only coupling point between the two.
        self.compute_faults: dict[str, Any] = {}

    # -- membership ---------------------------------------------------------
    def add_node(
        self,
        node_id: str,
        handler: Callable[[Message], None],
        profile: Optional[NodeProfile] = None,
    ) -> None:
        """Register a node with its message handler."""
        if node_id in self._profiles:
            raise NetworkError(f"node {node_id!r} already registered")
        self._profiles[node_id] = profile or DSL_PROFILE
        self._handlers[node_id] = handler
        self._online[node_id] = True
        self.overlay.add_node(node_id)

    def remove_node(self, node_id: str) -> None:
        self._require(node_id)
        del self._profiles[node_id]
        del self._handlers[node_id]
        del self._online[node_id]
        self.overlay.remove_node(node_id)

    def nodes(self) -> list[str]:
        return list(self._profiles)

    def profile(self, node_id: str) -> NodeProfile:
        self._require(node_id)
        return self._profiles[node_id]

    def _require(self, node_id: str) -> None:
        if node_id not in self._profiles:
            raise NetworkError(f"unknown node {node_id!r}")

    # -- liveness -------------------------------------------------------------
    def set_online(self, node_id: str, online: bool) -> None:
        self._require(node_id)
        if self._online[node_id] == online:
            return
        self._online[node_id] = online
        tracer = self.sim.tracer
        if tracer.enabled:
            # Liveness transitions feed the analyzer's per-peer
            # unavailable-time accounting (repro.observe.analyze).
            tracer.instant(
                "peer.online" if online else "peer.offline",
                category="p2p", track=node_id,
            )

    def is_online(self, node_id: str) -> bool:
        self._require(node_id)
        return self._online[node_id]

    def trace_liveness_snapshot(self) -> None:
        """Record a ``peer.offline`` instant for every offline node.

        :meth:`set_online` only traces *transitions*, so when a tracer
        is installed late (the ``trace_out`` opt-in in
        :meth:`ConsumerGrid.run <repro.grid.ConsumerGrid.run>`), peers
        already offline would otherwise look idle — not unavailable —
        to the analyzer's utilization accounting.  Call this right
        after installing a tracer to seed initial liveness.
        """
        tracer = self.sim.tracer
        if not tracer.enabled:
            return
        for node_id in sorted(self._online):
            if not self._online[node_id]:
                tracer.instant("peer.offline", category="p2p", track=node_id)

    def telemetry_sample(self) -> dict[str, int]:
        """Traffic counters for the live telemetry sampler."""
        stats = self.stats
        return {
            "sent": stats.sent,
            "delivered": stats.delivered,
            "bytes_sent": stats.bytes_sent,
            "in_flight": stats.in_flight,
            "in_flight_bytes": stats.in_flight_bytes,
            "dropped": (
                stats.dropped_offline
                + stats.dropped_loss
                + stats.dropped_partition
            ),
            "offline": sum(1 for up in self._online.values() if not up),
        }

    # -- straggler injection ---------------------------------------------------
    def set_speed_factor(self, node_id: str, factor: float) -> None:
        """Scale a node's effective CPU speed (straggler slowdown).

        ``factor`` multiplies the profile's ``cpu_flops`` wherever a
        consumer asks via :meth:`speed_factor`; 1.0 restores full speed.
        """
        self._require(node_id)
        if factor <= 0:
            raise NetworkError("speed factor must be positive")
        if factor == 1.0:
            self._speed_factors.pop(node_id, None)
        else:
            self._speed_factors[node_id] = factor

    def speed_factor(self, node_id: str) -> float:
        return self._speed_factors.get(node_id, 1.0)

    # -- partitions -----------------------------------------------------------
    def partition(self, group_a, group_b) -> int:
        """Cut delivery between two node groups; returns a cut id.

        Messages whose endpoints straddle the cut are counted as
        ``dropped_partition`` and never delivered until :meth:`heal`.
        """
        a = frozenset(group_a)
        b = frozenset(group_b)
        for node in a | b:
            self._require(node)
        if a & b:
            raise NetworkError(f"partition groups overlap: {sorted(a & b)}")
        if not a or not b:
            raise NetworkError("partition groups must be non-empty")
        cut_id = self._next_cut_id
        self._next_cut_id += 1
        self._cuts[cut_id] = (a, b)
        return cut_id

    def heal(self, cut_id: Optional[int] = None) -> None:
        """Remove one partition cut (or all of them when ``cut_id`` is None)."""
        if cut_id is None:
            self._cuts.clear()
        elif cut_id in self._cuts:
            del self._cuts[cut_id]

    def partitioned(self, a: str, b: str) -> bool:
        """True when any active cut separates nodes ``a`` and ``b``."""
        for group_a, group_b in self._cuts.values():
            if (a in group_a and b in group_b) or (a in group_b and b in group_a):
                return True
        return False

    # -- overlay -------------------------------------------------------------
    def add_edge(self, a: str, b: str) -> None:
        """Declare two nodes overlay neighbours (for flooding)."""
        self._require(a)
        self._require(b)
        self.overlay.add_edge(a, b)

    def neighbours(self, node_id: str) -> list[str]:
        self._require(node_id)
        return sorted(self.overlay.neighbors(node_id))

    def random_overlay(self, degree: int = 4, stream: str = "overlay") -> None:
        """Wire a random connected overlay of roughly the given degree."""
        ids = sorted(self._profiles)
        if len(ids) < 2:
            return
        rng = self.sim.rng(stream)
        # Ring ensures connectivity; extra random edges approximate degree.
        for i, node in enumerate(ids):
            self.overlay.add_edge(node, ids[(i + 1) % len(ids)])
        extra = max(0, (degree - 2)) * len(ids) // 2
        for _ in range(extra):
            a, b = rng.choice(len(ids), size=2, replace=False)
            self.overlay.add_edge(ids[a], ids[b])

    # -- transfer model -----------------------------------------------------------
    def transfer_time(self, src: str, dst: str, size_bytes: int) -> float:
        """Modelled one-way delivery time for ``size_bytes``."""
        p_src, p_dst = self.profile(src), self.profile(dst)
        wire = size_bytes / min(p_src.up_bps, p_dst.down_bps)
        return p_src.latency_s + p_dst.latency_s + wire

    def send(self, message: Message) -> float:
        """Schedule delivery of ``message``; returns the modelled delay.

        Messages to offline (or sender-offline) nodes are dropped silently
        apart from stats — consumer links fail without notice.
        """
        # Hot path: one call per simulated message.  Endpoint validation
        # is inlined and locals are hoisted so a send costs a handful of
        # dict lookups instead of repeated method dispatch.
        src, dst, size = message.src, message.dst, message.size_bytes
        profiles = self._profiles
        if src not in profiles:
            raise NetworkError(f"unknown node {src!r}")
        if dst not in profiles:
            raise NetworkError(f"unknown node {dst!r}")
        stats = self.stats
        stats.sent += 1
        stats.bytes_sent += size
        by_kind = stats.by_kind
        by_kind[message.kind] = by_kind.get(message.kind, 0) + 1
        tracer = self.sim.tracer
        traced = tracer.enabled
        if traced:
            tracer.metrics.counter("p2p.messages_sent").inc()
            tracer.metrics.histogram("p2p.message_bytes").observe(size)
            tracer.instant(
                "net.send", category="p2p", track=src,
                kind=message.kind, dst=dst, size=size,
            )
        # Inlined transfer_time (same float expression, profiles already
        # fetched).
        p_src, p_dst = profiles[src], profiles[dst]
        delay = p_src.latency_s + p_dst.latency_s + size / min(p_src.up_bps, p_dst.down_bps)
        if self.jitter_fraction > 0:
            jitter = self.sim.rng("net-jitter").uniform(0, self.jitter_fraction)
            delay *= 1.0 + jitter
        online = self._online
        if not online[src] or not online[dst]:
            stats.dropped_offline += 1
            if traced:
                self._trace_drop(tracer, message, "offline")
            return delay
        if self._cuts and self.partitioned(src, dst):
            stats.dropped_partition += 1
            if traced:
                self._trace_drop(tracer, message, "partition")
            return delay
        if (
            self.loss_fraction > 0.0
            and self.sim.rng("net-loss").random() < self.loss_fraction
        ):
            self.stats.dropped_loss += 1
            if traced:
                self._trace_drop(tracer, message, "loss")
            return delay
        if (
            self.corrupt_fraction > 0.0
            and self.sim.rng("net-corrupt").random() < self.corrupt_fraction
        ):
            # Garbled in flight; the receiver's checksum catches it and the
            # frame is discarded — recovery is the job of higher layers.
            self.stats.corrupted += 1
            if traced:
                # The chaos-corruption tag: checksum failure at the receiver.
                self._trace_drop(tracer, message, "corrupt", chaos=True)
            return delay
        if (
            self.reorder_fraction > 0.0
            and self.sim.rng("net-reorder").random() < self.reorder_fraction
        ):
            # Held back long enough to arrive behind later traffic.
            self.stats.reordered += 1
            delay *= 1.0 + float(self.sim.rng("net-reorder").uniform(1.0, 3.0))

        def deliver() -> None:
            # The destination may have gone offline (or been partitioned
            # away) while in flight.
            tracer = self.sim.tracer
            self.stats.in_flight -= 1
            self.stats.in_flight_bytes -= message.size_bytes
            if not self._online.get(message.dst, False):
                self.stats.dropped_offline += 1
                if tracer.enabled:
                    self._trace_drop(tracer, message, "offline")
                return
            if self._cuts and self.partitioned(message.src, message.dst):
                self.stats.dropped_partition += 1
                if tracer.enabled:
                    self._trace_drop(tracer, message, "partition")
                return
            self.stats.delivered += 1
            if tracer.enabled:
                tracer.metrics.counter("p2p.messages_delivered").inc()
                tracer.instant(
                    "net.recv", category="p2p", track=message.dst,
                    kind=message.kind, src=message.src, size=message.size_bytes,
                )
            self._handlers[message.dst](message)

        duplicated = (
            self.duplicate_fraction > 0.0
            and self.sim.rng("net-dup").random() < self.duplicate_fraction
        )
        if duplicated:
            self.stats.duplicated += 1
            if traced:
                tracer.metrics.counter("p2p.duplicated").inc()
                tracer.instant(
                    "net.duplicate", category="p2p", track=message.src,
                    kind=message.kind, dst=message.dst, chaos=True,
                )
        # In-flight accounting (read by the telemetry sampler): one copy
        # per scheduled delivery; deliver() balances each on arrival.
        copies = 2 if duplicated else 1
        stats.in_flight += copies
        stats.in_flight_bytes += size * copies
        if self.contention:
            self.sim.process(
                self._contended_delivery(message, deliver),
                name="net-transfer",
            )
            if duplicated:
                self.sim.process(
                    self._contended_delivery(message, deliver),
                    name="net-transfer-dup",
                )
        else:
            self.sim.call_at(self.sim.now + delay, deliver)
            if duplicated:
                self.sim.call_at(self.sim.now + delay * 1.5, deliver)
        return delay

    def _trace_drop(self, tracer, message: Message, reason: str, chaos: bool = False) -> None:
        """Record a dropped/discarded frame, tagged with why it died."""
        tracer.metrics.counter(f"p2p.dropped_{reason}").inc()
        attrs = dict(kind=message.kind, src=message.src, reason=reason)
        if chaos:
            attrs["chaos"] = True
        tracer.instant("net.drop", category="p2p", track=message.dst, **attrs)

    def _link(self, table: dict, node_id: str) -> "Resource":
        from ..simkernel import Resource

        if node_id not in table:
            table[node_id] = Resource(self.sim, capacity=1)
        return table[node_id]

    def _contended_delivery(self, message: Message, deliver: Callable[[], None]):
        """Serialise the wire time on the sender's uplink, then the
        receiver's downlink, with access latency in between."""
        p_src = self.profile(message.src)
        p_dst = self.profile(message.dst)
        up = self._link(self._uplinks, message.src)
        req = up.request()
        yield req
        try:
            yield self.sim.timeout(message.size_bytes / p_src.up_bps)
        finally:
            up.release(req)
        yield self.sim.timeout(p_src.latency_s + p_dst.latency_s)
        down = self._link(self._downlinks, message.dst)
        req = down.request()
        yield req
        try:
            yield self.sim.timeout(message.size_bytes / p_dst.down_bps)
        finally:
            down.release(req)
        deliver()

    def broadcast(self, src: str, kind: str, payload: Any, size_bytes: int = 256) -> int:
        """Send to every overlay neighbour; returns number of sends."""
        count = 0
        for nb in self.neighbours(src):
            self.send(Message(kind=kind, src=src, dst=nb, payload=payload, size_bytes=size_bytes))
            count += 1
        return count
