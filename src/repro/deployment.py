"""Multi-process Consumer Grid deployment over the TCP transport.

This is the "real" counterpart of :class:`~repro.grid.ConsumerGrid`:
the same portal / controller / worker assembly, but spread across OS
processes connected by :class:`~repro.transport.tcp.TcpTransport`.

* :class:`ControllerNode` — runs in the launching process and co-hosts
  two peers behind one listening port, exactly like the paper's portal
  machine: ``portal`` (module repository + central discovery index) and
  ``controller`` (the Triana controller service).
* :class:`WorkerNode` — one volunteer process hosting a single worker
  peer with a :class:`~repro.service.worker.TrianaService`.  Launched
  via ``python -m repro.deployment`` (see :func:`worker_main`).
* :func:`run_tcp_localhost` — the one-call launcher: spawns N worker
  subprocesses, waits for their advertisements to reach the index, runs
  a task graph through the unchanged controller/policy/recovery stack,
  shuts the workers down, and returns the ordinary
  :class:`~repro.service.controller.RunReport`.

Everything above the transport — discovery, deployment retries, module
fetching, heartbeats, integrity, distribution policies — is the same
code the simulator runs; only the substrate and the clock differ.

Quickstart (two terminals) is documented in ``docs/deployment.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .core.registry import UnitRegistry, global_registry
from .core.taskgraph import TaskGraph
from .mobility.repository import ModuleRepository
from .p2p.discovery import CentralIndexDiscovery
from .p2p.network import LAN_PROFILE, NodeProfile
from .p2p.peer import Peer
from .service.controller import RunReport, TrianaController
from .service.worker import TrianaService
from .transport import RealtimeSimulator, TcpTransport

__all__ = [
    "WorkerNode",
    "ControllerNode",
    "run_tcp_localhost",
    "worker_main",
]

Address = Tuple[str, int]

#: Discovery index + module repository live on this co-hosted peer.
PORTAL_ID = "portal"
CONTROLLER_ID = "controller"
#: Protocol kind asking a worker process to exit its serve loop.
SHUTDOWN_KIND = "node-shutdown"


class WorkerNode:
    """One volunteer OS process: a worker peer + Triana service daemon."""

    def __init__(
        self,
        peer_id: str,
        port: int,
        peers: Dict[str, Address],
        seed: int = 0,
        efficiency: float = 1.0,
        query_window: float = 0.5,
        host: str = "127.0.0.1",
        profile: Optional[NodeProfile] = None,
        advert_interval: float = 2.0,
    ):
        self.sim = RealtimeSimulator(seed=seed)
        self.transport = TcpTransport(self.sim, host=host, port=port, peers=peers)
        self.peer = Peer(peer_id, self.transport, profile=profile or LAN_PROFILE)
        self.discovery = CentralIndexDiscovery(query_window=query_window)
        self.discovery.attach(self.peer)
        self.discovery.set_index_id(PORTAL_ID)
        self.service = TrianaService(
            self.peer, repository_host=PORTAL_ID, efficiency=efficiency
        )
        self.advert_interval = advert_interval
        self._shutdown = self.sim.event()
        self.peer.on(SHUTDOWN_KIND, lambda _msg: self._shutdown.succeed(None))

    def _advertise_loop(self):
        # Re-publish until shutdown: the first publish may race the
        # portal process binding its socket, and the index replaces
        # records keyed by (type, name, publisher), so this is an
        # idempotent keep-alive rather than duplicate registration.
        while not self._shutdown.triggered:
            self.discovery.publish(self.peer, self.service.advertisement())
            yield self.sim.timeout(self.advert_interval)

    def serve(self) -> None:
        """Publish, then process protocol traffic until told to exit."""
        self.sim.process(self._advertise_loop(), name=f"advertise/{self.peer.peer_id}")
        try:
            self.sim.run(until=self._shutdown)
        finally:
            self.transport.close()


class ControllerNode:
    """The launching process: portal peer + controller peer, one port."""

    def __init__(
        self,
        port: int,
        peers: Dict[str, Address],
        seed: int = 0,
        query_window: float = 0.5,
        heartbeat_interval: float = 10.0,
        retry_timeout: float = 120.0,
        retry_interval: float = 30.0,
        host: str = "127.0.0.1",
        registry: Optional[UnitRegistry] = None,
    ):
        self.sim = RealtimeSimulator(seed=seed)
        self.transport = TcpTransport(self.sim, host=host, port=port, peers=peers)
        self.discovery = CentralIndexDiscovery(query_window=query_window)

        self.portal = Peer(PORTAL_ID, self.transport, profile=LAN_PROFILE)
        self.discovery.attach(self.portal)
        self.repository = ModuleRepository(
            self.portal, registry if registry is not None else global_registry()
        )

        self.controller_peer = Peer(CONTROLLER_ID, self.transport, profile=LAN_PROFILE)
        self.discovery.attach(self.controller_peer)
        self.discovery.set_index(self.portal)

        self.controller = TrianaController(
            self.controller_peer,
            self.discovery,
            retry_timeout=retry_timeout,
            retry_interval=retry_interval,
            heartbeat_interval=heartbeat_interval,
        )

    def wait_for_workers(self, expect: int, deadline_s: float = 30.0) -> List[str]:
        """Query discovery until ``expect`` workers advertise, or raise."""
        deadline = time.monotonic() + deadline_s
        found: List[str] = []
        while time.monotonic() < deadline:
            ev = self.controller.discover_workers()
            found = self.sim.run(until=ev)
            if len(found) >= expect:
                return found
        raise TimeoutError(
            f"only {len(found)}/{expect} workers discovered within "
            f"{deadline_s:.0f}s: {found}"
        )

    def run(
        self,
        graph: TaskGraph,
        iterations: int,
        workers: List[str],
        dispatch: str = "round_robin",
        probes: Tuple[str, ...] = (),
        verification: str = "none",
    ) -> RunReport:
        """Run ``graph`` over the discovered workers; blocks until done."""
        done = self.controller.run_distributed(
            graph, iterations, workers, probes,
            dispatch=dispatch, verification=verification,
        )
        return self.sim.run(until=done)

    def shutdown_workers(self, workers: List[str]) -> None:
        """Ask every worker process to exit, then flush the frames out."""
        for worker in workers:
            self.controller_peer.send(worker, SHUTDOWN_KIND, size_bytes=32)
        self.sim.run()  # settle: let the writer tasks drain

    def close(self) -> None:
        self.transport.close()


# ---------------------------------------------------------------------------
# launcher
# ---------------------------------------------------------------------------


def _free_ports(count: int, host: str = "127.0.0.1") -> List[int]:
    """Reserve ``count`` distinct free TCP ports (best effort)."""
    sockets, ports = [], []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.bind((host, 0))
            sockets.append(sock)
            ports.append(sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return ports


def _worker_env() -> Dict[str, str]:
    """Subprocess environment with this package importable."""
    env = dict(os.environ)
    src_dir = str(Path(__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_dir + (os.pathsep + existing if existing else "")
        )
    return env


def launch_worker(
    peer_id: str,
    port: int,
    peers: Dict[str, Address],
    efficiency: float = 1.0,
    query_window: float = 0.5,
    python: str = sys.executable,
) -> subprocess.Popen:
    """Spawn one :class:`WorkerNode` OS process."""
    argv = [
        python,
        "-m",
        "repro.deployment",
        "--peer-id", peer_id,
        "--port", str(port),
        "--peers", json.dumps({k: list(v) for k, v in peers.items()}),
        "--efficiency", repr(efficiency),
        "--query-window", repr(query_window),
    ]
    return subprocess.Popen(argv, env=_worker_env())


def run_tcp_localhost(
    graph: TaskGraph,
    iterations: int,
    n_workers: int = 2,
    dispatch: str = "round_robin",
    probes: Tuple[str, ...] = (),
    verification: str = "none",
    seed: int = 0,
    query_window: float = 0.5,
    heartbeat_interval: float = 10.0,
    worker_efficiency: float = 1.0,
    startup_deadline: float = 30.0,
    registry: Optional[UnitRegistry] = None,
) -> RunReport:
    """Run ``graph`` across ``1 + n_workers`` OS processes on localhost.

    The calling process hosts the portal and controller peers; each
    worker is a separate Python subprocess.  Module code reaches the
    workers through the ordinary repository protocol (fetch → cache →
    sandbox → local engine), so nothing about the graph needs to be
    pre-installed on the worker side beyond the package itself.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    host = "127.0.0.1"
    ports = _free_ports(1 + n_workers, host)
    addresses: Dict[str, Address] = {
        PORTAL_ID: (host, ports[0]),
        CONTROLLER_ID: (host, ports[0]),
    }
    worker_ids = [f"worker-{i}" for i in range(n_workers)]
    for worker_id, port in zip(worker_ids, ports[1:]):
        addresses[worker_id] = (host, port)

    procs = [
        launch_worker(
            worker_id,
            addresses[worker_id][1],
            addresses,
            efficiency=worker_efficiency,
            query_window=query_window,
        )
        for worker_id in worker_ids
    ]
    node = ControllerNode(
        ports[0],
        addresses,
        seed=seed,
        query_window=query_window,
        heartbeat_interval=heartbeat_interval,
        registry=registry,
    )
    try:
        workers = node.wait_for_workers(n_workers, deadline_s=startup_deadline)
        report = node.run(
            graph, iterations, workers,
            dispatch=dispatch, probes=probes, verification=verification,
        )
        node.shutdown_workers(workers)
        return report
    finally:
        node.close()
        for proc in procs:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10.0)


# ---------------------------------------------------------------------------
# worker process entry point
# ---------------------------------------------------------------------------


def worker_main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.deployment`` — serve one worker node."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.deployment",
        description="Serve one Consumer Grid worker over TCP.",
    )
    parser.add_argument("--peer-id", required=True, help="worker peer id")
    parser.add_argument("--port", type=int, required=True, help="listen port")
    parser.add_argument(
        "--peers",
        required=True,
        help='JSON address map, e.g. {"portal": ["127.0.0.1", 9000], ...}',
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--efficiency", type=float, default=1.0)
    parser.add_argument("--query-window", type=float, default=0.5)
    args = parser.parse_args(argv)

    peers = {
        peer_id: (str(entry[0]), int(entry[1]))
        for peer_id, entry in json.loads(args.peers).items()
    }
    node = WorkerNode(
        args.peer_id,
        args.port,
        peers,
        seed=args.seed,
        efficiency=args.efficiency,
        query_window=args.query_window,
    )
    node.serve()
    return 0


if __name__ == "__main__":
    sys.exit(worker_main())
