"""Errors raised by the fault-injection subsystem."""

__all__ = ["FaultError", "FaultPlanError"]


class FaultError(Exception):
    """Base class for fault-injection failures."""


class FaultPlanError(FaultError):
    """A fault plan is malformed (unknown kind, bad targets, bad window)."""
