"""Schedules a :class:`FaultPlan` onto the simulation kernel.

The injector translates each declarative :class:`~repro.faults.plan.Fault`
into concrete simkernel events against a :class:`~repro.p2p.network.SimNetwork`:

* ``crash`` / ``portal-outage`` — when the affected :class:`~repro.p2p.peer.Peer`
  objects are known, outages are driven through a
  :class:`~repro.resources.availability.ScriptedAvailability` model so the
  usual availability stats and churn listeners fire; otherwise the node is
  toggled directly on the network.
* ``partition`` — a named cut between two node groups, healed when the
  window closes.
* ``corrupt`` / ``duplicate`` / ``reorder`` — the network-wide fraction is
  raised for the window and restored to its baseline afterwards (windows
  may stack; the *baseline* is whatever the network was built with).
* ``slowdown`` — the target's CPU speed factor is scaled for the window.

Every applied action is appended to :attr:`FaultInjector.log`, and
:meth:`summary` renders the counts the run report embeds.
"""

from __future__ import annotations

from typing import Any, Optional

from ..p2p.network import SimNetwork
from ..p2p.peer import Peer
from ..simkernel import Simulator
from .compute import COMPUTE_FAULT_KINDS, ComputeFaultModel, ComputeFaultWindow
from .errors import FaultError
from .plan import FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Applies a fault plan to a simulated network, deterministically."""

    def __init__(
        self,
        sim: Simulator,
        network: SimNetwork,
        plan: FaultPlan,
        peers: Optional[dict[str, Peer]] = None,
    ):
        self.sim = sim
        self.network = network
        self.plan = plan
        self.peers = dict(peers or {})
        #: chronological record of every action the injector took
        self.log: list[dict[str, Any]] = []
        #: availability models installed for crash faults, by peer id
        self.availability: dict[str, Any] = {}
        self._scheduled = False
        self._active_cuts: dict[int, int] = {}  # plan index -> network cut id
        #: (fault identity, target) -> installed compute-fault window
        self._compute_windows: dict[tuple[int, str], Any] = {}

    # -- scheduling -----------------------------------------------------------
    def schedule(self) -> "FaultInjector":
        """Install every fault onto the kernel.  Idempotent.

        Faults whose start time is already in the past are skipped (with a
        log entry) rather than fired late — a plan is a script, not a queue.
        """
        if self._scheduled:
            return self
        self._scheduled = True
        self.plan.validate(self.network.nodes())
        now = self.sim.now

        # Crash-like faults grouped per target so one ScriptedAvailability
        # model carries all of a peer's outage windows.
        outage_windows: dict[str, list[tuple[float, float]]] = {}
        for index, fault in enumerate(self.plan):
            if fault.at < now:
                self._log("skipped-past", fault.describe())
                continue
            if fault.kind in ("crash", "portal-outage"):
                for target in fault.targets or ("portal",):
                    outage_windows.setdefault(target, []).append(
                        (fault.at, fault.duration)
                    )
                continue
            if fault.kind == "partition":
                self.sim.call_at(fault.at, lambda f=fault, i=index: self._cut(i, f))
                if fault.duration > 0:
                    self.sim.call_at(
                        fault.ends_at, lambda f=fault, i=index: self._heal(i, f)
                    )
            elif fault.kind in ("corrupt", "duplicate", "reorder"):
                attr = f"{fault.kind}_fraction"
                baseline = getattr(self.network, attr)
                self.sim.call_at(
                    fault.at, lambda f=fault, a=attr: self._set_fraction(a, f)
                )
                self.sim.call_at(
                    fault.ends_at,
                    lambda f=fault, a=attr, b=baseline: self._restore_fraction(a, b, f),
                )
            elif fault.kind == "slowdown":
                self.sim.call_at(fault.at, lambda f=fault: self._slow(f))
                self.sim.call_at(fault.ends_at, lambda f=fault: self._unslow(f))
            elif fault.kind in COMPUTE_FAULT_KINDS:
                self.sim.call_at(fault.at, lambda f=fault: self._corrupt_compute(f))
                if fault.duration > 0:
                    self.sim.call_at(
                        fault.ends_at, lambda f=fault: self._heal_compute(f)
                    )
            else:  # pragma: no cover - FAULT_KINDS is closed
                raise FaultError(f"unhandled fault kind {fault.kind!r}")

        from ..resources.availability import ScriptedAvailability

        for target, windows in sorted(outage_windows.items()):
            peer = self.peers.get(target)
            if peer is not None:
                model = ScriptedAvailability(windows)
                model.on_down(lambda p: self._log("crash", p.peer_id))
                model.on_up(lambda p: self._log("restart", p.peer_id))
                model.install(peer)
                self.availability[target] = model
            else:
                # No Peer object — drive the network's liveness directly.
                for at, duration in windows:
                    self.sim.call_at(at, lambda t=target: self._down(t))
                    if duration > 0:
                        self.sim.call_at(at + duration, lambda t=target: self._up(t))
        return self

    # -- fault actions --------------------------------------------------------
    def _log(self, action: str, detail: str) -> None:
        self.log.append({"t": self.sim.now, "action": action, "detail": detail})

    def _down(self, target: str) -> None:
        self.network.set_online(target, False)
        self._log("crash", target)

    def _up(self, target: str) -> None:
        self.network.set_online(target, True)
        self._log("restart", target)

    def _cut(self, index: int, fault) -> None:
        self._active_cuts[index] = self.network.partition(
            fault.targets, fault.targets_b
        )
        self._log("partition", fault.describe())

    def _heal(self, index: int, fault) -> None:
        cut_id = self._active_cuts.pop(index, None)
        if cut_id is not None:
            self.network.heal(cut_id)
            self._log("heal", fault.describe())

    def _set_fraction(self, attr: str, fault) -> None:
        setattr(self.network, attr, fault.fraction)
        self._log(fault.kind, f"p={fault.fraction:g}")

    def _restore_fraction(self, attr: str, baseline: float, fault) -> None:
        setattr(self.network, attr, baseline)
        self._log(f"{fault.kind}-end", f"p={baseline:g}")

    def _corrupt_compute(self, fault) -> None:
        """Install a tampering window on each target's compute-fault model.

        Models live in ``SimNetwork.compute_faults`` — a neutral registry
        the worker service polls after every execution, so neither layer
        imports the other (``tools/check_layering.py`` enforces the
        faults → service direction).
        """
        for target in fault.targets:
            model = self.network.compute_faults.get(target)
            if model is None:
                model = ComputeFaultModel(peer_id=target)
                self.network.compute_faults[target] = model
            window = ComputeFaultWindow(
                kind=fault.kind,
                seed=fault.seed,
                fraction=fault.fraction,
                since=fault.at,
                until=fault.ends_at if fault.duration > 0 else float("inf"),
            )
            self._compute_windows[(id(fault), target)] = window
            model.add_window(window)
            self._log(fault.kind, f"{target} p={fault.fraction:g}")

    def _heal_compute(self, fault) -> None:
        for target in fault.targets:
            window = self._compute_windows.pop((id(fault), target), None)
            model = self.network.compute_faults.get(target)
            if window is not None and model is not None:
                model.remove_window(window)
                self._log(f"{fault.kind}-end", target)

    def _slow(self, fault) -> None:
        for target in fault.targets:
            self.network.set_speed_factor(target, fault.factor)
            self._log("slowdown", f"{target} x{fault.factor:g}")

    def _unslow(self, fault) -> None:
        for target in fault.targets:
            self.network.set_speed_factor(target, 1.0)
            self._log("slowdown-end", target)

    # -- reporting ------------------------------------------------------------
    @property
    def faults_injected(self) -> int:
        """Number of fault *onsets* applied so far (heals/ends excluded)."""
        onsets = {"crash", "partition", "corrupt", "duplicate", "reorder", "slowdown"}
        onsets |= COMPUTE_FAULT_KINDS
        return sum(1 for entry in self.log if entry["action"] in onsets)

    def telemetry_sample(self) -> dict[str, Any]:
        """Injection progress for the live telemetry sampler."""
        return {
            "planned": len(self.plan),
            "injected": self.faults_injected,
            "log_entries": len(self.log),
        }

    def summary(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "plan": self.plan.name,
            "planned": len(self.plan),
            "injected": self.faults_injected,
            "kinds": self.plan.kinds(),
            "log": list(self.log),
        }
        models = getattr(self.network, "compute_faults", {})
        if models:
            out["compute"] = [
                models[peer].summary() for peer in sorted(models)
            ]
        return out
