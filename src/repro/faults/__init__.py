"""Chaos layer (system S10): declarative fault injection for the grid.

The consumer network the paper targets is hostile by default — peers
"may disconnect at any time".  This package makes that hostility
*scriptable*:

* :class:`Fault` / :class:`FaultPlan` — declarative, validated, timed
  fault specs (crash, partition, corrupt, duplicate, reorder, slowdown,
  portal outage, and the compute-level saboteur family);
* :func:`chaos` — seed-driven preset plans (``mild`` | ``moderate`` |
  ``heavy`` | ``hostile``);
* :class:`FaultInjector` — schedules a plan onto the simkernel against a
  :class:`~repro.p2p.network.SimNetwork` (and, when peers are known,
  through :class:`~repro.resources.availability.ScriptedAvailability`);
* :class:`ComputeFaultModel` — per-peer wrong-answer state the worker
  service polls, so saboteurs corrupt *results* rather than messages.

See ``docs/robustness.md`` for the full fault model and how the adaptive
recovery and result-integrity layers in :mod:`repro.service` respond.
"""

from .compute import COMPUTE_FAULT_KINDS, ComputeFaultModel, ComputeFaultWindow
from .errors import FaultError, FaultPlanError
from .injector import FaultInjector
from .plan import (
    CHAOS_LEVELS,
    FAULT_KIND_DOCS,
    FAULT_KINDS,
    Fault,
    FaultPlan,
    chaos,
)

__all__ = [
    "CHAOS_LEVELS",
    "COMPUTE_FAULT_KINDS",
    "ComputeFaultModel",
    "ComputeFaultWindow",
    "FAULT_KIND_DOCS",
    "FAULT_KINDS",
    "Fault",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultPlanError",
    "chaos",
]
