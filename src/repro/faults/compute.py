"""Compute-level faults: peers that return *wrong answers*, not silence.

The transport faults in :mod:`repro.faults.plan` (corrupt/duplicate/
reorder) model a hostile *network*; every one of them is detectable at
the message layer (checksums, dedup, ordering) and therefore absorbed by
the recovery machinery without changing results.  This module models a
hostile *peer*: a volunteer whose machine computes the work but returns
plausible-but-wrong payloads — overclocked RAM, a tampered client, or an
outright saboteur farming credit.  No checksum can catch it, because the
wrong answer is wrapped in a perfectly valid message.

Three behaviours, all driven by :class:`ComputeFaultModel`:

* ``saboteur`` — a *consistent* liar: whether iteration ``i`` is
  corrupted, and what the corrupted payload looks like, is a pure
  function of ``(seed, peer, iteration)``.  Re-executing on the same
  peer reproduces the same wrong answer — which is exactly why result
  verification must replicate across *disjoint* peers.
* ``flaky_compute`` — a *transient* liar: each execution draws fresh, so
  a re-execution (even on the same peer) usually comes back clean.
  Models marginal hardware rather than malice.
* ``liar_heartbeat`` — a saboteur whose liveness signals stay pristine.
  In this simulation heartbeats are always healthy unless a peer is
  down, so the kind is behaviourally a saboteur; it exists as a distinct
  kind so plans, logs and reports can separate *loud* failures (crash,
  straggle) from *silent* ones that only result voting can expose.

The injector installs one model per target peer into
``SimNetwork.compute_faults`` (a neutral dict the p2p layer carries);
the worker service consults it after each execution.  The layering gate
enforces that this package never imports ``repro.service`` — integrity
hooks flow one way.
"""

from __future__ import annotations

import copy
import zlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["COMPUTE_FAULT_KINDS", "ComputeFaultWindow", "ComputeFaultModel"]

#: Fault kinds that tamper with computed results instead of messages.
COMPUTE_FAULT_KINDS = frozenset({"saboteur", "flaky_compute", "liar_heartbeat"})


def _stable_hash(text: str) -> int:
    """Deterministic across processes (``hash()`` is salted per run)."""
    return zlib.crc32(text.encode("utf-8"))


@dataclass(frozen=True)
class ComputeFaultWindow:
    """One active tampering window on one peer."""

    kind: str
    seed: int
    fraction: float
    #: window bounds in simulation time; ``until=inf`` means permanent
    since: float = 0.0
    until: float = float("inf")

    def active(self, now: float) -> bool:
        return self.since <= now < self.until


@dataclass
class ComputeFaultModel:
    """Per-peer tampering state the worker consults after each execution.

    The model never sees service-layer objects — it is handed primitive
    identifiers (peer id, deployment id, iteration) and the raw output
    payload list, and returns a (possibly tampered) copy plus a flag.
    """

    peer_id: str
    windows: list[ComputeFaultWindow] = field(default_factory=list)
    #: executions seen (feeds the per-execution draw of ``flaky_compute``)
    executions: int = 0
    #: tampered results produced, by fault kind
    tampered: dict[str, int] = field(default_factory=dict)

    def add_window(self, window: ComputeFaultWindow) -> None:
        self.windows.append(window)

    def remove_window(self, window: ComputeFaultWindow) -> None:
        if window in self.windows:
            self.windows.remove(window)

    def apply(
        self, deployment_id: str, iteration: int, outputs: list[Any], now: float
    ) -> tuple[list[Any], str]:
        """Possibly tamper with one execution's outputs.

        Returns ``(outputs, kind)`` — the original list and ``""`` when
        untouched, or a tampered deep copy and the responsible fault
        kind.  The original objects are never mutated (they belong to
        the worker's live engine).
        """
        self.executions += 1
        for window in self.windows:
            if not window.active(now):
                continue
            if window.kind == "flaky_compute":
                # Transient: every execution draws fresh.
                entropy = [window.seed, _stable_hash(self.peer_id), self.executions]
            else:
                # Consistent: a pure function of (seed, peer, iteration),
                # so a re-execution here repeats the same wrong answer.
                entropy = [window.seed, _stable_hash(self.peer_id), iteration]
            rng = np.random.default_rng(np.random.SeedSequence(entropy))
            if float(rng.random()) >= window.fraction:
                continue
            tampered = [_tamper_value(copy.deepcopy(v), rng) for v in outputs]
            self.tampered[window.kind] = self.tampered.get(window.kind, 0) + 1
            return tampered, window.kind
        return outputs, ""

    def summary(self) -> dict[str, Any]:
        return {
            "peer": self.peer_id,
            "executions": self.executions,
            "tampered": dict(sorted(self.tampered.items())),
        }


def _tamper_value(value: Any, rng, structural: bool = True) -> Any:
    """Perturb one payload into a plausible-but-wrong sibling.

    Numeric content is always preferred: arrays are scaled and offset
    slightly and scalar cells are nudged, and because every nudge draws
    from ``rng`` (seeded per peer) two independent saboteurs can never
    agree on the same wrong answer — lying quorums would defeat result
    voting.  Only when a payload holds no numeric content anywhere does
    the ``structural`` fallback drop an rng-chosen element.  Payloads
    with no tamperable content at all are returned unchanged — the
    digest then matches and the "corruption" is harmless by
    construction.
    """
    if isinstance(value, np.ndarray):
        return _tamper_array(value, rng)
    if isinstance(value, (list, tuple)):
        return _tamper_sequence(value, rng, structural)
    if isinstance(value, (int, float, complex)) and not isinstance(value, bool):
        return value * (1.0 + 0.05 * (1.0 + float(rng.random())))
    if hasattr(value, "__dict__"):
        # Two passes: find a numeric cell in *any* attribute before
        # falling back to a structural drop in the first one.
        for pass_structural in (False, True) if structural else (False,):
            for name, attr in sorted(vars(value).items()):
                replaced = _tamper_value(attr, rng, pass_structural)
                if replaced is not attr:
                    setattr(value, name, replaced)
                    return value
    return value


def _tamper_array(array: np.ndarray, rng) -> np.ndarray:
    if array.size == 0 or not np.issubdtype(array.dtype, np.number):
        return array
    scale = 1.0 + 0.02 * (1.0 + float(rng.random()))
    offset = 0.01 * (1.0 + float(rng.random()))
    if np.issubdtype(array.dtype, np.integer):
        return (array + max(1, int(round(offset * 100)))).astype(array.dtype)
    return (array * scale + offset).astype(array.dtype, copy=False)


def _tamper_sequence(seq, rng, structural: bool = True):
    items = list(seq)
    for index, item in enumerate(items):
        replaced = _tamper_value(item, rng, structural=False)
        if replaced is not item or (
            isinstance(item, (int, float)) and replaced != item
        ):
            items[index] = replaced
            return type(seq)(items) if isinstance(seq, tuple) else items
    if structural and items:
        # No numeric cell anywhere: drop an rng-chosen element (never a
        # fixed one — a deterministic drop would let two independent
        # saboteurs agree on the same lie).
        del items[int(rng.integers(len(items)))]
        return type(seq)(items) if isinstance(seq, tuple) else items
    return seq
