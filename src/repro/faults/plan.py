"""Declarative fault plans: a timed script of ways the grid misbehaves.

The paper's premise is a consumer network whose peers "may disconnect at
any time".  A :class:`FaultPlan` makes that systematic: it is a list of
timed :class:`Fault` specs — peer crashes, overlay partitions, message
corruption/duplication/reordering windows, straggler slowdowns and portal
outages — that a :class:`~repro.faults.injector.FaultInjector` schedules
on the simulation kernel.  Because every fault is declared up front and
all randomness flows through a seed, a chaos run is exactly as
reproducible as a clean one.

:func:`chaos` generates seed-driven preset plans at three intensities so
tests and benchmarks can say ``fault_plan=chaos("moderate", seed=7,
workers=...)`` instead of hand-scripting every outage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

import numpy as np

from .compute import COMPUTE_FAULT_KINDS
from .errors import FaultPlanError

__all__ = [
    "FAULT_KINDS",
    "FAULT_KIND_DOCS",
    "COMPUTE_FAULT_KINDS",
    "Fault",
    "FaultPlan",
    "chaos",
    "CHAOS_LEVELS",
]

#: One-line description per fault kind — the ``repro faults`` CLI table.
FAULT_KIND_DOCS = {
    "crash": "peer offline for `duration`, then restarts (0 = permanent)",
    "partition": "cut targets <-> targets_b for `duration`",
    "corrupt": "corrupt `fraction` of messages for `duration`",
    "duplicate": "duplicate `fraction` of messages for `duration`",
    "reorder": "reorder `fraction` of messages for `duration`",
    "slowdown": "scale targets' CPU speed by `factor` for `duration`",
    "portal-outage": "rendezvous/portal peer offline for `duration`",
    "saboteur": "targets consistently return wrong results for `fraction` "
                "of iterations (same wrong answer on re-execution)",
    "flaky_compute": "targets transiently return wrong results for "
                     "`fraction` of executions (re-execution usually clean)",
    "liar_heartbeat": "saboteur whose liveness signals stay healthy — only "
                      "result verification can expose it",
}

#: Every fault kind the injector knows how to apply.
FAULT_KINDS = frozenset(FAULT_KIND_DOCS)

_WINDOW_KINDS = frozenset({"corrupt", "duplicate", "reorder"})


@dataclass(frozen=True)
class Fault:
    """One timed misbehaviour.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    at:
        Absolute simulation time the fault begins.
    duration:
        How long it lasts; 0 means a point event (only meaningful for
        ``crash`` without restart — a crash with ``duration=0`` is
        permanent).
    targets:
        Affected node ids (crash/slowdown), or side A of a partition.
    targets_b:
        Side B of a partition cut.
    fraction:
        Message fraction for corrupt/duplicate/reorder windows, or the
        per-iteration tampering probability of a compute fault
        (saboteur / flaky_compute / liar_heartbeat).
    factor:
        Speed multiplier for slowdowns (0.25 = four times slower).
    seed:
        Entropy root of a compute fault's tampering decisions — the
        wrong answers are a pure function of ``(seed, peer, iteration)``.
    """

    kind: str
    at: float
    duration: float = 0.0
    targets: tuple[str, ...] = ()
    targets_b: tuple[str, ...] = ()
    fraction: float = 0.0
    factor: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; know {sorted(FAULT_KINDS)}"
            )
        if self.at < 0:
            raise FaultPlanError(f"fault time must be >= 0, got {self.at}")
        if self.duration < 0:
            raise FaultPlanError(f"fault duration must be >= 0, got {self.duration}")
        if self.kind in ("crash", "slowdown") and not self.targets:
            raise FaultPlanError(f"{self.kind} fault needs at least one target")
        if self.kind == "partition" and (not self.targets or not self.targets_b):
            raise FaultPlanError("partition fault needs both target groups")
        if self.kind == "partition" and set(self.targets) & set(self.targets_b):
            raise FaultPlanError("partition groups overlap")
        if self.kind in _WINDOW_KINDS:
            if not 0.0 < self.fraction < 1.0:
                raise FaultPlanError(
                    f"{self.kind} fault needs fraction in (0, 1), got {self.fraction}"
                )
            if self.duration <= 0:
                raise FaultPlanError(f"{self.kind} fault needs a positive duration")
        if self.kind == "slowdown":
            if self.factor <= 0:
                raise FaultPlanError("slowdown factor must be positive")
            if self.duration <= 0:
                raise FaultPlanError("slowdown fault needs a positive duration")
        if self.kind in COMPUTE_FAULT_KINDS:
            if not self.targets:
                raise FaultPlanError(f"{self.kind} fault needs at least one target")
            if not 0.0 < self.fraction <= 1.0:
                raise FaultPlanError(
                    f"{self.kind} fault needs fraction in (0, 1], got {self.fraction}"
                )

    @property
    def ends_at(self) -> float:
        return self.at + self.duration

    def describe(self) -> str:
        """One-line human summary (used in the injector's log)."""
        bits = [f"{self.kind} @t={self.at:g}"]
        if self.duration:
            bits.append(f"for {self.duration:g}s")
        if self.targets:
            bits.append("on " + ",".join(self.targets))
        if self.targets_b:
            bits.append("vs " + ",".join(self.targets_b))
        if self.kind in _WINDOW_KINDS or self.kind in COMPUTE_FAULT_KINDS:
            bits.append(f"p={self.fraction:g}")
        if self.kind == "slowdown":
            bits.append(f"x{self.factor:g}")
        return " ".join(bits)


@dataclass
class FaultPlan:
    """An ordered collection of faults plus plan-level metadata."""

    faults: list[Fault] = field(default_factory=list)
    name: str = "fault-plan"

    def add(self, fault: Fault) -> "FaultPlan":
        """Append one fault; returns ``self`` for chaining."""
        self.faults.append(fault)
        return self

    def extend(self, faults: Sequence[Fault]) -> "FaultPlan":
        """Append several faults at once; returns ``self`` for chaining."""
        self.faults.extend(faults)
        return self

    def __iter__(self) -> Iterator[Fault]:
        return iter(sorted(self.faults, key=lambda f: (f.at, f.kind)))

    def __len__(self) -> int:
        return len(self.faults)

    @property
    def horizon(self) -> float:
        """Time the last fault has fully played out."""
        return max((f.ends_at for f in self.faults), default=0.0)

    def kinds(self) -> dict[str, int]:
        """Histogram of the plan's fault kinds (for logs and assertions)."""
        counts: dict[str, int] = {}
        for f in self.faults:
            counts[f.kind] = counts.get(f.kind, 0) + 1
        return counts

    def validate(self, known_nodes: Optional[Sequence[str]] = None) -> None:
        """Check every targeted node exists (when ``known_nodes`` given)."""
        if known_nodes is None:
            return
        known = set(known_nodes)
        for f in self.faults:
            missing = (set(f.targets) | set(f.targets_b)) - known
            if missing:
                raise FaultPlanError(
                    f"fault {f.describe()!r} targets unknown nodes {sorted(missing)}"
                )

    def describe(self) -> str:
        lines = [f"{self.name}: {len(self.faults)} faults, horizon {self.horizon:g}s"]
        lines += [f"  {f.describe()}" for f in self]
        return "\n".join(lines)


#: Preset intensities for :func:`chaos`.  Fractions are of the worker
#: fleet (crashes, saboteurs, flaky peers) or of the message stream
#: (corrupt/duplicate/reorder); ``tamper_rate`` is the per-iteration
#: probability that a compute-faulty peer corrupts a result.
CHAOS_LEVELS = {
    "mild": dict(
        crash_fraction=0.1,
        partitions=0,
        corrupt_fraction=0.0,
        duplicate_fraction=0.02,
        reorder_fraction=0.05,
        stragglers=0,
        portal_outage=False,
        saboteur_fraction=0.0,
        flaky_fraction=0.0,
        liar=False,
        tamper_rate=0.0,
    ),
    "moderate": dict(
        crash_fraction=0.3,
        partitions=1,
        corrupt_fraction=0.05,
        duplicate_fraction=0.05,
        reorder_fraction=0.1,
        stragglers=1,
        portal_outage=False,
        saboteur_fraction=0.0,
        flaky_fraction=0.0,
        liar=False,
        tamper_rate=0.0,
    ),
    "heavy": dict(
        crash_fraction=0.5,
        partitions=1,
        corrupt_fraction=0.1,
        duplicate_fraction=0.1,
        reorder_fraction=0.2,
        stragglers=2,
        portal_outage=True,
        saboteur_fraction=0.0,
        flaky_fraction=0.0,
        liar=False,
        tamper_rate=0.0,
    ),
    # Peers stay up and chatty — they just lie.  No crashes or transport
    # loss: every fault here is invisible to liveness-based recovery, so
    # only result verification (docs/robustness.md, "Result integrity")
    # keeps the answers right.
    "hostile": dict(
        crash_fraction=0.0,
        partitions=0,
        corrupt_fraction=0.0,
        duplicate_fraction=0.02,
        reorder_fraction=0.05,
        stragglers=0,
        portal_outage=False,
        saboteur_fraction=0.34,
        flaky_fraction=0.17,
        liar=True,
        tamper_rate=0.9,
    ),
}


def chaos(
    level: str = "moderate",
    seed: int = 0,
    workers: Sequence[str] = (),
    controller: str = "controller",
    portal: str = "portal",
    start: float = 10.0,
    horizon: float = 120.0,
) -> FaultPlan:
    """Generate a seed-driven preset :class:`FaultPlan`.

    Faults are placed in ``[start, start + horizon]``; ``start`` should
    sit past discovery + deployment so the plan exercises the *recovery*
    machinery rather than hard-failing the deploy phase.  The same
    ``(level, seed, workers)`` always produces the identical plan.
    """
    if level not in CHAOS_LEVELS:
        raise FaultPlanError(
            f"unknown chaos level {level!r}; know {sorted(CHAOS_LEVELS)}"
        )
    if horizon <= 0:
        raise FaultPlanError("horizon must be positive")
    params = CHAOS_LEVELS[level]
    workers = list(workers)
    rng = np.random.default_rng(np.random.SeedSequence([seed, len(workers)]))
    plan = FaultPlan(name=f"chaos-{level}-seed{seed}")

    def window(lo_frac: float = 0.0, hi_frac: float = 0.6) -> tuple[float, float]:
        at = start + float(rng.uniform(lo_frac, hi_frac)) * horizon
        duration = float(rng.uniform(0.15, 0.4)) * horizon
        return at, duration

    # Crashes: a fixed fraction of the fleet goes down mid-run and restarts.
    n_crash = int(round(params["crash_fraction"] * len(workers)))
    if workers and params["crash_fraction"] > 0 and n_crash == 0:
        n_crash = 1
    crashed = (
        [workers[i] for i in rng.choice(len(workers), size=n_crash, replace=False)]
        if n_crash
        else []
    )
    for target in crashed:
        at, duration = window()
        plan.add(Fault(kind="crash", at=at, duration=duration, targets=(target,)))

    # Partition: half the fleet is cut off from the controller-side overlay.
    if params["partitions"] and len(workers) >= 2:
        half = len(workers) // 2
        cut = [workers[i] for i in rng.choice(len(workers), size=half, replace=False)]
        kept = [w for w in workers if w not in cut]
        at, duration = window(0.1, 0.5)
        plan.add(
            Fault(
                kind="partition",
                at=at,
                duration=duration,
                targets=tuple(sorted({controller, portal, *kept})),
                targets_b=tuple(sorted(cut)),
            )
        )

    # Link-quality windows over the whole chaos interval.
    for kind in ("corrupt", "duplicate", "reorder"):
        fraction = params[f"{kind}_fraction"]
        if fraction > 0:
            plan.add(
                Fault(kind=kind, at=start, duration=horizon, fraction=fraction)
            )

    # Stragglers: otherwise-healthy peers that suddenly crawl.
    candidates = [w for w in workers if w not in crashed] or workers
    for i in range(min(params["stragglers"], len(candidates))):
        target = candidates[int(rng.integers(len(candidates)))]
        at, duration = window(0.0, 0.4)
        plan.add(
            Fault(
                kind="slowdown",
                at=at,
                duration=duration,
                targets=(target,),
                factor=0.25,
            )
        )

    # Portal outage: module repository / rendezvous briefly unreachable.
    if params["portal_outage"]:
        at, duration = window(0.2, 0.6)
        plan.add(
            Fault(
                kind="portal-outage",
                at=at,
                duration=min(duration, 0.25 * horizon),
                targets=(portal,),
            )
        )

    # Saboteur population: peers that compute but lie.  Saboteurs (and
    # the liar, whose heartbeats stay pristine) corrupt consistently for
    # the whole chaos window; flaky peers corrupt transiently.  All
    # guards are fraction > 0 so pre-hostile presets draw nothing and
    # stay bit-identical to their historical plans.
    remaining = list(workers)

    def draft(fleet_fraction: float, count: Optional[int] = None) -> list[str]:
        n = count if count is not None else int(round(fleet_fraction * len(workers)))
        n = min(n, len(remaining))
        if workers and count is None and fleet_fraction > 0 and n == 0:
            n = min(1, len(remaining))
        if n == 0:
            return []
        picks = [remaining[i] for i in rng.choice(len(remaining), size=n, replace=False)]
        for p in picks:
            remaining.remove(p)
        return sorted(picks)

    rate = params.get("tamper_rate", 0.0)
    if rate > 0:
        for kind, chosen in (
            ("saboteur", draft(params.get("saboteur_fraction", 0.0))
             if params.get("saboteur_fraction", 0.0) > 0 else []),
            ("flaky_compute", draft(params.get("flaky_fraction", 0.0))
             if params.get("flaky_fraction", 0.0) > 0 else []),
            ("liar_heartbeat", draft(0.0, count=1)
             if params.get("liar", False) else []),
        ):
            for target in chosen:
                plan.add(
                    Fault(
                        kind=kind,
                        at=start,
                        duration=horizon,
                        targets=(target,),
                        fraction=rate if kind != "flaky_compute" else rate / 2.0,
                        seed=int(rng.integers(2**31)),
                    )
                )

    return plan
