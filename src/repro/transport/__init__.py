"""Transport layer: one protocol, pluggable substrates.

The consumer-grid protocol (discovery, deployment, execution,
heartbeats, module distribution, integrity voting) is written against
the :class:`~repro.transport.base.Transport` interface.  Two backends
are registered:

``sim``
    :class:`~repro.transport.sim.SimTransport` — the deterministic
    default; a zero-cost adapter over the modelled
    :class:`~repro.p2p.network.SimNetwork`.
``tcp``
    :class:`~repro.transport.tcp.TcpTransport` — asyncio TCP with
    length-prefixed canonical frames, pooled per-peer connections and
    reconnect-with-backoff, driven by the wall-clock
    :class:`~repro.transport.runtime.RealtimeSimulator`.

``repro transports`` lists this registry from the CLI;
:mod:`repro.deployment` assembles multi-process grids on the TCP
backend.
"""

from .base import (
    Transport,
    TransportInfo,
    iter_transports,
    register_transport,
    transport_info,
    transport_names,
)
from .runtime import RealtimeSimulator
from .sim import SimTransport
from .tcp import TcpTransport
from .wire import (
    WIRE_VERSION,
    WireError,
    decode,
    decode_message,
    encode,
    encode_message,
    result_checksum,
)

register_transport(
    "sim",
    SimTransport,
    "Deterministic simulated fabric (default; bit-identical benches)",
)
register_transport(
    "tcp",
    TcpTransport,
    "Asyncio TCP: length-prefixed canonical frames, pooled connections",
)

__all__ = [
    "Transport",
    "TransportInfo",
    "SimTransport",
    "TcpTransport",
    "RealtimeSimulator",
    "register_transport",
    "transport_names",
    "transport_info",
    "iter_transports",
    "WireError",
    "WIRE_VERSION",
    "encode",
    "decode",
    "encode_message",
    "decode_message",
    "result_checksum",
]
