"""``SimTransport``: the deterministic default backend.

A pure delegating adapter over :class:`~repro.p2p.network.SimNetwork`.
It adds no behaviour, consumes no randomness, and schedules no events —
``send`` *is* ``SimNetwork.send`` (bound through in ``__init__`` so the
per-message cost is a plain function call, not an extra method-dispatch
hop).  Every committed BENCH critical path therefore stays bit-identical
whether peers are wired to the raw network (as old tests still do) or
through this adapter (as :class:`~repro.grid.ConsumerGrid` now does).

The chaos surface (partitions, loss, overlays, speed factors) is also
forwarded, so fault injectors and flooding discovery keep working when
handed the adapter instead of the raw fabric.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..p2p.network import Message, NodeProfile, SimNetwork
from .base import Transport

__all__ = ["SimTransport"]


class SimTransport(Transport):
    """Deterministic simulated fabric (delegates to :class:`SimNetwork`)."""

    def __init__(self, network: SimNetwork):
        self.network = network
        self.sim = network.sim
        # Shared objects, not copies: the grid's fault injector and the
        # telemetry sampler keep talking to the raw SimNetwork and both
        # views must observe the same counters and fault plans.
        self.stats = network.stats
        self.compute_faults = network.compute_faults
        # Hot-path pass-throughs: shadow the delegating methods below
        # with the SimNetwork bound methods themselves.
        self.send = network.send
        self.transfer_time = network.transfer_time
        self.is_online = network.is_online
        self.profile = network.profile
        self.speed_factor = network.speed_factor
        self.neighbours = network.neighbours

    # -- membership ---------------------------------------------------------
    def add_node(
        self,
        node_id: str,
        handler: Callable[[Message], None],
        profile: Optional[NodeProfile] = None,
    ) -> None:
        self.network.add_node(node_id, handler, profile)

    def remove_node(self, node_id: str) -> None:
        self.network.remove_node(node_id)

    def nodes(self) -> List[str]:
        return self.network.nodes()

    # -- liveness & profiles (shadowed by bound methods in __init__) --------
    def is_online(self, node_id: str) -> bool:  # pragma: no cover - shadowed
        return self.network.is_online(node_id)

    def set_online(self, node_id: str, online: bool) -> None:
        self.network.set_online(node_id, online)

    def profile(self, node_id: str) -> NodeProfile:  # pragma: no cover - shadowed
        return self.network.profile(node_id)

    def speed_factor(self, node_id: str) -> float:  # pragma: no cover - shadowed
        return self.network.speed_factor(node_id)

    def set_speed_factor(self, node_id: str, factor: float) -> None:
        self.network.set_speed_factor(node_id, factor)

    # -- traffic (shadowed by bound methods in __init__) --------------------
    def send(self, message: Message) -> float:  # pragma: no cover - shadowed
        return self.network.send(message)

    def transfer_time(  # pragma: no cover - shadowed
        self, src: str, dst: str, size_bytes: int
    ) -> float:
        return self.network.transfer_time(src, dst, size_bytes)

    def broadcast(self, src: str, kind: str, payload=None, size_bytes: int = 256):
        return self.network.broadcast(src, kind, payload, size_bytes)

    # -- overlay / chaos pass-throughs --------------------------------------
    def neighbours(self, node_id: str) -> List[str]:  # pragma: no cover - shadowed
        return self.network.neighbours(node_id)

    def add_edge(self, a: str, b: str) -> None:
        self.network.add_edge(a, b)

    def random_overlay(self, degree: int = 4, stream: str = "overlay") -> None:
        self.network.random_overlay(degree, stream)

    def partition(self, group_a, group_b) -> int:
        return self.network.partition(group_a, group_b)

    def heal(self, cut_id=None) -> None:
        self.network.heal(cut_id)

    def partitioned(self, a: str, b: str) -> bool:
        return self.network.partitioned(a, b)

    # -- observability pass-throughs ----------------------------------------
    def telemetry_sample(self) -> dict:
        return self.network.telemetry_sample()

    def trace_liveness_snapshot(self) -> None:
        self.network.trace_liveness_snapshot()

    # -- discovery hook -----------------------------------------------------
    def supported_discovery(self) -> tuple[str, ...]:
        return ("central", "flooding", "rendezvous")
