"""Canonical wire codec: :class:`~repro.p2p.network.Message` ↔ bytes.

In the simulator a :class:`Message` payload is handed to the receiver as
the very same Python object, so *anything* — closures, generators, live
event objects — rides for free.  On a real transport every frame crosses
a process boundary, which forces three properties the codec pins down:

* **self-describing** — a tagged, recursive encoding covering the value
  vocabulary the protocol actually uses: scalars, containers, numpy
  arrays, and the protocol dataclasses (``DeploymentSpec``,
  ``Advertisement``, ``QuerySpec``, ``ModulePackage``, TrianaType
  payloads, …).  Dataclasses are encoded *by reference* (module-qualified
  name + field values), so both endpoints must run the same code — the
  consumer-grid deployment model of the paper, where workers fetch the
  module code itself through the repository layer.
* **canonical** — one value, one byte string.  Dict entries and set
  members are sorted by their encoded key bytes, floats use fixed-width
  IEEE-754, arrays are flattened to C order.  Canonical bytes make
  result checksums (:func:`result_checksum`) comparable across the sim
  and TCP backends, which is how the e2e suite asserts a localhost run
  reproduces a simulated one bit-for-bit.
* **versioned** — every buffer starts with a 4-byte header (magic +
  version) so incompatible peers fail loudly instead of mis-decoding.

Functions and lambdas are *rejected* with a pointer at
:class:`~repro.p2p.advertisement.AttrPredicate` — the declarative
predicate form that replaced the discovery closures precisely so query
frames could cross the wire.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import struct
from typing import Any

import numpy as np

from ..p2p.network import Message

__all__ = [
    "WireError",
    "WIRE_VERSION",
    "encode",
    "decode",
    "encode_message",
    "decode_message",
    "result_checksum",
]

MAGIC = b"RPW"
WIRE_VERSION = 1
_HEADER = MAGIC + bytes([WIRE_VERSION])

#: Top-level module prefixes a dataclass/class reference may resolve to.
#: Decoding a reference imports the module, so this is a deliberate
#: allowlist, not an optimisation.
ALLOWED_REF_ROOTS = ("repro", "tests", "benchmarks")

_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")


class WireError(Exception):
    """Raised for unencodable values, bad headers, or corrupt buffers."""


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------


def encode(obj: Any) -> bytes:
    """Encode ``obj`` into canonical, versioned wire bytes."""
    out = bytearray(_HEADER)
    _enc(obj, out)
    return bytes(out)


def _enc_str(text: str, out: bytearray) -> None:
    raw = text.encode("utf-8")
    out += _U32.pack(len(raw))
    out += raw


def _type_ref(cls: type) -> str:
    module, qualname = cls.__module__, cls.__qualname__
    if "<locals>" in qualname:
        raise WireError(f"cannot encode locally-defined class {qualname!r}")
    root = module.split(".", 1)[0]
    if root not in ALLOWED_REF_ROOTS:
        raise WireError(
            f"class {module}:{qualname} is outside the wire allowlist "
            f"{ALLOWED_REF_ROOTS}"
        )
    return f"{module}:{qualname}"


def _enc(obj: Any, out: bytearray) -> None:
    if obj is None:
        out += b"N"
        return
    if obj is True:
        out += b"T"
        return
    if obj is False:
        out += b"F"
        return
    t = type(obj)
    if t is int:
        raw = obj.to_bytes((obj.bit_length() + 8) // 8 or 1, "big", signed=True)
        out += b"i"
        out += _U32.pack(len(raw))
        out += raw
        return
    if t is float:
        out += b"f"
        out += _F64.pack(obj)
        return
    if t is str:
        out += b"s"
        _enc_str(obj, out)
        return
    if t is bytes:
        out += b"b"
        out += _U32.pack(len(obj))
        out += obj
        return
    if t is complex:
        out += b"c"
        out += _F64.pack(obj.real)
        out += _F64.pack(obj.imag)
        return
    if t is list or t is tuple:
        out += b"l" if t is list else b"t"
        out += _U32.pack(len(obj))
        for item in obj:
            _enc(item, out)
        return
    if t is dict:
        pairs = []
        for key, value in obj.items():
            kb = bytearray()
            _enc(key, kb)
            vb = bytearray()
            _enc(value, vb)
            pairs.append((bytes(kb), bytes(vb)))
        pairs.sort(key=lambda p: p[0])
        out += b"d"
        out += _U32.pack(len(pairs))
        for kb, vb in pairs:
            out += kb
            out += vb
        return
    if t is set or t is frozenset:
        items = []
        for item in obj:
            ib = bytearray()
            _enc(item, ib)
            items.append(bytes(ib))
        items.sort()
        out += b"x" if t is set else b"X"
        out += _U32.pack(len(items))
        for ib in items:
            out += ib
        return
    if isinstance(obj, np.ndarray):
        if obj.dtype == object:
            raise WireError("object-dtype ndarrays are not wire-encodable")
        arr = np.ascontiguousarray(obj)
        out += b"a"
        _enc_str(arr.dtype.str, out)
        out += struct.pack(">B", arr.ndim)
        for dim in arr.shape:
            out += _U64.pack(dim)
        raw = arr.tobytes()
        out += _U64.pack(len(raw))
        out += raw
        return
    if isinstance(obj, np.generic):
        out += b"y"
        _enc_str(obj.dtype.str, out)
        raw = obj.tobytes()
        out += _U32.pack(len(raw))
        out += raw
        return
    if isinstance(obj, type):
        out += b"C"
        _enc_str(_type_ref(obj), out)
        return
    if dataclasses.is_dataclass(obj):
        flds = dataclasses.fields(obj)
        out += b"D"
        _enc_str(_type_ref(type(obj)), out)
        out += _U32.pack(len(flds))
        for f in flds:
            _enc_str(f.name, out)
            _enc(getattr(obj, f.name), out)
        return
    if callable(obj):
        raise WireError(
            f"cannot encode callable {obj!r}: discovery predicates must be "
            "declarative — use repro.p2p.advertisement.AttrPredicate"
        )
    if hasattr(obj, "__dict__"):
        # Plain (non-dataclass) protocol objects — e.g. ``TableData`` —
        # travel as class-ref + instance state, attrs sorted by name so
        # the encoding stays canonical.  The allowlist check inside
        # ``_type_ref`` is the gate.
        out += b"O"
        _enc_str(_type_ref(t), out)
        attrs = sorted(vars(obj).items())
        out += _U32.pack(len(attrs))
        for name, value in attrs:
            _enc_str(name, out)
            _enc(value, out)
        return
    raise WireError(f"type {t.__module__}.{t.__qualname__} is not wire-encodable")


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------


def decode(data: bytes) -> Any:
    """Decode wire bytes produced by :func:`encode`."""
    if len(data) < 4 or data[:3] != MAGIC:
        raise WireError("bad wire header (not a repro wire frame)")
    if data[3] != WIRE_VERSION:
        raise WireError(
            f"wire version mismatch: frame v{data[3]}, this peer speaks "
            f"v{WIRE_VERSION}"
        )
    obj, pos = _dec(data, 4)
    if pos != len(data):
        raise WireError(f"{len(data) - pos} trailing bytes after payload")
    return obj


def _dec_str(data: bytes, pos: int) -> tuple[str, int]:
    (n,) = _U32.unpack_from(data, pos)
    pos += 4
    return data[pos : pos + n].decode("utf-8"), pos + n


def _resolve_ref(ref: str) -> Any:
    module_name, _, qualname = ref.partition(":")
    root = module_name.split(".", 1)[0]
    if root not in ALLOWED_REF_ROOTS:
        raise WireError(f"reference {ref!r} is outside the wire allowlist")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:  # pragma: no cover - env-dependent
        raise WireError(f"cannot import module for reference {ref!r}: {exc}")
    target: Any = module
    for part in qualname.split("."):
        try:
            target = getattr(target, part)
        except AttributeError:
            raise WireError(f"reference {ref!r} does not resolve")
    return target


def _dec(data: bytes, pos: int) -> tuple[Any, int]:
    try:
        tag = data[pos : pos + 1]
    except IndexError:  # pragma: no cover - defensive
        raise WireError("truncated buffer")
    pos += 1
    if tag == b"N":
        return None, pos
    if tag == b"T":
        return True, pos
    if tag == b"F":
        return False, pos
    if tag == b"i":
        (n,) = _U32.unpack_from(data, pos)
        pos += 4
        return int.from_bytes(data[pos : pos + n], "big", signed=True), pos + n
    if tag == b"f":
        (value,) = _F64.unpack_from(data, pos)
        return value, pos + 8
    if tag == b"s":
        return _dec_str(data, pos)
    if tag == b"b":
        (n,) = _U32.unpack_from(data, pos)
        pos += 4
        return bytes(data[pos : pos + n]), pos + n
    if tag == b"c":
        (real,) = _F64.unpack_from(data, pos)
        (imag,) = _F64.unpack_from(data, pos + 8)
        return complex(real, imag), pos + 16
    if tag in (b"l", b"t"):
        (n,) = _U32.unpack_from(data, pos)
        pos += 4
        items = []
        for _ in range(n):
            item, pos = _dec(data, pos)
            items.append(item)
        return (items if tag == b"l" else tuple(items)), pos
    if tag == b"d":
        (n,) = _U32.unpack_from(data, pos)
        pos += 4
        result = {}
        for _ in range(n):
            key, pos = _dec(data, pos)
            value, pos = _dec(data, pos)
            result[key] = value
        return result, pos
    if tag in (b"x", b"X"):
        (n,) = _U32.unpack_from(data, pos)
        pos += 4
        items = []
        for _ in range(n):
            item, pos = _dec(data, pos)
            items.append(item)
        return (set(items) if tag == b"x" else frozenset(items)), pos
    if tag == b"a":
        dtype, pos = _dec_str(data, pos)
        ndim = data[pos]
        pos += 1
        shape = []
        for _ in range(ndim):
            (dim,) = _U64.unpack_from(data, pos)
            pos += 8
            shape.append(dim)
        (nbytes,) = _U64.unpack_from(data, pos)
        pos += 8
        arr = np.frombuffer(data[pos : pos + nbytes], dtype=np.dtype(dtype))
        return arr.reshape(shape).copy(), pos + nbytes
    if tag == b"y":
        dtype, pos = _dec_str(data, pos)
        (nbytes,) = _U32.unpack_from(data, pos)
        pos += 4
        value = np.frombuffer(data[pos : pos + nbytes], dtype=np.dtype(dtype))[0]
        return value, pos + nbytes
    if tag == b"C":
        ref, pos = _dec_str(data, pos)
        target = _resolve_ref(ref)
        if not isinstance(target, type):
            raise WireError(f"reference {ref!r} is not a class")
        return target, pos
    if tag == b"D":
        ref, pos = _dec_str(data, pos)
        (n,) = _U32.unpack_from(data, pos)
        pos += 4
        pairs = []
        for _ in range(n):
            name, pos = _dec_str(data, pos)
            value, pos = _dec(data, pos)
            pairs.append((name, value))
        cls = _resolve_ref(ref)
        if not (isinstance(cls, type) and dataclasses.is_dataclass(cls)):
            raise WireError(f"reference {ref!r} is not a dataclass")
        field_map = {f.name: f for f in dataclasses.fields(cls)}
        kwargs = {}
        deferred = []
        for name, value in pairs:
            f = field_map.get(name)
            if f is None:
                continue  # field removed on this side; tolerate
            if f.init:
                kwargs[f.name] = value
            else:
                deferred.append((f.name, value))
        instance = cls(**kwargs)
        for name, value in deferred:
            object.__setattr__(instance, name, value)
        return instance, pos
    if tag == b"O":
        ref, pos = _dec_str(data, pos)
        (n,) = _U32.unpack_from(data, pos)
        pos += 4
        cls = _resolve_ref(ref)
        if not isinstance(cls, type):
            raise WireError(f"reference {ref!r} is not a class")
        # Bypass __init__: the wire carries the instance *state*, and
        # constructors may validate/transform their arguments.
        instance = cls.__new__(cls)
        for _ in range(n):
            name, pos = _dec_str(data, pos)
            value, pos = _dec(data, pos)
            object.__setattr__(instance, name, value)
        return instance, pos
    raise WireError(f"unknown wire tag {tag!r} at offset {pos - 1}")


# ---------------------------------------------------------------------------
# message framing + checksums
# ---------------------------------------------------------------------------


def encode_message(message: Message) -> bytes:
    """Encode one protocol :class:`Message` into a wire frame body."""
    return encode(message)


def decode_message(data: bytes) -> Message:
    """Decode a frame body back into a :class:`Message`."""
    obj = decode(data)
    if not isinstance(obj, Message):
        raise WireError(f"frame decoded to {type(obj).__name__}, not Message")
    return obj


def result_checksum(obj: Any) -> str:
    """SHA-256 over the canonical encoding of ``obj``.

    Because the encoding is canonical, the checksum of a run's
    ``group_results`` is comparable across transports: the acceptance
    test for the TCP backend asserts a localhost multi-process run
    produces the same digest as the deterministic simulation.
    """
    return hashlib.sha256(encode(obj)).hexdigest()
