"""``RealtimeSimulator``: the event kernel re-clocked to wall time.

The whole service protocol — controller, workers, detector, recovery
policies, module cache — is written against the kernel's primitives:
``sim.timeout``, ``sim.call_at``, ``sim.event``, ``sim.run(until=...)``.
Running that protocol over real sockets does *not* require rewriting it;
it requires a kernel whose clock is wall time and whose idle moments are
spent waiting on the network instead of jumping the clock forward.

That is what this subclass does:

* ``now`` advances with ``time.monotonic()`` (seconds since the kernel
  was created), so a ``timeout(5)`` scheduled by a heartbeat loop fires
  roughly five *real* seconds later, and detector ``now`` values,
  traces, and telemetry all carry meaningful wall-clock stamps.
* Between due events the kernel calls registered **pumps** — callables
  provided by socket transports that block (up to a bound) until
  network activity arrives.  A TCP frame delivered by a pump succeeds
  kernel events exactly like a simulated delivery would, and the drain
  loop picks them up on the next tick.
* ``run(until=None)`` cannot mean "drain the queue" any more (heartbeat
  loops keep the queue eternally non-empty); it means *settle*: process
  everything already due, then return once no new work arrives within a
  short grace window.  Grid assembly uses this to let publishes land.
* ``run(until=Event)`` waits — pumping the network — until the event is
  processed, even if the local queue is momentarily empty; the awaited
  result may be a frame that has not arrived yet.

Determinism note: none of this is used by the simulated backend.  The
deterministic :class:`~repro.simkernel.Simulator` is untouched and the
BENCH baselines pin its behaviour.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from ..simkernel.errors import SimTimeError
from ..simkernel.sim import Event, Simulator

__all__ = ["RealtimeSimulator"]


class RealtimeSimulator(Simulator):
    """Event kernel whose clock is wall time and whose idle waits pump I/O.

    Parameters
    ----------
    seed:
        Forwarded to :class:`Simulator` (named RNG streams stay
        available; e.g. recovery backoff draws from ``rng("...")``).
    tracer:
        Optional tracer; spans/instants get wall-clock timestamps.
    idle_wait:
        Maximum seconds one pump call may block when no event is due.
    settle_grace:
        ``run(None)`` returns after this many seconds without any new
        event being processed.
    """

    def __init__(
        self,
        seed: int = 0,
        tracer=None,
        idle_wait: float = 0.05,
        settle_grace: float = 0.25,
    ):
        super().__init__(seed, tracer)
        self._epoch = time.monotonic()
        self.idle_wait = idle_wait
        self.settle_grace = settle_grace
        self._pumps: List[Callable[[float], None]] = []

    # -- wall clock ---------------------------------------------------------
    @property
    def wall_now(self) -> float:
        """Seconds of real time since this kernel was created."""
        return time.monotonic() - self._epoch

    def add_pump(self, pump: Callable[[float], None]) -> None:
        """Register a network pump: ``pump(max_wait)`` blocks up to
        ``max_wait`` seconds for I/O and dispatches whatever arrived."""
        self._pumps.append(pump)

    def _pump(self, max_wait: float) -> None:
        if not self._pumps:
            if max_wait > 0:
                time.sleep(max_wait)
            return
        # First pump gets the blocking budget; the rest just drain
        # whatever is already ready (multi-transport processes).
        for i, pump in enumerate(self._pumps):
            pump(max_wait if i == 0 else 0.0)

    # -- one tick -----------------------------------------------------------
    def _tick(self, horizon: Optional[float]) -> bool:
        """Process one due event or wait briefly for one; True if an
        event was processed."""
        queue = self._queue
        wall = self.wall_now
        if queue._len:
            when = queue.peek()
            if when <= wall:
                # Due now.  The clock follows the wall, never the
                # schedule: a late event runs at the real time it pops,
                # so follow-up timeouts measure from *now*, not from
                # when the event was supposed to fire.
                self.now = max(self.now, wall)
                _, event = queue.pop()
                self.events_executed += 1
                tracer = self.tracer
                if tracer.enabled:
                    tracer.on_step(self)
                event._run_callbacks()
                return True
            wait = min(when - wall, self.idle_wait)
        else:
            wait = self.idle_wait
        if horizon is not None:
            wait = min(wait, max(horizon - wall, 0.0))
        self._pump(wait)
        self.now = max(self.now, self.wall_now)
        return False

    # -- drain loops --------------------------------------------------------
    def _run(self, until):
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                self._tick(None)
            return stop.value
        if until is not None:
            horizon = float(until)
            if horizon < self.now:
                raise SimTimeError(f"run(until={horizon}) is in the past")
            while self.wall_now < horizon:
                self._tick(horizon)
            # Anything stamped inside the horizon still runs.
            while self._queue._len and self._queue.peek() <= horizon:
                self._tick(None)
            self.now = max(self.now, horizon)
            return None
        # Settle: run due work, then return after a quiet grace window.
        deadline = self.wall_now + self.settle_grace
        while True:
            if self._tick(deadline):
                deadline = self.wall_now + self.settle_grace
                continue
            if self.wall_now >= deadline:
                return None
