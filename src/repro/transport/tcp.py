"""``TcpTransport``: the protocol over real sockets.

An asyncio TCP backend carrying the exact same :class:`Message` traffic
the simulator models, across OS processes on localhost (or a LAN):

* **Framing** — each frame is a 4-byte big-endian length prefix followed
  by the canonical wire encoding of one ``Message``
  (:mod:`repro.transport.wire`).  Frames carry their destination id, so
  one transport instance can host *several* local nodes behind a single
  listening port — the controller process co-hosts the portal (module
  repository + central discovery index) and the controller peer, like
  the paper's Triana portal node.
* **Connection pooling** — one pooled outbound connection per remote
  address, created lazily on first send and reused for every subsequent
  frame to that peer; an ``asyncio.Queue`` per link keeps send() itself
  non-blocking.
* **Reconnect with backoff** — a broken or not-yet-listening peer is
  retried with exponential backoff (``backoff_base · 2^k`` capped at
  ``backoff_max``); after ``max_retries`` failures the frame is dropped
  and counted like an offline drop, mirroring the consumer-link
  semantics of the simulated fabric ("links fail without notice").
* **Kernel integration** — the transport owns a private asyncio loop
  that only spins inside :meth:`pump`, which the
  :class:`~repro.transport.runtime.RealtimeSimulator` calls whenever the
  event queue has nothing due.  Inbound frames are decoded and handed to
  the destination node's handler inside the pump; any events the handler
  succeeds are drained by the kernel immediately after.

The transport is intentionally *mechanism only*: discovery, liveness
suspicion, retries, integrity voting all stay in the layers above,
unchanged from the simulation.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..p2p.errors import NetworkError
from ..p2p.network import LAN_PROFILE, Message, NetStats, NodeProfile
from .base import Transport
from .wire import WireError, decode_message, encode_message

__all__ = ["TcpTransport"]

_LEN = struct.Struct(">I")
#: Refuse frames larger than this (corrupt length prefix guard).
MAX_FRAME_BYTES = 1 << 30


class _Link:
    """One pooled outbound connection: frame queue + writer task."""

    __slots__ = ("queue", "task", "writer", "attempts")

    def __init__(self) -> None:
        self.queue: asyncio.Queue = asyncio.Queue()
        self.task: Optional[asyncio.Task] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        self.attempts = 0


class TcpTransport(Transport):
    """Asyncio TCP backend: length-prefixed canonical frames, pooled links."""

    def __init__(
        self,
        sim,
        host: str = "127.0.0.1",
        port: int = 0,
        peers: Optional[Dict[str, Tuple[str, int]]] = None,
        default_profile: NodeProfile = LAN_PROFILE,
        connect_timeout: float = 5.0,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        max_retries: int = 10,
        listen: bool = True,
    ):
        self.sim = sim
        self.host = host
        self.default_profile = default_profile
        self.connect_timeout = connect_timeout
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.max_retries = max_retries
        self.stats = NetStats()
        self.compute_faults: Dict[str, Any] = {}
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self._profiles: Dict[str, NodeProfile] = {}
        self._online: Dict[str, bool] = {}
        self._addresses: Dict[str, Tuple[str, int]] = dict(peers or {})
        self._links: Dict[Tuple[str, int], _Link] = {}
        self._closed = False
        self._loop = asyncio.new_event_loop()
        self._activity = asyncio.Event()
        self._server = None
        self.port = port
        if listen:
            self._server = self._loop.run_until_complete(
                asyncio.start_server(self._on_client, host, port)
            )
            self.port = self._server.sockets[0].getsockname()[1]
        pump_hook = getattr(sim, "add_pump", None)
        if pump_hook is not None:
            pump_hook(self.pump)

    # -- membership ---------------------------------------------------------
    def add_node(
        self,
        node_id: str,
        handler: Callable[[Message], None],
        profile: Optional[NodeProfile] = None,
    ) -> None:
        if node_id in self._handlers:
            raise NetworkError(f"node {node_id!r} already registered")
        self._handlers[node_id] = handler
        self._profiles[node_id] = profile or self.default_profile
        self._online[node_id] = True
        if self._server is not None:
            # Local nodes are reachable at our own listening address, so
            # even same-process traffic crosses the real socket path.
            self._addresses.setdefault(node_id, (self.host, self.port))

    def remove_node(self, node_id: str) -> None:
        self._handlers.pop(node_id, None)
        self._profiles.pop(node_id, None)
        self._online.pop(node_id, None)

    def nodes(self) -> List[str]:
        return sorted(self._handlers)

    def register_peer(self, peer_id: str, host: str, port: int) -> None:
        """Teach the transport where a remote peer listens."""
        self._addresses[peer_id] = (host, port)

    # -- liveness & profiles ------------------------------------------------
    def is_online(self, node_id: str) -> bool:
        # Remote liveness is unknowable without probing; the failure
        # detector above owns suspicion, so the transport stays
        # optimistic for peers it does not host.
        return self._online.get(node_id, True)

    def set_online(self, node_id: str, online: bool) -> None:
        self._online[node_id] = online

    def profile(self, node_id: str) -> NodeProfile:
        return self._profiles.get(node_id, self.default_profile)

    # -- traffic ------------------------------------------------------------
    def send(self, message: Message) -> float:
        """Queue ``message`` for delivery; returns the modelled delay.

        Non-blocking: the frame is encoded now (serialisation errors
        surface at the send site, like the simulator's payload checks)
        and flushed by the pooled link's writer task during pumps.
        """
        src, dst, size = message.src, message.dst, message.size_bytes
        stats = self.stats
        stats.sent += 1
        stats.bytes_sent += size
        by_kind = stats.by_kind
        by_kind[message.kind] = by_kind.get(message.kind, 0) + 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("p2p.messages_sent").inc()
            tracer.metrics.histogram("p2p.message_bytes").observe(size)
            tracer.instant(
                "net.send", category="p2p", track=src,
                kind=message.kind, dst=dst, size=size,
            )
        delay = self.transfer_time(src, dst, size)
        if not self._online.get(src, True):
            stats.dropped_offline += 1
            return delay
        frame = encode_message(message)
        address = self._addresses.get(dst)
        if address is None:
            if dst in self._handlers:
                # Socketless instance (listen=False): loop back directly.
                self.sim.call_at(self.sim.now, lambda: self._dispatch(message))
                return delay
            stats.dropped_offline += 1
            return delay
        self._link(address).queue.put_nowait(frame)
        return delay

    def _link(self, address: Tuple[str, int]) -> _Link:
        link = self._links.get(address)
        if link is None:
            link = _Link()
            self._links[address] = link
            link.task = self._loop.create_task(self._writer_loop(address, link))
        return link

    async def _writer_loop(self, address: Tuple[str, int], link: _Link) -> None:
        while True:
            frame = await link.queue.get()
            while True:
                try:
                    if link.writer is None or link.writer.is_closing():
                        await self._connect(address, link)
                    link.writer.write(_LEN.pack(len(frame)) + frame)
                    await link.writer.drain()
                    link.attempts = 0
                    break
                except (ConnectionError, OSError, asyncio.TimeoutError):
                    if link.writer is not None:
                        link.writer.close()
                        link.writer = None
                    link.attempts += 1
                    if link.attempts > self.max_retries:
                        self.stats.dropped_offline += 1
                        link.attempts = 0
                        break
                    await asyncio.sleep(
                        min(
                            self.backoff_base * (2 ** (link.attempts - 1)),
                            self.backoff_max,
                        )
                    )

    async def _connect(self, address: Tuple[str, int], link: _Link) -> None:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(address[0], address[1]),
            self.connect_timeout,
        )
        del reader  # outbound links are write-only
        link.writer = writer

    # -- inbound ------------------------------------------------------------
    async def _on_client(self, reader: asyncio.StreamReader, writer) -> None:
        try:
            while True:
                head = await reader.readexactly(4)
                (length,) = _LEN.unpack(head)
                if length > MAX_FRAME_BYTES:
                    raise WireError(f"frame length {length} exceeds cap")
                frame = await reader.readexactly(length)
                self._on_frame(frame)
        except (asyncio.IncompleteReadError, ConnectionError, OSError, WireError):
            pass
        finally:
            writer.close()

    def _on_frame(self, frame: bytes) -> None:
        try:
            message = decode_message(frame)
        except WireError:
            self.stats.corrupted += 1
            return
        self._dispatch(message)
        self._activity.set()

    def _dispatch(self, message: Message) -> None:
        handler = self._handlers.get(message.dst)
        if handler is None or not self._online.get(message.dst, True):
            self.stats.dropped_offline += 1
            return
        self.stats.delivered += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "net.recv", category="p2p", track=message.dst,
                kind=message.kind, src=message.src, size=message.size_bytes,
            )
        try:
            handler(message)
        except Exception:  # noqa: BLE001 - a bad handler must not kill I/O
            self.stats.corrupted += 1

    # -- observability ------------------------------------------------------
    def telemetry_sample(self) -> Dict[str, int]:
        """Traffic counters, same shape as the simulated fabric's."""
        stats = self.stats
        return {
            "sent": stats.sent,
            "delivered": stats.delivered,
            "bytes_sent": stats.bytes_sent,
            "in_flight": stats.in_flight,
            "in_flight_bytes": stats.in_flight_bytes,
            "dropped": (
                stats.dropped_offline
                + stats.dropped_loss
                + stats.dropped_partition
            ),
            "offline": sum(1 for up in self._online.values() if not up),
        }

    def trace_liveness_snapshot(self) -> None:
        """Record ``peer.offline`` instants for locally hosted nodes."""
        tracer = self.sim.tracer
        if not tracer.enabled:
            return
        for node_id, up in sorted(self._online.items()):
            if not up:
                tracer.instant("peer.offline", category="p2p", track=node_id)

    # -- kernel integration -------------------------------------------------
    def pump(self, max_wait: float) -> None:
        """Spin the asyncio loop, blocking up to ``max_wait`` s for I/O."""
        if self._closed:
            return
        if max_wait <= 0:
            self._loop.run_until_complete(asyncio.sleep(0))
            return
        self._loop.run_until_complete(self._wait_activity(max_wait))

    async def _wait_activity(self, max_wait: float) -> None:
        try:
            await asyncio.wait_for(self._activity.wait(), max_wait)
        except asyncio.TimeoutError:
            return
        self._activity.clear()

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Teardown cancels reader tasks mid-await; asyncio's stream
        # protocol logs those cancellations through the loop exception
        # handler, which is pure noise during a deliberate close.
        self._loop.set_exception_handler(lambda loop, context: None)

        async def _shutdown() -> None:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            for link in self._links.values():
                if link.task is not None:
                    link.task.cancel()
                if link.writer is not None:
                    link.writer.close()
            await asyncio.sleep(0)

        self._loop.run_until_complete(_shutdown())
        pending = asyncio.all_tasks(self._loop)
        for task in pending:
            task.cancel()
        if pending:
            self._loop.run_until_complete(
                asyncio.gather(*pending, return_exceptions=True)
            )
        self._loop.close()
