"""The :class:`Transport` interface: what a peer needs from its network.

Every layer above this one — :class:`~repro.p2p.peer.Peer`, discovery,
pipes, the Triana controller/worker protocol, the module cache and
repository — talks to the network through the narrow surface defined
here.  Two implementations exist:

* :class:`~repro.transport.sim.SimTransport` — a zero-cost delegating
  adapter over :class:`~repro.p2p.network.SimNetwork`.  The default;
  deterministic, and bit-identical to driving the SimNetwork directly.
* :class:`~repro.transport.tcp.TcpTransport` — asyncio TCP with
  length-prefixed frames and the canonical codec from
  :mod:`~repro.transport.wire`, so the same protocol runs across real
  OS processes on localhost.

The contract deliberately mirrors the subset of ``SimNetwork`` the
upper layers actually use (found by auditing every ``peer.network``
attribute access): node membership, liveness, profiles, the modelled
``transfer_time``, ``send``, traffic ``stats``, the ``compute_faults``
fault seam, and the discovery-backend hook.  Chaos knobs (partitions,
loss, contention) stay on ``SimNetwork`` itself — they are simulation
apparatus, not transport semantics.

A registry maps backend names to classes so ``repro transports`` can
list them and ``ConsumerGrid(transport=...)`` can validate selection,
mirroring the distribution-policy registry.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..p2p.network import Message, NetStats, NodeProfile

__all__ = [
    "Transport",
    "TransportInfo",
    "register_transport",
    "transport_names",
    "transport_info",
    "iter_transports",
]


class Transport(abc.ABC):
    """Abstract message substrate beneath the peer-to-peer layer.

    Attributes
    ----------
    sim:
        The event kernel this transport schedules against — a
        :class:`~repro.simkernel.Simulator` for the simulated backend,
        a :class:`~repro.transport.runtime.RealtimeSimulator` for TCP.
        Peers read their clock and timeout primitives from here, which
        is what lets sim-time waits in the service layer become wall
        clock waits on a real transport without code changes.
    stats:
        A :class:`~repro.p2p.network.NetStats` traffic counter.
    compute_faults:
        Mutable mapping consulted by workers before executing units —
        the sabotage seam used by the integrity experiments.  Empty on
        healthy transports.
    """

    sim: Any
    stats: NetStats
    compute_faults: Dict[str, Any]

    # -- membership ---------------------------------------------------------
    @abc.abstractmethod
    def add_node(
        self,
        node_id: str,
        handler: Callable[[Message], None],
        profile: Optional[NodeProfile] = None,
    ) -> None:
        """Register a local node and its inbound-message handler."""

    @abc.abstractmethod
    def remove_node(self, node_id: str) -> None:
        """Forget a local node."""

    @abc.abstractmethod
    def nodes(self) -> List[str]:
        """Sorted ids of locally hosted nodes."""

    # -- liveness & profiles ------------------------------------------------
    @abc.abstractmethod
    def is_online(self, node_id: str) -> bool:
        """Whether ``node_id`` is believed reachable."""

    @abc.abstractmethod
    def set_online(self, node_id: str, online: bool) -> None:
        """Flip a local node's liveness (churn modelling / drain)."""

    @abc.abstractmethod
    def profile(self, node_id: str) -> NodeProfile:
        """Link/CPU profile for ``node_id`` (a default for remote peers)."""

    def speed_factor(self, node_id: str) -> float:
        """Multiplier on a node's compute speed; 1.0 unless modelled."""
        return 1.0

    # -- traffic ------------------------------------------------------------
    @abc.abstractmethod
    def send(self, message: Message) -> float:
        """Dispatch ``message``; returns the modelled one-way delay."""

    def transfer_time(self, src: str, dst: str, size_bytes: int) -> float:
        """Modelled latency + serialisation delay for a transfer."""
        p_src, p_dst = self.profile(src), self.profile(dst)
        return (
            p_src.latency_s
            + p_dst.latency_s
            + size_bytes / min(p_src.up_bps, p_dst.down_bps)
        )

    def neighbours(self, node_id: str) -> List[str]:
        """Overlay neighbours, for flooding discovery; empty if no overlay."""
        return []

    # -- discovery hook -----------------------------------------------------
    def supported_discovery(self) -> tuple[str, ...]:
        """Discovery backends this transport can carry.

        Flooding and rendezvous walk a modelled overlay, which only the
        simulated fabric provides; socket transports restrict grids to
        the central index (the paper's JXTA-rendezvous-like portal).
        """
        return ("central",)

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Release sockets/threads; idempotent.  No-op for sim backends."""


# ---------------------------------------------------------------------------
# registry (mirrors the distribution-policy registry)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TransportInfo:
    """One registered backend: name, implementing class, summary line."""

    name: str
    cls: type
    summary: str


_REGISTRY: Dict[str, TransportInfo] = {}


def register_transport(name: str, cls: type, summary: Optional[str] = None) -> None:
    """Register a transport backend under ``name`` (last write wins)."""
    if summary is None:
        doc = (cls.__doc__ or "").strip()
        summary = doc.splitlines()[0] if doc else ""
    _REGISTRY[name] = TransportInfo(name=name, cls=cls, summary=summary)


def transport_names() -> List[str]:
    """Sorted names of registered backends."""
    return sorted(_REGISTRY)


def transport_info(name: str) -> TransportInfo:
    """Look up one backend; raises ``ValueError`` with the known names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown transport {name!r}; registered: {', '.join(sorted(_REGISTRY))}"
        )


def iter_transports() -> List[TransportInfo]:
    """All registered backends, sorted by name."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]
