"""Code mobility + sandbox (system S7).

The Consumer Grid's defining mechanism: task graphs travel as XML, and
executable modules are downloaded **on demand** from their owner, so a
peer "only host[s] code that is necessary" and versions stay consistent.

* :class:`ModuleRepository` — the authoritative, versioned unit store
* :class:`ModuleCache` — per-device LRU cache with on_demand/sticky policy
* :class:`SandboxPolicy` — host permission + certified-library checks
"""

from .cache import CacheStats, ModuleCache
from .errors import (
    MobilityError,
    ModuleNotFoundInRepo,
    RepositoryUnreachable,
    SandboxViolation,
)
from .repository import ModulePackage, ModuleRepository
from .sandbox import DEFAULT_PERMISSIONS, OPEN_PERMISSIONS, SandboxPolicy

__all__ = [
    "CacheStats",
    "DEFAULT_PERMISSIONS",
    "MobilityError",
    "ModuleCache",
    "ModuleNotFoundInRepo",
    "ModulePackage",
    "ModuleRepository",
    "OPEN_PERMISSIONS",
    "RepositoryUnreachable",
    "SandboxPolicy",
    "SandboxViolation",
]
