"""The per-device module cache with on-demand download.

"A resource-constrained device may also decide to selectively download
and release executable modules based on dependencies inherent within the
connectivity graph.  This dynamic model is therefore particular useful
for handheld and mobile devices."

The cache supports two policies:

* ``on_demand`` (default, the paper's model) — every execution request
  re-validates against the repository, so versions are always current;
* ``sticky`` — a cached module is reused without re-validation; cheaper
  in messages but can run stale code (the problem the paper says the
  on-demand model "overcomes").  Experiment E8 measures the trade.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from ..p2p.network import Message
from ..p2p.peer import Peer
from ..simkernel import Event
from .errors import MobilityError, ModuleNotFoundInRepo, RepositoryUnreachable
from .repository import ModulePackage

__all__ = ["CacheStats", "ModuleCache"]

_fetch_ids = itertools.count(1)


@dataclass
class CacheStats:
    requests: int = 0
    hits: int = 0
    fetches: int = 0
    bytes_downloaded: int = 0
    evictions: int = 0
    stale_uses: int = 0
    refreshes: int = 0
    failures: int = 0


@dataclass
class _Pending:
    event: Event
    unit_name: str
    done: bool = False
    #: open ``module.fetch`` span while the request is in flight
    span: Optional[object] = None


class ModuleCache:
    """LRU module cache on one peer, fed by a remote repository."""

    def __init__(
        self,
        peer: Peer,
        repository_host: str,
        capacity_bytes: int = 10_000_000,
        policy: str = "on_demand",
        fetch_timeout: float = 30.0,
    ):
        if policy not in ("on_demand", "sticky"):
            raise MobilityError(f"unknown cache policy {policy!r}")
        if capacity_bytes <= 0:
            raise MobilityError("capacity_bytes must be positive")
        self.peer = peer
        self.repository_host = repository_host
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self.fetch_timeout = fetch_timeout
        self.stats = CacheStats()
        self._cached: OrderedDict[str, ModulePackage] = OrderedDict()
        self._pending: dict[int, _Pending] = {}
        peer.on("module-package", self._on_package)

    # -- inspection -----------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return sum(p.code_size for p in self._cached.values())

    def cached_names(self) -> list[str]:
        return list(self._cached)

    def cached_version(self, unit_name: str) -> Optional[str]:
        pkg = self._cached.get(unit_name)
        return pkg.version if pkg else None

    # -- the on-demand protocol ---------------------------------------------------
    def ensure(self, unit_name: str) -> Event:
        """Make ``unit_name`` locally executable.

        Returns an event yielding the :class:`ModulePackage`.  Under the
        ``sticky`` policy a cached package is returned immediately; under
        ``on_demand`` the repository is always consulted (refreshing the
        cached copy if the version moved).
        """
        self.stats.requests += 1
        cached = self._cached.get(unit_name)
        if cached is not None and self.policy == "sticky":
            self.stats.hits += 1
            self._cached.move_to_end(unit_name)
            tracer = self.peer.sim.tracer
            if tracer.enabled:
                tracer.metrics.counter("mobility.cache_hits").inc()
                tracer.instant(
                    "cache.hit", category="mobility", track=self.peer.peer_id,
                    unit=unit_name, policy=self.policy, version=cached.version,
                )
            ev = self.peer.sim.event()
            ev.succeed(cached)
            return ev
        return self._fetch(unit_name)

    def release(self, unit_name: str) -> None:
        """Explicitly drop a module ("download and release ... on-demand")."""
        if self._cached.pop(unit_name, None) is None:
            raise MobilityError(f"module {unit_name!r} is not cached")

    def _fetch(self, unit_name: str) -> Event:
        request_id = next(_fetch_ids)
        pending = _Pending(event=self.peer.sim.event(), unit_name=unit_name)
        self._pending[request_id] = pending
        self.stats.fetches += 1
        tracer = self.peer.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("mobility.fetches").inc()
            pending.span = tracer.begin(
                "module.fetch", category="mobility", track=self.peer.peer_id,
                unit=unit_name, repository=self.repository_host,
            )
        self.peer.send(
            self.repository_host,
            "module-fetch",
            payload=(self.peer.peer_id, request_id, unit_name),
            size_bytes=96,
        )

        def expire() -> None:
            entry = self._pending.pop(request_id, None)
            if entry is not None and not entry.done:
                entry.done = True
                self.stats.failures += 1
                if entry.span is not None:
                    entry.span.end(outcome="timeout")
                entry.event.fail(
                    RepositoryUnreachable(
                        f"no reply for module {unit_name!r} within "
                        f"{self.fetch_timeout}s"
                    )
                )

        self.peer.sim.call_at(self.peer.sim.now + self.fetch_timeout, expire)
        return pending.event

    def _on_package(self, message: Message) -> None:
        request_id, unit_name, pkg = message.payload
        entry = self._pending.pop(request_id, None)
        if entry is None or entry.done:
            return
        entry.done = True
        if pkg is None:
            self.stats.failures += 1
            if entry.span is not None:
                entry.span.end(outcome="not-found")
            entry.event.fail(ModuleNotFoundInRepo(f"repository has no {unit_name!r}"))
            return
        previous = self._cached.get(unit_name)
        if previous is not None:
            if previous.version == pkg.version:
                self.stats.hits += 1
                outcome = "hit"
            else:
                self.stats.refreshes += 1
                outcome = "refresh"
        else:
            outcome = "new"
        self.stats.bytes_downloaded += pkg.code_size
        self._cached[unit_name] = pkg
        self._cached.move_to_end(unit_name)
        self._evict_to_fit()
        if entry.span is not None:
            tracer = self.peer.sim.tracer
            if tracer.enabled:
                if outcome == "hit":
                    tracer.metrics.counter("mobility.cache_hits").inc()
                else:
                    tracer.metrics.counter("mobility.cache_misses").inc()
            entry.span.end(
                outcome=outcome, version=pkg.version, nbytes=pkg.code_size
            )
        entry.event.succeed(pkg)

    def _evict_to_fit(self) -> None:
        while self.used_bytes > self.capacity_bytes and len(self._cached) > 1:
            self._cached.popitem(last=False)
            self.stats.evictions += 1

    def note_stale_use(self) -> None:
        """Record that a stale cached module was executed (E8 metric)."""
        self.stats.stale_uses += 1
