"""The per-device module cache with on-demand download.

"A resource-constrained device may also decide to selectively download
and release executable modules based on dependencies inherent within the
connectivity graph.  This dynamic model is therefore particular useful
for handheld and mobile devices."

The cache supports two policies:

* ``on_demand`` (default, the paper's model) — every execution request
  re-validates against the repository, so versions are always current;
* ``sticky`` — a cached module is reused without re-validation; cheaper
  in messages but can run stale code (the problem the paper says the
  on-demand model "overcomes").  Experiment E8 measures the trade.

On top of the policies sit three distribution mechanisms (E18):

* **coalescing** (always on) — concurrent ``ensure`` calls for the same
  unit share one in-flight fetch: one request, one download, every
  waiter woken with the same package;
* **digest revalidation** (``revalidate="digest"``) — an ``on_demand``
  re-check sends the cached content digest with the fetch; a matching
  repository answers with a tiny ``not-modified`` reply instead of the
  full bytes;
* **cooperative replicas** (``discovery=`` set) — a cache that stores a
  package publishes an ``ADV_MODULE`` replica advertisement and serves
  ``module-peer-fetch`` requests from other caches.  A miss then costs a
  cheap ``module-head`` to the authority plus a transfer from the
  nearest replica, falling back to the repository only when no replica
  holds the digest.  The repository stays the *version* authority —
  replicas are pure content mirrors keyed by digest.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Optional

from ..p2p.advertisement import (
    ADV_MODULE,
    AttrPredicate,
    module_adv_name,
    module_replica_advertisement,
)
from ..p2p.network import Message
from ..p2p.peer import Peer
from ..simkernel import Event
from .errors import MobilityError, ModuleNotFoundInRepo, RepositoryUnreachable
from .repository import NOT_MODIFIED, PACKAGE_OVERHEAD, ModulePackage, send_package

__all__ = ["CacheStats", "ModuleCache"]

_fetch_ids = itertools.count(1)


@dataclass
class CacheStats:
    requests: int = 0
    hits: int = 0
    fetches: int = 0
    bytes_downloaded: int = 0
    evictions: int = 0
    stale_uses: int = 0
    refreshes: int = 0
    failures: int = 0
    #: ``ensure`` calls satisfied by attaching to an in-flight fetch
    coalesced: int = 0
    #: fetches resolved by a digest match (head check or not-modified)
    revalidations: int = 0
    #: downloads satisfied by a replica peer instead of the repository
    peer_fetches: int = 0
    #: replica fetches that missed and fell back to the repository
    peer_fallbacks: int = 0
    #: ``module-peer-fetch`` requests this cache answered with a package
    peer_serves: int = 0
    #: ``module-peer-fetch`` requests this cache had to decline
    peer_serve_misses: int = 0
    #: bytes shipped to other caches (replica-side upload)
    bytes_served: int = 0
    #: remote requests parked on an in-flight download, served on arrival
    remote_coalesced: int = 0


@dataclass
class _Pending:
    """One in-flight fetch; every concurrent requester hangs off it."""

    unit_name: str
    #: events succeeded with the package (first one is the initiator's)
    waiters: list[Event]
    done: bool = False
    #: open ``module.fetch`` span while the request is in flight
    span: Optional[object] = None
    #: where the bytes were requested from: ``repo`` | ``peer``
    source: str = "repo"
    #: authoritative digest/size from the head check (replica path)
    want_digest: Optional[str] = None
    code_size: int = 0
    #: chunk reassembly state (chunked transfers)
    chunks_seen: int = 0
    pkg: Optional[ModulePackage] = None
    #: remote ``module-peer-fetch`` requesters queued on this download:
    #: (requester peer id, their request id, wanted digest)
    remote_waiters: list = field(default_factory=list)


class ModuleCache:
    """LRU module cache on one peer, fed by a remote repository.

    With ``discovery`` attached the cache is also a *replica*: it
    advertises what it holds and serves other caches.  ``revalidate``
    selects how an ``on_demand`` re-check travels: ``"full"`` (the
    seed protocol — always a full reply) or ``"digest"`` (content
    digest in the request, ``not-modified`` answer on a match).
    """

    def __init__(
        self,
        peer: Peer,
        repository_host: str,
        capacity_bytes: int = 10_000_000,
        policy: str = "on_demand",
        fetch_timeout: float = 30.0,
        discovery: Optional[Any] = None,
        revalidate: str = "full",
        chunk_bytes: Optional[int] = None,
        resolve_window: float = 0.5,
    ):
        if policy not in ("on_demand", "sticky"):
            raise MobilityError(f"unknown cache policy {policy!r}")
        if revalidate not in ("full", "digest"):
            raise MobilityError(f"unknown revalidate mode {revalidate!r}")
        if capacity_bytes <= 0:
            raise MobilityError("capacity_bytes must be positive")
        self.peer = peer
        self.repository_host = repository_host
        self.capacity_bytes = capacity_bytes
        self.policy = policy
        self.fetch_timeout = fetch_timeout
        self.discovery = discovery
        self.revalidate = revalidate
        self.chunk_bytes = chunk_bytes
        self.resolve_window = resolve_window
        self.stats = CacheStats()
        self._cached: OrderedDict[str, ModulePackage] = OrderedDict()
        self._pending: dict[int, _Pending] = {}
        #: unit name → its in-flight fetch (coalescing lookup)
        self._inflight: dict[str, _Pending] = {}
        peer.on("module-package", self._on_package)
        peer.on("module-chunk", self._on_chunk)
        peer.on("module-head-reply", self._on_head_reply)
        peer.on("module-peer-fetch", self._on_peer_fetch)

    # -- inspection -----------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return sum(p.code_size for p in self._cached.values())

    def cached_names(self) -> list[str]:
        return list(self._cached)

    def cached_version(self, unit_name: str) -> Optional[str]:
        pkg = self._cached.get(unit_name)
        return pkg.version if pkg else None

    def telemetry_sample(self) -> dict[str, int]:
        """Cumulative counters for the live telemetry sampler."""
        stats = self.stats
        return {
            "requests": stats.requests,
            "hits": stats.hits,
            "fetches": stats.fetches,
            "peer_fetches": stats.peer_fetches,
            "revalidations": stats.revalidations,
            "bytes_downloaded": stats.bytes_downloaded,
            "cached_units": len(self._cached),
        }

    # -- the on-demand protocol ---------------------------------------------------
    def ensure(self, unit_name: str) -> Event:
        """Make ``unit_name`` locally executable.

        Returns an event yielding the :class:`ModulePackage`.  Under the
        ``sticky`` policy a cached package is returned immediately; under
        ``on_demand`` the repository is always consulted (refreshing the
        cached copy if the version moved).  A second ``ensure`` while the
        same unit is already in flight joins that fetch instead of
        issuing another request.
        """
        self.stats.requests += 1
        cached = self._cached.get(unit_name)
        if cached is not None and self.policy == "sticky":
            self.stats.hits += 1
            self._cached.move_to_end(unit_name)
            tracer = self.peer.sim.tracer
            if tracer.enabled:
                tracer.metrics.counter("mobility.cache_hits").inc()
                tracer.instant(
                    "cache.hit", category="mobility", track=self.peer.peer_id,
                    unit=unit_name, policy=self.policy, version=cached.version,
                )
            ev = self.peer.sim.event()
            ev.succeed(cached)
            return ev
        inflight = self._inflight.get(unit_name)
        if inflight is not None:
            # Coalesce: the bytes are already on their way — one upstream
            # transfer no matter how many local requesters.
            self.stats.coalesced += 1
            tracer = self.peer.sim.tracer
            if tracer.enabled:
                tracer.metrics.counter("mobility.coalesced").inc()
                tracer.instant(
                    "cache.coalesce", category="mobility",
                    track=self.peer.peer_id, unit=unit_name,
                )
            ev = self.peer.sim.event()
            inflight.waiters.append(ev)
            return ev
        return self._fetch(unit_name)

    def release(self, unit_name: str) -> None:
        """Explicitly drop a module ("download and release ... on-demand")."""
        if self._cached.pop(unit_name, None) is None:
            raise MobilityError(f"module {unit_name!r} is not cached")

    # -- fetch state machine ------------------------------------------------------
    def _fetch(self, unit_name: str) -> Event:
        request_id = next(_fetch_ids)
        pending = _Pending(unit_name=unit_name, waiters=[self.peer.sim.event()])
        self._pending[request_id] = pending
        self._inflight[unit_name] = pending
        self.stats.fetches += 1
        tracer = self.peer.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("mobility.fetches").inc()
            pending.span = tracer.begin(
                "module.fetch", category="mobility", track=self.peer.peer_id,
                unit=unit_name, repository=self.repository_host,
            )
        if self.discovery is not None:
            # Replica path: a cheap metadata probe first — the reply
            # either revalidates the cached copy or names the digest to
            # hunt replicas for.
            self.peer.send(
                self.repository_host,
                "module-head",
                payload=(self.peer.peer_id, request_id, unit_name),
                size_bytes=64,
            )
        else:
            self._send_repo_fetch(request_id, unit_name)

        def expire() -> None:
            if not pending.done:
                self._fail(
                    pending,
                    RepositoryUnreachable(
                        f"no reply for module {unit_name!r} within "
                        f"{self.fetch_timeout}s"
                    ),
                    outcome="timeout",
                )

        self.peer.sim.call_at(self.peer.sim.now + self.fetch_timeout, expire)
        return pending.waiters[0]

    def _send_repo_fetch(self, request_id: int, unit_name: str) -> None:
        cached = self._cached.get(unit_name)
        cached_digest = (
            cached.digest
            if cached is not None and self.revalidate == "digest"
            else None
        )
        self.peer.send(
            self.repository_host,
            "module-fetch",
            payload=(self.peer.peer_id, request_id, unit_name, cached_digest),
            size_bytes=96,
        )

    def _on_head_reply(self, message: Message) -> None:
        request_id, unit_name, meta = message.payload
        pending = self._pending.get(request_id)
        if pending is None or pending.done:
            return
        if meta is None:
            self._fail(
                pending,
                ModuleNotFoundInRepo(f"repository has no {unit_name!r}"),
                outcome="not-found",
            )
            return
        _name, version, code_size, digest = meta
        pending.want_digest = digest
        pending.code_size = code_size
        cached = self._cached.get(unit_name)
        if cached is not None and cached.digest == digest:
            # Authoritative content unchanged — the cached copy is current.
            self._revalidated(pending, cached)
            return
        self.peer.sim.process(
            self._resolve_proc(pending, request_id, unit_name),
            name=f"modresolve/{self.peer.peer_id}/{request_id}",
        )

    def _resolve_proc(self, pending: _Pending, request_id: int, unit_name: str):
        """Find the nearest replica holding the wanted digest, or fall back."""
        want = pending.want_digest
        me = self.peer.peer_id
        query = self.discovery.query(
            self.peer,
            adv_type=ADV_MODULE,
            name=module_adv_name(unit_name),
            # Wire-safe predicate (frames may cross process boundaries).
            predicate=AttrPredicate.make(
                equals={"digest": want}, not_equals={"host": me}
            ),
            window=self.resolve_window,
        )
        advs = yield query
        if pending.done:
            return
        network = self.peer.network
        hosts = [
            h
            for h in dict.fromkeys(adv.attributes["host"] for adv in advs)
            if network.is_online(h)
        ]
        if not hosts:
            pending.source = "repo"
            self._send_repo_fetch(request_id, unit_name)
            return
        # Nearest replica by modelled transfer time; ties rotate by
        # request id so simultaneous fetchers spread over equal replicas.
        scored = sorted(
            (network.transfer_time(h, me, pending.code_size), h) for h in hosts
        )
        best = scored[0][0]
        tied = [h for t, h in scored if t == best]
        replica = tied[request_id % len(tied)]
        pending.source = "peer"
        self.peer.send(
            replica,
            "module-peer-fetch",
            payload=(me, request_id, unit_name, want),
            size_bytes=96,
        )

    # -- replies -------------------------------------------------------------------
    def _on_package(self, message: Message) -> None:
        request_id, unit_name, pkg = message.payload
        pending = self._pending.get(request_id)
        if pending is None or pending.done:
            return
        if isinstance(pkg, str) and pkg == NOT_MODIFIED:
            cached = self._cached.get(unit_name)
            if cached is None:
                # Evicted between request and reply: nothing to revalidate
                # against any more — pull the full package.
                pending.source = "repo"
                self.peer.send(
                    self.repository_host,
                    "module-fetch",
                    payload=(self.peer.peer_id, request_id, unit_name, None),
                    size_bytes=96,
                )
                return
            self._revalidated(pending, cached)
            return
        if pkg is None:
            if pending.source == "peer":
                # The replica lost it (evicted, version moved): fall back
                # to the authority rather than failing the ensure.
                self.stats.peer_fallbacks += 1
                pending.source = "repo"
                self._send_repo_fetch(request_id, unit_name)
                return
            self.stats.failures += 1
            if pending.span is not None:
                pending.span.end(outcome="not-found")
            self._finish(pending)
            exc = ModuleNotFoundInRepo(f"repository has no {unit_name!r}")
            for ev in pending.waiters:
                ev.fail(exc)
            self._flush_remote(pending, None)
            return
        self._absorb(pending, pkg)

    def _on_chunk(self, message: Message) -> None:
        request_id, unit_name, pkg, _seq, total = message.payload
        pending = self._pending.get(request_id)
        if pending is None or pending.done:
            return
        if pkg is not None:
            pending.pkg = pkg
        pending.chunks_seen += 1
        if pending.chunks_seen >= total and pending.pkg is not None:
            self._absorb(pending, pending.pkg)

    def _revalidated(self, pending: _Pending, cached: ModulePackage) -> None:
        """A digest match confirmed the cached copy without a download."""
        self.stats.hits += 1
        self.stats.revalidations += 1
        self._cached.move_to_end(pending.unit_name)
        tracer = self.peer.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("mobility.cache_hits").inc()
            tracer.metrics.counter("mobility.revalidations").inc()
        if pending.span is not None:
            pending.span.end(
                outcome="revalidate", version=cached.version, nbytes=0
            )
        self._finish(pending)
        for ev in pending.waiters:
            ev.succeed(cached)
        self._flush_remote(pending, cached)

    def _absorb(self, pending: _Pending, pkg: ModulePackage) -> None:
        """Install a downloaded package and wake every waiter."""
        unit_name = pending.unit_name
        previous = self._cached.get(unit_name)
        if previous is not None:
            if previous.version == pkg.version:
                self.stats.hits += 1
                outcome = "hit"
            else:
                self.stats.refreshes += 1
                outcome = "refresh"
        else:
            outcome = "new"
        self.stats.bytes_downloaded += pkg.code_size
        if pending.source == "peer":
            self.stats.peer_fetches += 1
        self._cached[unit_name] = pkg
        self._cached.move_to_end(unit_name)
        self._evict_to_fit()
        if pending.span is not None:
            tracer = self.peer.sim.tracer
            if tracer.enabled:
                if outcome == "hit":
                    tracer.metrics.counter("mobility.cache_hits").inc()
                else:
                    tracer.metrics.counter("mobility.cache_misses").inc()
            pending.span.end(
                outcome=outcome, version=pkg.version, nbytes=pkg.code_size,
                source=pending.source,
            )
        self._finish(pending)
        for ev in pending.waiters:
            ev.succeed(pkg)
        self._flush_remote(pending, pkg)
        if self.discovery is not None:
            self._advertise(pkg)

    def _fail(self, pending: _Pending, exc: Exception, outcome: str) -> None:
        self.stats.failures += 1
        if pending.span is not None:
            pending.span.end(outcome=outcome)
        self._finish(pending)
        for ev in pending.waiters:
            ev.fail(exc)
        self._flush_remote(pending, None)

    def _finish(self, pending: _Pending) -> None:
        pending.done = True
        if self._inflight.get(pending.unit_name) is pending:
            del self._inflight[pending.unit_name]
        stale = [rid for rid, p in self._pending.items() if p is pending]
        for rid in stale:
            del self._pending[rid]

    def _evict_to_fit(self) -> None:
        while self.used_bytes > self.capacity_bytes and len(self._cached) > 1:
            self._cached.popitem(last=False)
            self.stats.evictions += 1

    # -- the replica role ----------------------------------------------------------
    def _advertise(self, pkg: ModulePackage) -> None:
        adv = module_replica_advertisement(
            pkg.name, self.peer.peer_id, pkg.version, pkg.digest, pkg.code_size
        )
        self.discovery.publish(self.peer, adv)

    def _on_peer_fetch(self, message: Message) -> None:
        requester, request_id, unit_name, want_digest = message.payload
        pkg = self._cached.get(unit_name)
        if pkg is not None and (want_digest is None or pkg.digest == want_digest):
            self._serve(requester, request_id, unit_name, pkg)
            return
        inflight = self._inflight.get(unit_name)
        if inflight is not None:
            # The bytes are already inbound here: park the remote requester
            # and serve it on arrival — one upstream transfer for N peers.
            self.stats.remote_coalesced += 1
            inflight.remote_waiters.append((requester, request_id, want_digest))
            return
        self.stats.peer_serve_misses += 1
        self.peer.send(
            requester,
            "module-package",
            payload=(request_id, unit_name, None),
            size_bytes=PACKAGE_OVERHEAD,
        )

    def _serve(
        self, requester: str, request_id: int, unit_name: str, pkg: ModulePackage
    ) -> None:
        self.stats.peer_serves += 1
        self.stats.bytes_served += pkg.code_size
        self._cached.move_to_end(unit_name)
        tracer = self.peer.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("mobility.peer_serves").inc()
            tracer.instant(
                "cache.serve", category="mobility", track=self.peer.peer_id,
                unit=unit_name, requester=requester, nbytes=pkg.code_size,
            )
        send_package(
            self.peer, requester, request_id, unit_name, pkg,
            chunk_bytes=self.chunk_bytes,
        )

    def _flush_remote(self, pending: _Pending, pkg: Optional[ModulePackage]) -> None:
        """Answer remote requesters parked on this fetch (or bounce them)."""
        for requester, request_id, want_digest in pending.remote_waiters:
            if pkg is not None and (
                want_digest is None or pkg.digest == want_digest
            ):
                self._serve(requester, request_id, pending.unit_name, pkg)
            else:
                self.stats.peer_serve_misses += 1
                self.peer.send(
                    requester,
                    "module-package",
                    payload=(request_id, pending.unit_name, None),
                    size_bytes=PACKAGE_OVERHEAD,
                )
        pending.remote_waiters.clear()

    def note_stale_use(self) -> None:
        """Record that a stale cached module was executed (E8 metric)."""
        self.stats.stale_uses += 1
