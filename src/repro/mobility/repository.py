"""The module repository — where executable units live (system S7).

"This dynamic download of code, depending on what is to be executed by a
peer, allows the peer to only host code that is necessary – and overcomes
the problem of having inconsistent versions of executables (as the
executable must be requested from the owner whenever an execution is to
be undertaken)."

A :class:`ModuleRepository` is hosted on one peer (typically the
controller's, or the paper's "pre-defined portal") and answers
``module-fetch`` messages with a :class:`ModulePackage`.  Publishing a new
version of a unit bumps the authoritative version; peers that fetch on
demand always receive the latest, while peers that reuse a stale cache can
be *measured* doing so (experiment E8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Type

from ..core.registry import UnitRegistry
from ..core.units import Unit
from ..p2p.advertisement import ADV_MODULE, Advertisement
from ..p2p.network import Message
from ..p2p.peer import Peer
from .errors import ModuleNotFoundInRepo

__all__ = ["ModulePackage", "ModuleRepository"]


@dataclass(frozen=True)
class ModulePackage:
    """One shipped unit implementation (the 'byte code' of the paper)."""

    name: str
    version: str
    code_size: int
    cls: Type[Unit]

    @property
    def qualified_name(self) -> str:
        return f"{self.name}@{self.version}"


@dataclass
class RepoStats:
    fetch_requests: int = 0
    packages_served: int = 0
    bytes_served: int = 0
    misses: int = 0


class ModuleRepository:
    """Authoritative module store served by one peer."""

    def __init__(self, peer: Peer, registry: UnitRegistry):
        self.peer = peer
        self.registry = registry
        self.stats = RepoStats()
        # Version overrides let experiments publish "new releases" without
        # defining new classes.
        self._version_overrides: dict[str, str] = {}
        peer.on("module-fetch", self._on_fetch)

    # -- authoritative versions -----------------------------------------------
    def current_version(self, unit_name: str) -> str:
        desc = self.registry.lookup(unit_name)
        return self._version_overrides.get(desc.name, desc.version)

    def publish_new_version(self, unit_name: str, version: str) -> None:
        """Release a new version of a hosted unit (same code object)."""
        desc = self.registry.lookup(unit_name)
        self._version_overrides[desc.name] = version

    def package(self, unit_name: str) -> ModulePackage:
        """Build the package for the current version of a unit."""
        try:
            desc = self.registry.lookup(unit_name)
        except Exception as exc:
            self.stats.misses += 1
            raise ModuleNotFoundInRepo(str(exc)) from exc
        return ModulePackage(
            name=desc.name,
            version=self.current_version(desc.name),
            code_size=desc.code_size,
            cls=desc.cls,
        )

    def advertisement(self) -> Advertisement:
        """Advertise this repository so peers can find their code source."""
        return Advertisement.make(
            ADV_MODULE,
            "module-repository",
            self.peer.peer_id,
            attrs={"host": self.peer.peer_id, "units": len(self.registry)},
        )

    # -- network protocol ----------------------------------------------------------
    def _on_fetch(self, message: Message) -> None:
        requester, request_id, unit_name = message.payload
        self.stats.fetch_requests += 1
        try:
            pkg: Optional[ModulePackage] = self.package(unit_name)
        except ModuleNotFoundInRepo:
            pkg = None
        size = 64 + (pkg.code_size if pkg else 0)
        if pkg is not None:
            self.stats.packages_served += 1
            self.stats.bytes_served += pkg.code_size
        tracer = self.peer.sim.tracer
        if tracer.enabled:
            tracer.metrics.counter("mobility.repo_fetches").inc()
            tracer.instant(
                "repo.fetch", category="mobility", track=self.peer.peer_id,
                unit=unit_name, requester=requester,
                served=pkg is not None, nbytes=size,
            )
        self.peer.send(
            requester, "module-package", payload=(request_id, unit_name, pkg), size_bytes=size
        )
