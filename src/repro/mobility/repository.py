"""The module repository — where executable units live (system S7).

"This dynamic download of code, depending on what is to be executed by a
peer, allows the peer to only host code that is necessary – and overcomes
the problem of having inconsistent versions of executables (as the
executable must be requested from the owner whenever an execution is to
be undertaken)."

A :class:`ModuleRepository` is hosted on one peer (typically the
controller's, or the paper's "pre-defined portal") and answers
``module-fetch`` messages with a :class:`ModulePackage`.  On the TCP
transport the package crosses the process boundary with its unit class
encoded *by reference* (module-qualified name), so a worker process
imports — rather than deserialises — the code it fetched, matching the
paper's download-on-demand model.  Publishing a new
version of a unit bumps the authoritative version; peers that fetch on
demand always receive the latest, while peers that reuse a stale cache can
be *measured* doing so (experiment E8).

Packages are **content-addressed**: every :class:`ModulePackage` carries a
deterministic digest of its identity (name, version, code size), so

* a ``module-fetch`` carrying the digest of an already-cached copy is
  answered with a tiny ``not-modified`` reply instead of the full bytes
  (revalidation stays a message round-trip, not a re-download);
* a ``module-head`` request returns just the authoritative metadata, so a
  :class:`~repro.mobility.cache.ModuleCache` can decide *where* to pull
  the bytes from — any replica peer holding the same digest serves the
  identical package (see docs/performance.md, "Module distribution");
* large packages are split into fixed-size ``module-chunk`` messages
  (``chunk_bytes``) so transfers pipeline over a contended uplink rather
  than holding it for one monolithic reply.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Type

from ..core.registry import UnitRegistry
from ..core.units import Unit
from ..p2p.advertisement import ADV_MODULE, Advertisement
from ..p2p.network import Message, chunk_sizes
from ..p2p.peer import Peer
from .errors import ModuleNotFoundInRepo

__all__ = [
    "ModulePackage",
    "ModuleRepository",
    "RepoStats",
    "content_digest",
    "send_package",
    "NOT_MODIFIED",
]

#: sentinel shipped in a ``module-package`` reply when the requester's
#: cached digest matches the authoritative one — no bytes follow.
NOT_MODIFIED = "not-modified"

#: modelled envelope bytes around a full package reply / a chunk / a
#: not-modified reply.
PACKAGE_OVERHEAD = 64
CHUNK_OVERHEAD = 32
NOT_MODIFIED_SIZE = 80


def content_digest(name: str, version: str, code_size: int) -> str:
    """Deterministic content address of one package build.

    The simulation ships class objects, not real byte code, so the digest
    is derived from the package identity — two packages with equal
    (name, version, code_size) are the *same content* everywhere, which
    is exactly the property replica resolution needs.
    """
    key = f"{name}@{version}:{code_size}".encode()
    return hashlib.sha256(key).hexdigest()[:16]


@dataclass(frozen=True)
class ModulePackage:
    """One shipped unit implementation (the 'byte code' of the paper)."""

    name: str
    version: str
    code_size: int
    cls: Type[Unit]
    #: content address; filled from the identity fields when omitted
    digest: str = ""

    def __post_init__(self):
        if not self.digest:
            object.__setattr__(
                self, "digest", content_digest(self.name, self.version, self.code_size)
            )

    @property
    def qualified_name(self) -> str:
        return f"{self.name}@{self.version}"


@dataclass
class RepoStats:
    fetch_requests: int = 0
    packages_served: int = 0
    bytes_served: int = 0
    misses: int = 0
    #: metadata-only ``module-head`` requests answered
    head_requests: int = 0
    #: fetches answered with a ``not-modified`` reply (digest matched)
    revalidations: int = 0
    #: ``module-chunk`` messages sent (0 unless ``chunk_bytes`` is set)
    chunks_sent: int = 0


def send_package(
    peer: Peer,
    dst: str,
    request_id: int,
    unit_name: str,
    pkg: ModulePackage,
    chunk_bytes: Optional[int] = None,
) -> int:
    """Ship ``pkg`` to ``dst``; chunked when larger than ``chunk_bytes``.

    Shared by the repository and replica-serving caches so both speak the
    same wire protocol.  Returns the number of messages sent.  Package
    metadata rides only in chunk 0; the receiver completes reassembly
    when every sequence number has arrived.
    """
    if chunk_bytes is None or pkg.code_size <= chunk_bytes:
        peer.send(
            dst,
            "module-package",
            payload=(request_id, unit_name, pkg),
            size_bytes=PACKAGE_OVERHEAD + pkg.code_size,
        )
        return 1
    sizes = chunk_sizes(pkg.code_size, chunk_bytes)
    total = len(sizes)
    for seq, nbytes in enumerate(sizes):
        peer.send(
            dst,
            "module-chunk",
            payload=(request_id, unit_name, pkg if seq == 0 else None, seq, total),
            size_bytes=CHUNK_OVERHEAD + nbytes,
        )
    return total


class ModuleRepository:
    """Authoritative module store served by one peer."""

    def __init__(
        self,
        peer: Peer,
        registry: UnitRegistry,
        chunk_bytes: Optional[int] = None,
    ):
        self.peer = peer
        self.registry = registry
        self.chunk_bytes = chunk_bytes
        self.stats = RepoStats()
        # Version overrides let experiments publish "new releases" without
        # defining new classes.
        self._version_overrides: dict[str, str] = {}
        peer.on("module-fetch", self._on_fetch)
        peer.on("module-head", self._on_head)

    # -- authoritative versions -----------------------------------------------
    def current_version(self, unit_name: str) -> str:
        desc = self.registry.lookup(unit_name)
        return self._version_overrides.get(desc.name, desc.version)

    def publish_new_version(self, unit_name: str, version: str) -> None:
        """Release a new version of a hosted unit (same code object)."""
        desc = self.registry.lookup(unit_name)
        self._version_overrides[desc.name] = version

    def package(self, unit_name: str) -> ModulePackage:
        """Build the package for the current version of a unit."""
        try:
            desc = self.registry.lookup(unit_name)
        except Exception as exc:
            self.stats.misses += 1
            raise ModuleNotFoundInRepo(str(exc)) from exc
        return ModulePackage(
            name=desc.name,
            version=self.current_version(desc.name),
            code_size=desc.code_size,
            cls=desc.cls,
        )

    def advertisement(self) -> Advertisement:
        """Advertise this repository so peers can find their code source."""
        return Advertisement.make(
            ADV_MODULE,
            "module-repository",
            self.peer.peer_id,
            attrs={"host": self.peer.peer_id, "units": len(self.registry)},
        )

    # -- network protocol ----------------------------------------------------------
    def _on_fetch(self, message: Message) -> None:
        requester, request_id, unit_name, cached_digest = message.payload
        self.stats.fetch_requests += 1
        try:
            pkg: Optional[ModulePackage] = self.package(unit_name)
        except ModuleNotFoundInRepo:
            pkg = None
        tracer = self.peer.sim.tracer
        if pkg is None:
            if tracer.enabled:
                tracer.metrics.counter("mobility.repo_fetches").inc()
                tracer.instant(
                    "repo.fetch", category="mobility", track=self.peer.peer_id,
                    unit=unit_name, requester=requester,
                    served=False, nbytes=PACKAGE_OVERHEAD,
                )
            self.peer.send(
                requester,
                "module-package",
                payload=(request_id, unit_name, None),
                size_bytes=PACKAGE_OVERHEAD,
            )
            return
        if cached_digest is not None and cached_digest == pkg.digest:
            # The requester already holds this exact content: revalidate
            # with a tiny reply instead of re-shipping the bytes.
            self.stats.revalidations += 1
            if tracer.enabled:
                tracer.metrics.counter("mobility.repo_fetches").inc()
                tracer.instant(
                    "repo.fetch", category="mobility", track=self.peer.peer_id,
                    unit=unit_name, requester=requester,
                    served=True, nbytes=NOT_MODIFIED_SIZE, revalidated=True,
                )
            self.peer.send(
                requester,
                "module-package",
                payload=(request_id, unit_name, NOT_MODIFIED),
                size_bytes=NOT_MODIFIED_SIZE,
            )
            return
        self.stats.packages_served += 1
        self.stats.bytes_served += pkg.code_size
        if tracer.enabled:
            tracer.metrics.counter("mobility.repo_fetches").inc()
            tracer.instant(
                "repo.fetch", category="mobility", track=self.peer.peer_id,
                unit=unit_name, requester=requester,
                served=True, nbytes=PACKAGE_OVERHEAD + pkg.code_size,
            )
        sent = send_package(
            self.peer, requester, request_id, unit_name, pkg,
            chunk_bytes=self.chunk_bytes,
        )
        if sent > 1:
            self.stats.chunks_sent += sent

    def _on_head(self, message: Message) -> None:
        """Answer a metadata probe: (name, version, code_size, digest)."""
        requester, request_id, unit_name = message.payload
        self.stats.head_requests += 1
        try:
            pkg = self.package(unit_name)
            meta = (pkg.name, pkg.version, pkg.code_size, pkg.digest)
        except ModuleNotFoundInRepo:
            meta = None
        tracer = self.peer.sim.tracer
        if tracer.enabled:
            tracer.instant(
                "repo.head", category="mobility", track=self.peer.peer_id,
                unit=unit_name, requester=requester, served=meta is not None,
            )
        self.peer.send(
            requester,
            "module-head-reply",
            payload=(request_id, unit_name, meta),
            size_bytes=96,
        )
