"""Exception hierarchy for the mobility layer."""

from __future__ import annotations


class MobilityError(Exception):
    """Base class for all mobility errors."""


class ModuleNotFoundInRepo(MobilityError):
    """A fetch named a unit the repository does not host."""


class RepositoryUnreachable(MobilityError):
    """The module repository peer did not answer within the window."""


class SandboxViolation(MobilityError):
    """A module attempted (or declared) an operation the host denies.

    The Java-sandbox analogue: "The sandbox ensures that an untrusted and
    possibly malicious application cannot gain access to system
    resources."
    """
