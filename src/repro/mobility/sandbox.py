"""The sandbox — the paper's only security mechanism, made explicit.

"In the same way that an Applet has security on the client side, we
provide a similar level of security on the Triana server through the Java
Sandbox. ... The sandbox ensures that an untrusted and possibly
malicious application cannot gain access to system resources."

We reproduce the *policy* layer: every unit declares the host permissions
it needs (``Unit.REQUIRED_PERMISSIONS``); a peer's :class:`SandboxPolicy`
grants a set of permissions and optionally restricts execution to a
certified library — the paper's proposed alternative: "allow users to
only download executables that are selected from a pre-agreed, certified,
software library."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Type

from ..core.units import Unit
from .errors import SandboxViolation

__all__ = ["SandboxPolicy", "DEFAULT_PERMISSIONS", "OPEN_PERMISSIONS"]

#: What a consumer host grants by default: pure computation only.  File
#: system and network access are denied, matching the Java applet sandbox.
DEFAULT_PERMISSIONS = frozenset({"cpu", "ram"})

#: Everything a unit could ask for (trusted/owner execution).
OPEN_PERMISSIONS = frozenset(
    {"cpu", "ram", "fs.read", "fs.write", "net.connect", "exec"}
)


@dataclass
class SandboxStats:
    checks: int = 0
    denials: int = 0
    uncertified_rejections: int = 0


@dataclass
class SandboxPolicy:
    """Per-peer execution policy.

    Parameters
    ----------
    granted:
        Permission names the host allows.
    certified_only:
        If True, only units whose qualified names appear in
        ``certified_library`` may run at all.
    certified_library:
        The pre-agreed library (``{"Wave@1.0", ...}``).
    max_module_ram:
        Upper bound on a module's declared working-set bytes ("Users also
        would have the option to specify how much RAM the applications
        could use").
    """

    granted: frozenset[str] = DEFAULT_PERMISSIONS
    certified_only: bool = False
    certified_library: frozenset[str] = frozenset()
    max_module_ram: Optional[int] = None
    stats: SandboxStats = field(default_factory=SandboxStats)

    def __post_init__(self):
        self.granted = frozenset(self.granted)
        self.certified_library = frozenset(self.certified_library)

    # -- policy checks ---------------------------------------------------------
    def check_permissions(self, required: Iterable[str]) -> None:
        """Raise :class:`SandboxViolation` on any missing permission."""
        self.stats.checks += 1
        missing = sorted(set(required) - self.granted)
        if missing:
            self.stats.denials += 1
            raise SandboxViolation(
                f"sandbox denies permissions {missing}; granted: {sorted(self.granted)}"
            )

    def check_certified(self, qualified_name: str) -> None:
        if self.certified_only and qualified_name not in self.certified_library:
            self.stats.uncertified_rejections += 1
            raise SandboxViolation(
                f"host only runs certified modules; {qualified_name!r} is not "
                "in the pre-agreed library"
            )

    def check_ram(self, requested_bytes: int) -> None:
        if self.max_module_ram is not None and requested_bytes > self.max_module_ram:
            self.stats.denials += 1
            raise SandboxViolation(
                f"module wants {requested_bytes} bytes RAM, host cap is "
                f"{self.max_module_ram}"
            )

    def authorise(self, cls: Type[Unit], version: str | None = None) -> None:
        """Full admission check for a unit class about to be instantiated."""
        qualified = f"{cls.unit_name()}@{version or cls.VERSION}"
        self.check_certified(qualified)
        self.check_permissions(("cpu", "ram", *cls.REQUIRED_PERMISSIONS))

    def instantiate(self, cls: Type[Unit], version: str | None = None, **params) -> Unit:
        """Authorise and construct a unit in one step."""
        self.authorise(cls, version)
        return cls(**params)
