"""Analysis harness (system S10): metrics, tables, experiment runners."""

from .experiments import (
    e1_workflow_roundtrip,
    e2_accumstat_snr,
    e3_pipeline_throughput,
    e4_galaxy_speedup,
    e5_inspiral_sizing,
    e7_discovery_scaling,
    e8_mobility,
    e9_volunteer_throughput,
    e10_policy_ablation,
    e14_split_axis,
    e18_moddist,
    simulate_volunteer_fleet,
)
from .metrics import (
    SECONDS_PER_YEAR,
    cpu_years,
    parallel_efficiency,
    spectrum_snr,
    speedup,
)
from .tables import fmt, render_kv, render_table
from .workloads import fig1_graph, fig1_grouped, pipeline_graph

__all__ = [
    "SECONDS_PER_YEAR",
    "cpu_years",
    "e10_policy_ablation",
    "e14_split_axis",
    "e18_moddist",
    "e1_workflow_roundtrip",
    "e2_accumstat_snr",
    "e3_pipeline_throughput",
    "e4_galaxy_speedup",
    "e5_inspiral_sizing",
    "e7_discovery_scaling",
    "e8_mobility",
    "e9_volunteer_throughput",
    "fig1_graph",
    "fig1_grouped",
    "fmt",
    "parallel_efficiency",
    "pipeline_graph",
    "render_kv",
    "render_table",
    "simulate_volunteer_fleet",
    "spectrum_snr",
    "speedup",
]
