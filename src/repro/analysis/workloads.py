"""Canonical workload builders shared by examples, tests and benchmarks."""

from __future__ import annotations

from ..core.taskgraph import TaskGraph

__all__ = ["fig1_graph", "fig1_grouped", "pipeline_graph"]


def fig1_graph() -> TaskGraph:
    """The paper's Fig. 1 network: Wave → GaussianNoise → FFT →
    PowerSpectrum → AccumStat → Grapher."""
    g = TaskGraph("fig1")
    g.add_task("Wave", "Wave", frequency=64.0, amplitude=0.2,
               samples=1024, sampling_rate=1024.0)
    g.add_task("Gaussian", "GaussianNoise", sigma=2.0)
    g.add_task("FFT", "FFT")
    g.add_task("Power", "PowerSpectrum")
    g.add_task("Accum", "AccumStat")
    g.add_task("Grapher", "Grapher")
    for a, b in [("Wave", "Gaussian"), ("Gaussian", "FFT"), ("FFT", "Power"),
                 ("Power", "Accum"), ("Accum", "Grapher")]:
        g.connect(a, 0, b, 0)
    return g


def fig1_grouped(policy: str = "parallel") -> TaskGraph:
    """Fig. 1 with Code Segment 1's GroupTask (Gaussian + FFT) formed."""
    g = fig1_graph()
    g.group_tasks("GroupTask", ["Gaussian", "FFT"], policy=policy)
    return g


def pipeline_graph(n_stages: int, samples: int = 4096) -> TaskGraph:
    """Fig. 4's 'simple distributed pipelined linear network': a source,
    ``n_stages`` filter stages grouped with the p2p policy, and a sink."""
    if n_stages < 1:
        raise ValueError("n_stages must be >= 1")
    g = TaskGraph(f"pipeline-{n_stages}")
    g.add_task("Source", "Wave", samples=samples)
    stage_names = []
    prev = "Source"
    for i in range(n_stages):
        name = f"Stage{i}"
        # Alternate filters so stages are distinct but same-cost.
        if i % 2 == 0:
            g.add_task(name, "LowPass", cutoff=400.0 - i)
        else:
            g.add_task(name, "HighPass", cutoff=1.0 + i)
        g.connect(prev, 0, name, 0)
        prev = name
        stage_names.append(name)
    g.add_task("Sink", "Grapher")
    g.connect(prev, 0, "Sink", 0)
    g.group_tasks("Chain", stage_names, policy="p2p")
    return g
