"""Plain-text table/series rendering for the benchmark harness.

Every experiment prints its results as aligned text tables, so the bench
output can be compared line-by-line with the paper's claims in
``EXPERIMENTS.md``.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

__all__ = ["render_table", "render_kv", "fmt"]


def fmt(value: Any, precision: int = 3) -> str:
    """Human-friendly cell formatting."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[fmt(c, precision) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_kv(pairs: Iterable[tuple[str, Any]], title: str | None = None) -> str:
    """Render key/value summary lines."""
    items = list(pairs)
    width = max((len(k) for k, _v in items), default=0)
    lines = [title] if title else []
    for k, v in items:
        lines.append(f"{k.ljust(width)}  {fmt(v)}")
    return "\n".join(lines)
