"""Metrics shared by the experiment harness."""

from __future__ import annotations

import numpy as np

from ..core.types import Spectrum

__all__ = [
    "spectrum_snr",
    "speedup",
    "parallel_efficiency",
    "cpu_years",
    "SECONDS_PER_YEAR",
]

SECONDS_PER_YEAR = 365.25 * 86_400.0


def spectrum_snr(spectrum: Spectrum, signal_hz: float, guard_bins: int = 2) -> float:
    """Peak-to-noise-floor ratio of a spectrum at a known line frequency.

    The Fig. 2 quantity: the 64 Hz line against the standard deviation of
    the surrounding noise bins (excluding a guard band around the line
    and the DC bins).
    """
    if len(spectrum) < 8:
        raise ValueError("spectrum too short for an SNR estimate")
    signal_bin = int(round(signal_hz / spectrum.df))
    if not 0 <= signal_bin < len(spectrum):
        raise ValueError(f"signal at {signal_hz} Hz outside the spectrum")
    mask = np.ones(len(spectrum.data), dtype=bool)
    lo = max(signal_bin - guard_bins, 0)
    hi = min(signal_bin + guard_bins + 1, len(spectrum.data))
    mask[lo:hi] = False
    mask[: min(3, len(mask))] = False
    noise = spectrum.data[mask]
    sigma = noise.std()
    if sigma == 0:
        return float("inf")
    return float(spectrum.data[signal_bin] / sigma)


def speedup(t_baseline: float, t_parallel: float) -> float:
    """Classic speedup; infinite when the parallel run is instantaneous."""
    if t_baseline < 0 or t_parallel < 0:
        raise ValueError("times must be >= 0")
    if t_parallel == 0:
        return float("inf")
    return t_baseline / t_parallel


def parallel_efficiency(t_baseline: float, t_parallel: float, workers: int) -> float:
    """Speedup normalised by worker count."""
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return speedup(t_baseline, t_parallel) / workers


def cpu_years(cpu_seconds: float) -> float:
    """Convert cpu-seconds to the paper's 'CPU years' currency."""
    return cpu_seconds / SECONDS_PER_YEAR
