"""Experiment runners E1–E14 (DESIGN.md §3).

Each function runs one paper-anchored experiment end-to-end and returns a
plain dict of results; the ``benchmarks/`` harness times them and prints
the paper-comparable tables recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

import numpy as np

from ..apps import inspiral as insp
from ..core.engine import LocalEngine
from ..core.xml_io import graph_from_string, graph_to_string
from ..grid import ConsumerGrid
from ..p2p.advertisement import ADV_SERVICE, Advertisement
from ..p2p.discovery import (
    CentralIndexDiscovery,
    FloodingDiscovery,
    RendezvousDiscovery,
)
from ..p2p.network import LAN_PROFILE, SimNetwork
from ..p2p.peer import Peer
from ..resources.availability import AvailabilityModel, PoissonChurn, ScreensaverCycle
from ..simkernel import Interrupt, Simulator, Store
from .metrics import SECONDS_PER_YEAR, parallel_efficiency, spectrum_snr, speedup
from .workloads import fig1_graph, fig1_grouped, pipeline_graph

__all__ = [
    "e1_workflow_roundtrip",
    "e2_accumstat_snr",
    "e3_pipeline_throughput",
    "e4_galaxy_speedup",
    "e5_inspiral_sizing",
    "simulate_volunteer_fleet",
    "e7_discovery_scaling",
    "e8_mobility",
    "e9_volunteer_throughput",
    "e10_policy_ablation",
    "e14_split_axis",
    "e18_moddist",
]


# -- E1: Fig. 1 + Code Segment 1 ---------------------------------------------------


def e1_workflow_roundtrip() -> dict[str, Any]:
    """Build the Fig. 1 workflow, group it, serialise, parse, re-execute."""
    g = fig1_grouped()
    xml = graph_to_string(g)
    g2 = graph_from_string(xml)
    xml2 = graph_to_string(g2)
    engine = LocalEngine(g2)
    probe = engine.attach_probe("Accum")
    engine.run(iterations=20)
    spec = probe.last
    peak_hz = float(spec.frequencies()[np.argmax(spec.data)])
    return {
        "tasks": len(g.tasks),
        "group_members": len(g.task("GroupTask").graph.tasks),
        "xml_bytes": len(xml.encode()),
        "roundtrip_stable": xml == xml2,
        "peak_hz": peak_hz,
        "xml": xml,
    }


# -- E2: Fig. 2 — spectrum averaging pulls the signal out of noise -------------------


def e2_accumstat_snr(max_iterations: int = 20) -> dict[str, Any]:
    """SNR of the averaged power spectrum after n iterations, n=1..max.

    Also records whether the 64 Hz line is the *global* spectral peak —
    Fig. 2's visual claim: at n=1 the signal is buried (some noise bin is
    taller); by n=20 it is unmistakable.
    """
    engine = LocalEngine(fig1_graph())
    probe = engine.attach_probe("Accum")
    series = []
    for n in range(1, max_iterations + 1):
        engine.run(1)
        spec = probe.last
        signal_bin = int(round(64.0 / spec.df))
        peak_correct = int(np.argmax(spec.data[3:])) + 3 == signal_bin
        series.append((n, spectrum_snr(spec, signal_hz=64.0), peak_correct))
    snr1 = series[0][1]
    snr_last = series[-1][1]
    return {
        "series": series,
        "snr_1": snr1,
        "snr_n": snr_last,
        "gain": snr_last / snr1,
        "sqrt_n": float(np.sqrt(max_iterations)),
        "buried_at_1": not series[0][2],
        "visible_at_n": series[-1][2],
    }


# -- E3: Fig. 4 — distributed pipelined linear network --------------------------------


def e3_pipeline_throughput(
    stage_counts: tuple[int, ...] = (2, 4, 8), iterations: int = 16, seed: int = 0,
    trace: bool = False, telemetry: bool = False,
) -> dict[str, Any]:
    """Makespan/throughput of p2p pipelines of increasing depth.

    ``trace=True`` records the deepest pipeline's run and returns its
    tracer under ``"tracer"`` (tracing is passive, results unchanged).
    ``telemetry=True`` additionally samples live telemetry on every
    configuration — also passive, rows bit-identical.
    """
    rows = []
    tracer = None
    for n_stages in stage_counts:
        traced = trace and n_stages == stage_counts[-1]
        grid = ConsumerGrid(
            n_workers=n_stages,
            seed=seed,
            worker_profile=LAN_PROFILE,
            controller_profile=LAN_PROFILE,
            worker_efficiency=1e-5,
            trace=traced,
            telemetry=telemetry,
        )
        if traced:
            tracer = grid.sim.tracer
        report = grid.run(pipeline_graph(n_stages), iterations=iterations)
        stage_time = max(
            w.stats.busy_seconds / max(w.stats.iterations, 1)
            for w in grid.workers.values()
        )
        sequential = n_stages * iterations * stage_time
        ideal = (iterations + n_stages - 1) * stage_time
        rows.append(
            {
                "stages": n_stages,
                "makespan_s": report.makespan,
                "sequential_s": sequential,
                "ideal_pipeline_s": ideal,
                "throughput_per_s": iterations / report.makespan,
                "pipeline_gain": sequential / report.makespan,
            }
        )
    return {"iterations": iterations, "rows": rows, "tracer": tracer}


# -- E4: Case 1 — galaxy frame farm speedup -------------------------------------------


def e4_galaxy_speedup(
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
    n_frames: int = 16,
    n_particles: int = 400,
    resolution: int = 32,
    seed: int = 0,
    trace: bool = False,
    telemetry: bool = False,
) -> dict[str, Any]:
    """Render-farm makespan vs worker count ("a fraction of the time").

    ``trace=True`` records the widest configuration's run and returns
    its tracer under ``"tracer"`` (tracing is passive, rows unchanged).
    ``telemetry=True`` additionally samples live telemetry on every
    configuration — also passive, rows bit-identical.
    """
    from ..apps.galaxy import build_galaxy_graph, generate_snapshots

    rows = []
    t1 = None
    tracer = None
    for k in worker_counts:
        key = f"e4-dataset-{seed}-{k}"
        generate_snapshots(n_frames, n_particles, seed=seed, register_as=key)
        traced = trace and k == worker_counts[-1]
        grid = ConsumerGrid(
            n_workers=k,
            seed=seed,
            worker_profile=LAN_PROFILE,
            controller_profile=LAN_PROFILE,
            worker_efficiency=1e-5,
            trace=traced,
            telemetry=telemetry,
        )
        if traced:
            tracer = grid.sim.tracer
        graph = build_galaxy_graph(key, resolution=resolution, policy="parallel")
        report = grid.run(graph, iterations=n_frames)
        if t1 is None:
            t1 = report.makespan
        rows.append(
            {
                "workers": k,
                "makespan_s": report.makespan,
                "speedup": speedup(t1, report.makespan),
                "efficiency": parallel_efficiency(t1, report.makespan, k),
            }
        )
    return {"frames": n_frames, "rows": rows, "tracer": tracer}


# -- E5: Case 2 — inspiral real-time sizing under churn --------------------------------


@dataclass
class _Chunk:
    index: int
    arrival: float
    flops: float


def simulate_volunteer_fleet(
    n_peers: int,
    n_chunks: int = 40,
    chunk_seconds: float = insp.PAPER_CHUNK_SECONDS,
    n_templates: int = insp.PAPER_TEMPLATES_LOW,
    availability_factory: Optional[Callable[[str], AvailabilityModel]] = None,
    checkpointing: bool = True,
    cpu_flops: float = insp.PAPER_CPU_FLOPS,
    seed: int = 0,
    horizon_factor: float = 40.0,
) -> dict[str, Any]:
    """Stream 900 s strain chunks through a volunteer fleet.

    The paper's sizing argument made executable: each chunk costs
    5 h × 2 GHz of work (paper-calibrated); peers churn per the
    availability model; interrupted chunks either resume elsewhere from a
    checkpoint or restart.  Returns lag/throughput statistics.
    """
    sim = Simulator(seed=seed)
    net = SimNetwork(sim, jitter_fraction=0.0)
    n_samples = int(chunk_seconds * insp.PAPER_SAMPLING_RATE)
    chunk_flops = insp.chunk_search_flops(n_samples, n_templates)
    queue = Store(sim)
    completions: dict[int, float] = {}
    restarts = {"n": 0}

    def arrivals(sim):
        for i in range(n_chunks):
            yield queue.put(_Chunk(index=i, arrival=sim.now, flops=chunk_flops))
            yield sim.timeout(chunk_seconds)

    sim.process(arrivals(sim), name="detector")

    models: list[AvailabilityModel] = []
    for p in range(n_peers):
        peer = Peer(f"vol-{p}", net)
        model = (availability_factory or (lambda pid: PoissonChurn(1e12, 1.0)))(
            peer.peer_id
        )
        model.install(peer)
        models.append(model)
        up_waiters: list = []

        def on_up(_peer, waiters=up_waiters):
            for ev in waiters:
                if not ev.triggered:
                    ev.succeed(None)
            waiters.clear()

        model.on_up(on_up)
        state = {"proc": None, "computing": False}

        def on_down(_peer, state=state):
            if state["computing"] and state["proc"] is not None and state["proc"].is_alive:
                state["proc"].interrupt("churn")

        model.on_down(on_down)

        def worker(sim, peer=peer, waiters=up_waiters, state=state):
            while True:
                chunk = yield queue.get()
                remaining = chunk.flops
                while remaining > 0:
                    while not peer.online:
                        ev = sim.event()
                        waiters.append(ev)
                        yield ev
                    state["computing"] = True
                    started = sim.now
                    try:
                        yield sim.timeout(remaining / cpu_flops)
                        remaining = 0.0
                    except Interrupt:
                        done = (sim.now - started) * cpu_flops
                        if checkpointing:
                            remaining = max(remaining - done, 0.0)
                        else:
                            remaining = chunk.flops
                            restarts["n"] += 1
                    finally:
                        state["computing"] = False
                completions[chunk.index] = sim.now

        state["proc"] = sim.process(worker(sim), name=f"vol-worker-{p}")

    horizon = n_chunks * chunk_seconds * horizon_factor
    sim.run(until=horizon)

    lags = [
        completions[i] - (i * chunk_seconds + chunk_seconds)
        for i in sorted(completions)
    ]
    done_n = len(completions)
    half = done_n // 2
    early = float(np.mean(lags[:half])) if half else float("nan")
    late = float(np.mean(lags[half:])) if half else float("nan")
    # Backlog slope: lag growth per second of arrivals (least-squares over
    # the whole stream).  A fleet "keeps up" when lag is bounded — the
    # paper allows constant lag ("it can lag behind by several hours")
    # but not a growing one.
    if done_n >= 4:
        arrivals = np.array(sorted(completions)) * chunk_seconds
        lag_slope = float(np.polyfit(arrivals, np.array(lags), 1)[0])
    else:
        lag_slope = float("nan")
    keeps_up = done_n == n_chunks and (done_n < 4 or lag_slope < 0.1)
    return {
        "peers": n_peers,
        "chunks_offered": n_chunks,
        "chunks_done": done_n,
        "mean_lag_s": float(np.mean(lags)) if lags else float("inf"),
        "max_lag_s": float(np.max(lags)) if lags else float("inf"),
        "lag_early_s": early,
        "lag_late_s": late,
        "lag_slope": lag_slope,
        "keeps_up": keeps_up,
        "restarts": restarts["n"],
        "availability": float(np.mean([m.expected_availability() for m in models])),
    }


def e5_inspiral_sizing(
    peer_counts: tuple[int, ...] = (10, 20, 25, 30, 40),
    n_chunks: int = 30,
    mean_uptime: float = 4 * 3600.0,
    mean_downtime: float = 2 * 3600.0,
    seed: int = 0,
) -> dict[str, Any]:
    """The '20 dedicated PCs / more under churn' sizing table."""
    rows = []
    # Dedicated machines (the paper's baseline arithmetic).
    for k in peer_counts:
        r = simulate_volunteer_fleet(
            k, n_chunks=n_chunks, availability_factory=None, seed=seed
        )
        rows.append({"fleet": "dedicated", **r})
    # Consumer volunteers with churn.
    for k in peer_counts:
        r = simulate_volunteer_fleet(
            k,
            n_chunks=n_chunks,
            availability_factory=lambda pid: PoissonChurn(mean_uptime, mean_downtime),
            seed=seed,
        )
        rows.append({"fleet": "consumer", **r})
    analytic_dedicated = (
        insp.chunk_search_flops(
            int(insp.PAPER_CHUNK_SECONDS * insp.PAPER_SAMPLING_RATE),
            insp.PAPER_TEMPLATES_LOW,
        )
        / insp.PAPER_CPU_FLOPS
        / insp.PAPER_CHUNK_SECONDS
    )
    availability = mean_uptime / (mean_uptime + mean_downtime)
    return {
        "rows": rows,
        "analytic_dedicated_pcs": analytic_dedicated,
        "analytic_consumer_pcs": analytic_dedicated / availability,
        "availability": availability,
    }


# -- E7: discovery protocol scaling ----------------------------------------------------


def e7_discovery_scaling(
    sizes: tuple[int, ...] = (16, 64, 256),
    flood_ttl: int = 7,
    n_rendezvous: int = 4,
    seed: int = 0,
) -> dict[str, Any]:
    """Messages per query / recall / latency for the three strategies."""
    rows = []
    for n in sizes:
        for kind in ("central", "flooding", "rendezvous"):
            sim = Simulator(seed=seed)
            net = SimNetwork(sim, jitter_fraction=0.0)
            if kind == "central":
                disc = CentralIndexDiscovery()
            elif kind == "flooding":
                disc = FloodingDiscovery(ttl=flood_ttl, query_window=5.0)
            else:
                disc = RendezvousDiscovery()
            peers = [Peer(f"p{i}", net) for i in range(n)]
            for p in peers:
                disc.attach(p)
            net.random_overlay(degree=4)
            if kind == "central":
                disc.set_index(peers[0])
            elif kind == "rendezvous":
                for r in range(min(n_rendezvous, n)):
                    disc.add_rendezvous(peers[r])
            published = 0
            for p in peers[1:]:
                disc.publish(
                    p,
                    Advertisement.make(
                        ADV_SERVICE, f"svc-{p.peer_id}", p.peer_id,
                        attrs={"kind": "compute"},
                    ),
                )
                published += 1
            sim.run()
            before = net.stats.sent
            t0 = sim.now
            ev = disc.query(peers[n // 2], adv_type=ADV_SERVICE)
            results = sim.run(until=ev)
            latency = sim.now - t0
            sim.run()
            rows.append(
                {
                    "peers": n,
                    "strategy": kind,
                    "messages_per_query": net.stats.sent - before,
                    "recall": len(results) / published,
                    "latency_s": latency,
                }
            )
    return {"rows": rows}


# -- E8: code mobility ---------------------------------------------------------------


def e8_mobility(
    n_modules: int = 60,
    n_requests: int = 300,
    capacities: tuple[int, ...] = (4, 16, 64),
    version_bump_every: int = 50,
    seed: int = 0,
    trace: bool = False,
) -> dict[str, Any]:
    """On-demand vs sticky caching under a Zipf module workload.

    With ``trace=True`` the most cache-pressured configuration
    (``on_demand`` at the smallest capacity — maximum fetch/eviction
    churn) runs under a tracer, returned as ``"tracer"`` so the bench
    harness can emit a bottleneck profile alongside the rows.
    """
    from ..core.registry import UnitRegistry
    from ..core.units import Unit
    from ..mobility.cache import ModuleCache
    from ..mobility.repository import ModuleRepository
    from ..observe import Tracer

    registry = UnitRegistry()
    for i in range(n_modules):
        cls = type(f"Mod{i:03d}", (Unit,), {"CODE_SIZE": 20_000})
        registry.register(cls)
    names = registry.names()

    tracer = None
    rows = []
    for policy in ("on_demand", "sticky"):
        for capacity_slots in capacities:
            traced = trace and policy == "on_demand" and capacity_slots == min(capacities)
            if traced:
                tracer = Tracer()
            sim = Simulator(seed=seed, tracer=tracer if traced else None)
            net = SimNetwork(sim, jitter_fraction=0.0)
            portal = Peer("portal", net, profile=LAN_PROFILE)
            device = Peer("device", net, profile=LAN_PROFILE)
            repo = ModuleRepository(portal, registry)
            cache = ModuleCache(
                device,
                "portal",
                capacity_bytes=capacity_slots * 20_000,
                policy=policy,
            )
            rng = np.random.default_rng(seed)
            zipf_weights = 1.0 / np.arange(1, n_modules + 1)
            zipf_weights /= zipf_weights.sum()
            stale = 0

            def run(sim):
                nonlocal stale
                for r in range(n_requests):
                    name = names[int(rng.choice(n_modules, p=zipf_weights))]
                    if version_bump_every and r > 0 and r % version_bump_every == 0:
                        victim = names[int(rng.integers(n_modules))]
                        repo.publish_new_version(
                            victim, f"1.{r // version_bump_every}"
                        )
                    pkg = yield cache.ensure(name)
                    if pkg.version != repo.current_version(name):
                        stale += 1
                        cache.note_stale_use()

            done = sim.process(run(sim))
            sim.run(until=done)
            rows.append(
                {
                    "policy": policy,
                    "cache_slots": capacity_slots,
                    "requests": n_requests,
                    "bytes_downloaded": cache.stats.bytes_downloaded,
                    "network_messages": net.stats.sent,
                    "evictions": cache.stats.evictions,
                    "stale_executions": stale,
                }
            )
    out: dict[str, Any] = {"modules": n_modules, "rows": rows}
    if tracer is not None:
        out["tracer"] = tracer
    return out


# -- E9: volunteer harvest + admin-cost contrast ----------------------------------------


def e9_volunteer_throughput(
    fleet_sizes: tuple[int, ...] = (100, 1000),
    days: float = 7.0,
    idle_fraction: float = 0.6,
    seed: int = 0,
) -> dict[str, Any]:
    """Harvested CPU time under screensaver availability, SETI-style,
    plus the Globus-vs-virtual-account administration contrast."""
    from ..resources.accounts import (
        CertificateAuthority,
        GlobusAccountManager,
        VirtualAccountManager,
    )

    horizon = days * 86_400.0
    rows = []
    for n in fleet_sizes:
        sim = Simulator(seed=seed)
        net = SimNetwork(sim, jitter_fraction=0.0)
        models = []
        for i in range(n):
            peer = Peer(f"v{i}", net)
            model = ScreensaverCycle(idle_fraction=idle_fraction)
            model.install(peer)
            models.append(model)
        sim.run(until=horizon)
        harvested = sum(m.stats.online_seconds for m in models)
        rows.append(
            {
                "volunteers": n,
                "days": days,
                "harvested_cpu_years": harvested / SECONDS_PER_YEAR,
                "ceiling_cpu_years": n * horizon / SECONDS_PER_YEAR,
                "harvest_fraction": harvested / (n * horizon),
            }
        )

    # Administration contrast for the largest fleet.
    n = max(fleet_sizes)
    ca = CertificateAuthority("grid-ca")
    globus = GlobusAccountManager(ca)
    for i in range(n):
        globus.create_account(f"user-{i}")
        ca.issue(f"user-{i}", now=0.0)
    virtual = VirtualAccountManager("consumer-pc")
    for i in range(n):
        virtual.charge(f"user-{i}", 100.0)
    admin = {
        "users": n,
        "globus_admin_operations": globus.admin_operations,
        "globus_certificates": ca.issued,
        "virtual_admin_operations": virtual.admin_operations,
        "virtual_billing_lines": len(virtual.billing),
    }
    return {"rows": rows, "admin": admin}


# -- E14: work-splitting axis for the inspiral search --------------------------------------


def e14_split_axis(
    n_workers: int = 20,
    n_templates: int = insp.PAPER_TEMPLATES_LOW,
    chunk_seconds: float = insp.PAPER_CHUNK_SECONDS,
    up_bps: float = 256e3 / 8,
) -> dict[str, Any]:
    """Chunk-parallel (the paper's farm) vs template-parallel splitting.

    Analytic comparison at paper scale.  Chunk-parallel ships each 7.2 MB
    chunk to exactly one worker and pays the full 5 h there; template-
    parallel ships each chunk to *every* worker but each searches 1/k of
    the bank.  The trade: per-chunk latency (better for template split)
    vs total wire volume (k× worse) against a consumer uplink.
    """
    n_samples = int(chunk_seconds * insp.PAPER_SAMPLING_RATE)
    chunk_flops = insp.chunk_search_flops(n_samples, n_templates)
    chunk_bytes = insp.PAPER_CHUNK_BYTES
    compute_one = chunk_flops / insp.PAPER_CPU_FLOPS

    rows = []
    # Chunk-parallel: one transfer per chunk, full search on one worker.
    transfer_chunk = chunk_bytes / up_bps
    rows.append(
        {
            "axis": "chunk-parallel (paper)",
            "transfers_per_chunk_mb": chunk_bytes / 1e6,
            "per_chunk_latency_h": (transfer_chunk + compute_one) / 3600.0,
            "steady_state_workers_needed": compute_one / chunk_seconds,
            "uplink_share_per_chunk": transfer_chunk / chunk_seconds,
        }
    )
    # Template-parallel: every worker gets the chunk, searches bank/k.
    transfer_all = n_workers * chunk_bytes / up_bps  # serialised source uplink
    rows.append(
        {
            "axis": f"template-parallel (k={n_workers})",
            "transfers_per_chunk_mb": n_workers * chunk_bytes / 1e6,
            "per_chunk_latency_h": (transfer_all + compute_one / n_workers) / 3600.0,
            "steady_state_workers_needed": compute_one / chunk_seconds,
            "uplink_share_per_chunk": transfer_all / chunk_seconds,
        }
    )
    return {"rows": rows, "workers": n_workers}


# -- E10: distribution-policy / granularity ablation -------------------------------------


def e10_policy_ablation(
    iterations: int = 16, seed: int = 0, trace: bool = False,
    telemetry: bool = False,
) -> dict[str, Any]:
    """Same workload under parallel / p2p / chunked policy, plus granularity.

    ``trace=True`` records the chunked-policy run and returns its tracer
    under ``"tracer"`` (tracing is passive, rows unchanged) so the bench
    gate watches the batching critical path.  ``telemetry=True``
    additionally samples live telemetry on every configuration — also
    passive, rows bit-identical.
    """
    rows = []
    tracer = None
    for policy in ("parallel", "p2p", "chunked"):
        g = pipeline_graph(4)
        g.task("Chain").policy = policy
        traced = trace and policy == "chunked"
        grid = ConsumerGrid(
            n_workers=4,
            seed=seed,
            worker_profile=LAN_PROFILE,
            controller_profile=LAN_PROFILE,
            worker_efficiency=1e-5,
            trace=traced,
            telemetry=telemetry,
        )
        if traced:
            tracer = grid.sim.tracer
        report = grid.run(g, iterations=iterations)
        rows.append(
            {
                "policy": policy,
                "stages": 4,
                "makespan_s": report.makespan,
                "throughput_per_s": iterations / report.makespan,
            }
        )
    # Granularity: farm groups of width 1 vs 2 vs 4 filter stages.
    granularity = []
    for width in (1, 2, 4):
        g = pipeline_graph(width)
        g.task("Chain").policy = "parallel"
        grid = ConsumerGrid(
            n_workers=4,
            seed=seed,
            worker_profile=LAN_PROFILE,
            controller_profile=LAN_PROFILE,
            worker_efficiency=1e-5,
            telemetry=telemetry,
        )
        report = grid.run(g, iterations=iterations)
        granularity.append(
            {
                "group_width": width,
                "makespan_s": report.makespan,
                "bytes_sent": grid.network.stats.bytes_sent,
            }
        )
    return {"policies": rows, "granularity": granularity, "tracer": tracer}


# -- E18: module distribution fast path ---------------------------------------------


def e18_moddist(
    replica_counts: tuple[int, ...] = (0, 1, 2, 4),
    package_kbs: tuple[int, ...] = (128, 512),
    n_workers: int = 8,
    iterations: int = 8,
    chunk_bytes: int = 65536,
    seed: int = 0,
    trace: bool = False,
) -> dict[str, Any]:
    """Replica count x package size sweep on a contended repository uplink.

    A farm of two heavyweight units deploys onto ``n_workers`` consumer-
    DSL peers; every worker must download both packages before acking.
    With ``module_replicas=0`` all transfers serialise on the portal's
    32 KB/s uplink (the seed protocol); with replicas the controller
    pre-seeds k workers, which then serve the rest of the fleet while the
    portal answers only head/revalidate traffic.  ``fetch_wait_s`` sums
    every mobility-span duration in the trace — the fleet-wide time spent
    waiting on module distribution, the metric the BENCH gate watches.

    Every configuration runs traced (the metric needs spans; tracing is
    passive so rows are unaffected).  ``trace=True`` additionally returns
    the tracer of the (replicas=2, largest package) run under
    ``"tracer"``.
    """
    from ..core.registry import UnitRegistry
    from ..core.taskgraph import TaskGraph
    from ..core.toolbox.display import Grapher
    from ..core.toolbox.signal import Wave
    from ..core.units import Unit

    rows = []
    tracer = None
    for package_kb in package_kbs:
        for replicas in replica_counts:
            registry = UnitRegistry()
            registry.register(Wave, category="signal")
            registry.register(Grapher, category="output")
            code_size = package_kb * 1024
            for unit_name in ("HeavyA", "HeavyB"):

                def _passthrough(self, inputs):
                    return [inputs[0]]

                registry.register(
                    type(
                        unit_name,
                        (Unit,),
                        {"CODE_SIZE": code_size, "process": _passthrough},
                    ),
                    category="heavy",
                )

            g = TaskGraph(f"moddist-{package_kb}k", registry=registry)
            g.add_task("Src", "Wave", frequency=32.0, samples=256)
            g.add_task("A", "HeavyA")
            g.add_task("B", "HeavyB")
            g.add_task("Sink", "Grapher")
            for a, b in [("Src", "A"), ("A", "B"), ("B", "Sink")]:
                g.connect(a, 0, b, 0)
            g.group_tasks("Farm", ["A", "B"], policy="parallel")

            grid = ConsumerGrid(
                n_workers=n_workers,
                seed=seed,
                registry=registry,
                contention=True,
                trace=True,
                module_replicas=replicas,
                module_chunk_bytes=chunk_bytes,
                cache_fetch_timeout=20_000.0,
            )
            # Consumer-DSL transfers of multi-hundred-KB packages far
            # exceed the default interactive deploy budget.
            grid.controller.deploy_timeout = 20_000.0
            report = grid.run(g, iterations=iterations)
            tr = grid.sim.tracer
            fetch_wait = sum(
                s.end - s.start
                for s in tr.spans
                if s.category == "mobility" and s.end is not None
            )
            caches = [s.cache.stats for s in grid.workers.values()]
            checksum = float(
                sum(
                    float(np.sum(np.abs(out.data)))
                    for outs in report.group_results
                    for out in outs
                )
            )
            rows.append(
                {
                    "replicas": replicas,
                    "package_kb": package_kb,
                    "workers": n_workers,
                    "makespan_s": report.makespan,
                    "deploy_time_s": report.deploy_time,
                    "fetch_wait_s": fetch_wait,
                    "repo_packages": grid.repository.stats.packages_served,
                    "repo_bytes": grid.repository.stats.bytes_served,
                    "repo_heads": grid.repository.stats.head_requests,
                    "repo_chunks": grid.repository.stats.chunks_sent,
                    "peer_fetches": sum(c.peer_fetches for c in caches),
                    "peer_serves": sum(c.peer_serves for c in caches),
                    "revalidations": sum(c.revalidations for c in caches),
                    "result_checksum": checksum,
                }
            )
            if trace and replicas == 2 and package_kb == max(package_kbs):
                tracer = tr
    out: dict[str, Any] = {"rows": rows, "workers": n_workers}
    if tracer is not None:
        out["tracer"] = tracer
    return out
