"""Exception hierarchy for the workflow core."""

from __future__ import annotations


class WorkflowError(Exception):
    """Base class for all workflow-core errors."""


class TypeMismatchError(WorkflowError):
    """A connection joins an output to an input with incompatible types.

    The paper requires the engine to "undertake type checking on their
    connectivity"; violations are rejected at connect time, not run time.
    """


class GraphError(WorkflowError):
    """Structural problem in a task graph (cycles, dangling nodes...)."""


class UnitError(WorkflowError):
    """A unit was misconfigured or misbehaved during processing."""


class ParameterError(UnitError):
    """An unknown parameter was set or a value failed validation."""


class RegistryError(WorkflowError):
    """Unit lookup failed or a duplicate registration was attempted."""


class SerializationError(WorkflowError):
    """Task-graph XML could not be produced or parsed."""
