"""Workflow core (systems S4+S5): the Triana-engine reproduction.

Quick tour::

    from repro.core import TaskGraph, LocalEngine

    g = TaskGraph("demo")
    g.add_task("Wave", "Wave", frequency=64.0)
    g.add_task("Noise", "GaussianNoise", sigma=2.0)
    g.add_task("Grapher", "Grapher")
    g.connect("Wave", 0, "Noise", 0)
    g.connect("Noise", 0, "Grapher", 0)
    LocalEngine(g).run(iterations=20)

Importing :mod:`repro.core` loads the built-in toolbox, so registry names
like ``"Wave"`` resolve immediately.
"""

from . import toolbox  # noqa: F401  (registers built-in units)
from .engine import LocalEngine, Probe, RunStats, run_graph
from .errors import (
    GraphError,
    ParameterError,
    RegistryError,
    SerializationError,
    TypeMismatchError,
    UnitError,
    WorkflowError,
)
from .registry import UnitDescriptor, UnitRegistry, global_registry, register_unit
from .taskgraph import (
    GROUP_POLICIES,
    Connection,
    GroupTask,
    Task,
    TaskGraph,
    known_policy_names,
    register_policy_name,
)
from .types import (
    AnyType,
    ComplexSpectrum,
    Const,
    GraphData,
    ImageData,
    ParticleSnapshot,
    SampleSet,
    Spectrum,
    TableData,
    TextMessage,
    TimeFrequency,
    TrianaType,
    VectorType,
    is_compatible,
    type_by_name,
)
from .units import ParamSpec, Unit
from .introspect import describe_unit, graph_to_dot
from .petrinet import PetriNet, graph_from_petrinet, graph_to_petrinet, petri_structure
from .wsfl import graph_from_wsfl, graph_to_wsfl
from .xml_io import (
    graph_from_string,
    graph_from_xml,
    graph_to_string,
    graph_to_xml,
    unit_names_in_xml,
)

__all__ = [
    "AnyType",
    "ComplexSpectrum",
    "Connection",
    "Const",
    "GROUP_POLICIES",
    "GraphData",
    "GraphError",
    "GroupTask",
    "ImageData",
    "LocalEngine",
    "ParamSpec",
    "ParameterError",
    "ParticleSnapshot",
    "Probe",
    "RegistryError",
    "RunStats",
    "SampleSet",
    "SerializationError",
    "Spectrum",
    "TableData",
    "Task",
    "TaskGraph",
    "TextMessage",
    "TimeFrequency",
    "TrianaType",
    "TypeMismatchError",
    "Unit",
    "UnitDescriptor",
    "UnitError",
    "UnitRegistry",
    "VectorType",
    "WorkflowError",
    "global_registry",
    "PetriNet",
    "describe_unit",
    "graph_from_petrinet",
    "graph_from_string",
    "graph_from_wsfl",
    "graph_from_xml",
    "graph_to_dot",
    "graph_to_petrinet",
    "graph_to_string",
    "graph_to_wsfl",
    "graph_to_xml",
    "is_compatible",
    "known_policy_names",
    "petri_structure",
    "register_policy_name",
    "unit_names_in_xml",
    "register_unit",
    "run_graph",
    "toolbox",
    "type_by_name",
]
