"""Source units beyond the basic Wave generator."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..errors import UnitError
from ..registry import register_unit
from ..types import SampleSet
from ..units import ParamSpec, Unit

__all__ = [
    "DCSource",
    "ImpulseTrain",
    "StepSource",
    "WhiteNoiseSource",
    "PinkNoiseSource",
    "PRBSSource",
]


def _positive(x) -> None:
    if not x > 0:
        raise ValueError(f"must be positive, got {x!r}")


class _FramedSource(Unit):
    """Shared frame bookkeeping for block sources (t0 advances per frame)."""

    NUM_INPUTS = 0
    NUM_OUTPUTS = 1
    OUTPUT_TYPES = (SampleSet,)

    def reset(self) -> None:
        self._frame = 0
        self._extra_reset()

    def _extra_reset(self) -> None:
        pass

    def checkpoint(self) -> dict[str, Any]:
        return {"frame": self._frame}

    def restore(self, state: dict[str, Any]) -> None:
        self.reset()
        self._frame = int(state.get("frame", 0))

    def _frame_geometry(self) -> tuple[int, float, float]:
        n = int(self.get_param("samples"))
        fs = float(self.get_param("sampling_rate"))
        t0 = self._frame * n / fs
        self._frame += 1
        return n, fs, t0

    def _emit(self, data: np.ndarray, fs: float, t0: float) -> list[Any]:
        return [SampleSet(data=data, sampling_rate=fs, t0=t0)]


@register_unit(category="generators")
class DCSource(_FramedSource):
    """A constant-level block signal."""

    PARAMETERS = (
        ParamSpec("level", 1.0, "DC level"),
        ParamSpec("samples", 256, "samples per frame", _positive),
        ParamSpec("sampling_rate", 1024.0, "samples per second", _positive),
    )

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        n, fs, t0 = self._frame_geometry()
        return self._emit(np.full(n, float(self.get_param("level"))), fs, t0)


@register_unit(category="generators")
class ImpulseTrain(_FramedSource):
    """Unit impulses every ``period`` samples (phase continuous)."""

    PARAMETERS = (
        ParamSpec("period", 32, "samples between impulses", _positive),
        ParamSpec("samples", 256, "samples per frame", _positive),
        ParamSpec("sampling_rate", 1024.0, "samples per second", _positive),
    )

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        n = int(self.get_param("samples"))
        period = int(self.get_param("period"))
        start = (self._frame * n) % period
        data = np.zeros(n)
        first = (period - start) % period
        data[first::period] = 1.0
        _n, fs, t0 = self._frame_geometry()
        return self._emit(data, fs, t0)


@register_unit(category="generators")
class StepSource(_FramedSource):
    """0 before ``step_at`` seconds, 1 after (across frames)."""

    PARAMETERS = (
        ParamSpec("step_at", 0.5, "step time in seconds"),
        ParamSpec("samples", 256, "samples per frame", _positive),
        ParamSpec("sampling_rate", 1024.0, "samples per second", _positive),
    )

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        n, fs, t0 = self._frame_geometry()
        t = t0 + np.arange(n) / fs
        return self._emit((t >= float(self.get_param("step_at"))).astype(float), fs, t0)


@register_unit(category="generators")
class WhiteNoiseSource(_FramedSource):
    """Gaussian white-noise source (reproducible by seed)."""

    PARAMETERS = (
        ParamSpec("sigma", 1.0, "standard deviation"),
        ParamSpec("seed", 0, "stream seed"),
        ParamSpec("samples", 256, "samples per frame", _positive),
        ParamSpec("sampling_rate", 1024.0, "samples per second", _positive),
    )

    def _extra_reset(self) -> None:
        self._rng = np.random.default_rng(int(self.get_param("seed")))

    def checkpoint(self) -> dict[str, Any]:
        return {"frame": self._frame, "rng_state": self._rng.bit_generator.state}

    def restore(self, state: dict[str, Any]) -> None:
        super().restore(state)
        if "rng_state" in state:
            self._rng.bit_generator.state = state["rng_state"]

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        n, fs, t0 = self._frame_geometry()
        data = self._rng.normal(0.0, float(self.get_param("sigma")), n)
        return self._emit(data, fs, t0)


@register_unit(category="generators")
class PinkNoiseSource(_FramedSource):
    """1/f ("pink") noise via FFT-domain shaping of white noise."""

    PARAMETERS = (
        ParamSpec("sigma", 1.0, "target standard deviation"),
        ParamSpec("seed", 0, "stream seed"),
        ParamSpec("samples", 256, "samples per frame", _positive),
        ParamSpec("sampling_rate", 1024.0, "samples per second", _positive),
    )

    def _extra_reset(self) -> None:
        self._rng = np.random.default_rng(int(self.get_param("seed")))

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        n, fs, t0 = self._frame_geometry()
        white = self._rng.normal(0.0, 1.0, n)
        spectrum = np.fft.rfft(white)
        freqs = np.fft.rfftfreq(n, d=1.0 / fs)
        shaping = np.ones_like(freqs)
        shaping[1:] = 1.0 / np.sqrt(freqs[1:])
        pink = np.fft.irfft(spectrum * shaping, n)
        std = pink.std()
        if std > 0:
            pink = pink / std * float(self.get_param("sigma"))
        return self._emit(pink, fs, t0)


@register_unit(category="generators")
class PRBSSource(_FramedSource):
    """±1 pseudo-random binary sequence from a 16-bit LFSR (deterministic)."""

    PARAMETERS = (
        ParamSpec("seed", 0xACE1, "non-zero LFSR start state"),
        ParamSpec("samples", 256, "samples per frame", _positive),
        ParamSpec("sampling_rate", 1024.0, "samples per second", _positive),
    )

    def _extra_reset(self) -> None:
        self._state = int(self.get_param("seed")) & 0xFFFF
        if self._state == 0:
            raise UnitError("PRBSSource: seed must be non-zero")

    def checkpoint(self) -> dict[str, Any]:
        return {"frame": self._frame, "state": self._state}

    def restore(self, state: dict[str, Any]) -> None:
        super().restore(state)
        self._state = int(state.get("state", self._state))

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        n, fs, t0 = self._frame_geometry()
        out = np.empty(n)
        s = self._state
        for i in range(n):
            bit = ((s >> 0) ^ (s >> 2) ^ (s >> 3) ^ (s >> 5)) & 1
            s = (s >> 1) | (bit << 15)
            out[i] = 1.0 if (s & 1) else -1.0
        self._state = s
        return self._emit(out, fs, t0)
