"""Text-manipulation units — Triana also handles "textual data"."""

from __future__ import annotations

import re
from typing import Any, Sequence

import numpy as np

from ..errors import UnitError
from ..registry import register_unit
from ..types import Const, TextMessage, VectorType
from ..units import ParamSpec, Unit

__all__ = [
    "StringSource",
    "ConcatText",
    "UpperCase",
    "LowerCase",
    "RegexReplace",
    "WordCount",
    "SplitWords",
    "FormatNumber",
]


@register_unit(category="text")
class StringSource(Unit):
    """Emits a fixed string every iteration."""

    NUM_INPUTS = 0
    NUM_OUTPUTS = 1
    OUTPUT_TYPES = (TextMessage,)
    PARAMETERS = (ParamSpec("text", "", "the text to emit"),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        return [TextMessage(text=str(self.get_param("text")))]


@register_unit(category="text")
class ConcatText(Unit):
    """Join two text messages with a separator."""

    NUM_INPUTS = 2
    NUM_OUTPUTS = 1
    INPUT_TYPES = (TextMessage,)
    OUTPUT_TYPES = (TextMessage,)
    PARAMETERS = (ParamSpec("separator", " ", "joining separator"),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        a, b = inputs
        sep = str(self.get_param("separator"))
        return [TextMessage(text=f"{a.text}{sep}{b.text}")]


@register_unit(category="text")
class UpperCase(Unit):
    """Uppercase a text message."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (TextMessage,)
    OUTPUT_TYPES = (TextMessage,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        return [TextMessage(text=inputs[0].text.upper())]


@register_unit(category="text")
class LowerCase(Unit):
    """Lowercase a text message."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (TextMessage,)
    OUTPUT_TYPES = (TextMessage,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        return [TextMessage(text=inputs[0].text.lower())]


@register_unit(category="text")
class RegexReplace(Unit):
    """Regular-expression substitution over a text message."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (TextMessage,)
    OUTPUT_TYPES = (TextMessage,)
    PARAMETERS = (
        ParamSpec("pattern", "", "regex to match"),
        ParamSpec("replacement", "", "replacement text"),
    )

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        pattern = str(self.get_param("pattern"))
        try:
            compiled = re.compile(pattern)
        except re.error as exc:
            raise UnitError(f"RegexReplace: bad pattern {pattern!r}: {exc}") from exc
        return [
            TextMessage(
                text=compiled.sub(str(self.get_param("replacement")), inputs[0].text)
            )
        ]


@register_unit(category="text")
class WordCount(Unit):
    """Count whitespace-separated words."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (TextMessage,)
    OUTPUT_TYPES = (Const,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        return [Const(value=float(len(inputs[0].text.split())))]


@register_unit(category="text")
class SplitWords(Unit):
    """Word lengths as a vector (a toy text→numeric bridge)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (TextMessage,)
    OUTPUT_TYPES = (VectorType,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        words = inputs[0].text.split()
        return [VectorType(data=np.array([len(w) for w in words], dtype=float))]


@register_unit(category="text")
class FormatNumber(Unit):
    """Render a scalar into a text template containing ``{value}``."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (Const,)
    OUTPUT_TYPES = (TextMessage,)
    PARAMETERS = (ParamSpec("template", "{value}", "format template"),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        template = str(self.get_param("template"))
        try:
            text = template.format(value=inputs[0].value)
        except (KeyError, IndexError) as exc:
            raise UnitError(f"FormatNumber: bad template {template!r}") from exc
        return [TextMessage(text=text)]
