"""Numeric / vector units — Triana's "manipulate numeric ... data" family."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..errors import UnitError
from ..registry import register_unit
from ..types import Const, GraphData, SampleSet, VectorType
from ..units import ParamSpec, Unit

__all__ = [
    "ConstSource",
    "Ramp",
    "RandomVector",
    "Adder",
    "Subtract",
    "Multiply",
    "Divide",
    "Negate",
    "AbsValue",
    "LogN",
    "Sqrt",
    "PowerOf",
    "MeanValue",
    "StdDev",
    "MaxValue",
    "MinValue",
    "RunningSum",
    "IterationCounter",
    "Threshold",
    "Clamp",
    "Normalise",
    "Differentiate",
    "Integrate",
    "Histogram",
]


def _positive(x) -> None:
    if not x > 0:
        raise ValueError(f"must be positive, got {x!r}")


@register_unit(category="math")
class ConstSource(Unit):
    """Emits a constant scalar every iteration."""

    NUM_INPUTS = 0
    NUM_OUTPUTS = 1
    OUTPUT_TYPES = (Const,)
    PARAMETERS = (ParamSpec("value", 0.0, "the constant to emit"),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        return [Const(value=float(self.get_param("value")))]


@register_unit(category="math")
class Ramp(Unit):
    """Emits 0, step, 2·step, ... across iterations (a simple counter source)."""

    NUM_INPUTS = 0
    NUM_OUTPUTS = 1
    OUTPUT_TYPES = (Const,)
    PARAMETERS = (ParamSpec("step", 1.0, "increment per iteration"),)

    def reset(self) -> None:
        self._i = 0

    def checkpoint(self) -> dict[str, Any]:
        return {"i": self._i}

    def restore(self, state: dict[str, Any]) -> None:
        self._i = int(state.get("i", 0))

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        value = self._i * float(self.get_param("step"))
        self._i += 1
        return [Const(value=value)]


@register_unit(category="math")
class RandomVector(Unit):
    """Uniform random vector source with a reproducible stream."""

    NUM_INPUTS = 0
    NUM_OUTPUTS = 1
    OUTPUT_TYPES = (VectorType,)
    PARAMETERS = (
        ParamSpec("length", 128, "vector length", _positive),
        ParamSpec("seed", 0, "stream seed"),
    )

    def reset(self) -> None:
        self._rng = np.random.default_rng(int(self.get_param("seed")))

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        return [VectorType(data=self._rng.random(int(self.get_param("length"))))]


def _numeric_payload(value: Any) -> np.ndarray | float:
    """Extract the numeric content of Const/VectorType/SampleSet payloads."""
    if isinstance(value, Const):
        return value.value
    if isinstance(value, (VectorType, SampleSet)):
        return value.data
    raise UnitError(f"not a numeric payload: {type(value).__name__}")


def _rewrap(template: Any, data) -> Any:
    """Wrap a computed array/scalar in the same container as ``template``."""
    if isinstance(template, Const):
        return Const(value=float(data))
    if isinstance(template, SampleSet):
        return SampleSet(
            data=np.asarray(data, dtype=float),
            sampling_rate=template.sampling_rate,
            t0=template.t0,
        )
    return VectorType(data=np.atleast_1d(np.asarray(data, dtype=float)))


class _Binary(Unit):
    """Elementwise binary operation on numeric payloads."""

    NUM_INPUTS = 2
    NUM_OUTPUTS = 1
    INPUT_TYPES = (Const, VectorType, SampleSet)
    OUTPUT_TYPES = (Const, VectorType, SampleSet)

    def _op(self, a, b):  # pragma: no cover - overridden
        raise NotImplementedError

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        a, b = inputs
        result = self._op(_numeric_payload(a), _numeric_payload(b))
        template = a if not isinstance(a, Const) else b
        return [_rewrap(template, result)]


@register_unit(category="math")
class Adder(_Binary):
    """a + b."""

    def _op(self, a, b):
        return a + b


@register_unit(category="math")
class Subtract(_Binary):
    """a - b."""

    def _op(self, a, b):
        return a - b


@register_unit(category="math")
class Multiply(_Binary):
    """a * b."""

    def _op(self, a, b):
        return a * b


@register_unit(category="math")
class Divide(_Binary):
    """a / b (division by zero is a UnitError)."""

    def _op(self, a, b):
        if np.any(np.asarray(b) == 0):
            raise UnitError("Divide: division by zero")
        return a / b


class _Unary(Unit):
    """Elementwise unary operation preserving the container type."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (Const, VectorType, SampleSet)
    OUTPUT_TYPES = (Const, VectorType, SampleSet)

    def _op(self, a):  # pragma: no cover - overridden
        raise NotImplementedError

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (a,) = inputs
        return [_rewrap(a, self._op(_numeric_payload(a)))]


@register_unit(category="math")
class Negate(_Unary):
    """-a."""

    def _op(self, a):
        return -np.asarray(a) if not np.isscalar(a) else -a


@register_unit(category="math")
class AbsValue(_Unary):
    """|a|."""

    def _op(self, a):
        return np.abs(a)


@register_unit(category="math")
class LogN(_Unary):
    """Natural log; non-positive inputs are a UnitError."""

    def _op(self, a):
        if np.any(np.asarray(a) <= 0):
            raise UnitError("LogN: non-positive input")
        return np.log(a)


@register_unit(category="math")
class Sqrt(_Unary):
    """√a; negative inputs are a UnitError."""

    def _op(self, a):
        if np.any(np.asarray(a) < 0):
            raise UnitError("Sqrt: negative input")
        return np.sqrt(a)


@register_unit(category="math")
class PowerOf(_Unary):
    """a ** exponent."""

    PARAMETERS = (ParamSpec("exponent", 2.0, "power to raise to"),)

    def _op(self, a):
        return np.power(a, float(self.get_param("exponent")))


class _Reduction(Unit):
    """Vector → scalar reduction."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (VectorType, SampleSet)
    OUTPUT_TYPES = (Const,)

    def _op(self, a: np.ndarray) -> float:  # pragma: no cover - overridden
        raise NotImplementedError

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (a,) = inputs
        data = np.asarray(_numeric_payload(a))
        if data.size == 0:
            raise UnitError(f"{self.unit_name()}: empty input")
        return [Const(value=float(self._op(data)))]


@register_unit(category="math")
class MeanValue(_Reduction):
    """Arithmetic mean."""

    def _op(self, a):
        return a.mean()


@register_unit(category="math")
class StdDev(_Reduction):
    """Population standard deviation."""

    def _op(self, a):
        return a.std()


@register_unit(category="math")
class MaxValue(_Reduction):
    """Maximum element."""

    def _op(self, a):
        return a.max()


@register_unit(category="math")
class MinValue(_Reduction):
    """Minimum element."""

    def _op(self, a):
        return a.min()


@register_unit(category="math")
class RunningSum(Unit):
    """Accumulates scalar inputs across iterations (checkpointable)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (Const,)
    OUTPUT_TYPES = (Const,)

    def reset(self) -> None:
        self._total = 0.0

    def checkpoint(self) -> dict[str, Any]:
        return {"total": self._total}

    def restore(self, state: dict[str, Any]) -> None:
        self._total = float(state.get("total", 0.0))

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (c,) = inputs
        self._total += c.value
        return [Const(value=self._total)]


@register_unit(category="math")
class IterationCounter(Unit):
    """Counts how many payloads passed through (pass-through + count)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1

    def reset(self) -> None:
        self.count = 0

    def checkpoint(self) -> dict[str, Any]:
        return {"count": self.count}

    def restore(self, state: dict[str, Any]) -> None:
        self.count = int(state.get("count", 0))

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        self.count += 1
        return [inputs[0]]


@register_unit(category="math")
class Threshold(Unit):
    """Zero out vector elements below ``level``."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (VectorType, SampleSet)
    OUTPUT_TYPES = (VectorType, SampleSet)
    PARAMETERS = (ParamSpec("level", 0.0, "threshold level"),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (a,) = inputs
        data = np.asarray(_numeric_payload(a)).copy()
        data[data < float(self.get_param("level"))] = 0.0
        return [_rewrap(a, data)]


@register_unit(category="math")
class Clamp(Unit):
    """Clamp vector elements into [lo, hi]."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (VectorType, SampleSet)
    OUTPUT_TYPES = (VectorType, SampleSet)
    PARAMETERS = (
        ParamSpec("lo", -1.0, "lower bound"),
        ParamSpec("hi", 1.0, "upper bound"),
    )

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (a,) = inputs
        lo, hi = float(self.get_param("lo")), float(self.get_param("hi"))
        if lo > hi:
            raise UnitError(f"Clamp: lo {lo} > hi {hi}")
        return [_rewrap(a, np.clip(_numeric_payload(a), lo, hi))]


@register_unit(category="math")
class Normalise(Unit):
    """Scale a vector to unit peak amplitude (zero vectors pass through)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (VectorType, SampleSet)
    OUTPUT_TYPES = (VectorType, SampleSet)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (a,) = inputs
        data = np.asarray(_numeric_payload(a))
        peak = np.abs(data).max() if data.size else 0.0
        return [_rewrap(a, data / peak if peak > 0 else data)]


@register_unit(category="math")
class Differentiate(Unit):
    """First difference scaled by the sampling rate."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (sig,) = inputs
        d = np.diff(sig.data, prepend=sig.data[:1]) * sig.sampling_rate
        return [SampleSet(data=d, sampling_rate=sig.sampling_rate, t0=sig.t0)]


@register_unit(category="math")
class Integrate(Unit):
    """Cumulative trapezoid-free running sum divided by the sampling rate."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (sig,) = inputs
        integ = np.cumsum(sig.data) / sig.sampling_rate
        return [SampleSet(data=integ, sampling_rate=sig.sampling_rate, t0=sig.t0)]


@register_unit(category="math")
class Histogram(Unit):
    """Bin a vector into a GraphData histogram."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (VectorType, SampleSet)
    OUTPUT_TYPES = (GraphData,)
    PARAMETERS = (ParamSpec("bins", 32, "number of bins", _positive),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (a,) = inputs
        counts, edges = np.histogram(
            np.asarray(_numeric_payload(a)), bins=int(self.get_param("bins"))
        )
        centres = 0.5 * (edges[:-1] + edges[1:])
        return [GraphData(x=centres, y=counts.astype(float), label="histogram")]
