"""Statistics units: running/windowed estimators over signals and vectors."""

from __future__ import annotations

from collections import deque
from typing import Any, Sequence

import numpy as np

from ..errors import UnitError
from ..registry import register_unit
from ..types import Const, SampleSet, TableData, VectorType
from ..units import ParamSpec, Unit

__all__ = [
    "RMS",
    "Variance",
    "Median",
    "Skewness",
    "Kurtosis",
    "ZScore",
    "MovingAverage",
    "ExpSmoother",
    "PeakDetect",
    "AutoCorrelate",
    "ZeroCrossingRate",
    "RunningStats",
]


def _positive(x) -> None:
    if not x > 0:
        raise ValueError(f"must be positive, got {x!r}")


def _data_of(value: Any) -> np.ndarray:
    if isinstance(value, (VectorType, SampleSet)):
        return value.data
    raise UnitError(f"expected a vector payload, got {type(value).__name__}")


class _VecReduction(Unit):
    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (VectorType, SampleSet)
    OUTPUT_TYPES = (Const,)

    def _op(self, a: np.ndarray) -> float:  # pragma: no cover - overridden
        raise NotImplementedError

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        data = _data_of(inputs[0])
        if data.size == 0:
            raise UnitError(f"{self.unit_name()}: empty input")
        return [Const(value=float(self._op(data)))]


@register_unit(category="statistics")
class RMS(_VecReduction):
    """Root-mean-square amplitude."""

    def _op(self, a):
        return np.sqrt(np.mean(a**2))


@register_unit(category="statistics")
class Variance(_VecReduction):
    """Population variance."""

    def _op(self, a):
        return a.var()


@register_unit(category="statistics")
class Median(_VecReduction):
    """Median element."""

    def _op(self, a):
        return np.median(a)


@register_unit(category="statistics")
class Skewness(_VecReduction):
    """Third standardised moment (0 for symmetric data)."""

    def _op(self, a):
        s = a.std()
        if s == 0:
            return 0.0
        return np.mean(((a - a.mean()) / s) ** 3)


@register_unit(category="statistics")
class Kurtosis(_VecReduction):
    """Excess kurtosis (0 for a Gaussian)."""

    def _op(self, a):
        s = a.std()
        if s == 0:
            return 0.0
        return np.mean(((a - a.mean()) / s) ** 4) - 3.0


@register_unit(category="statistics")
class ZScore(Unit):
    """Standardise a vector to zero mean / unit variance."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (VectorType, SampleSet)
    OUTPUT_TYPES = (VectorType, SampleSet)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        value = inputs[0]
        data = _data_of(value)
        s = data.std()
        z = (data - data.mean()) / s if s > 0 else data - data.mean()
        if isinstance(value, SampleSet):
            return [SampleSet(data=z, sampling_rate=value.sampling_rate, t0=value.t0)]
        return [VectorType(data=z)]


@register_unit(category="statistics")
class MovingAverage(Unit):
    """Sliding-window mean along a signal (window clamped at the edges)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)
    PARAMETERS = (ParamSpec("window", 8, "window length in samples", _positive),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        sig = inputs[0]
        w = int(self.get_param("window"))
        if w > len(sig.data):
            raise UnitError("MovingAverage: window longer than the signal")
        kernel = np.ones(w) / w
        smoothed = np.convolve(sig.data, kernel, mode="same")
        return [SampleSet(data=smoothed, sampling_rate=sig.sampling_rate, t0=sig.t0)]


@register_unit(category="statistics")
class ExpSmoother(Unit):
    """Exponential smoothing of scalar inputs across iterations (stateful)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (Const,)
    OUTPUT_TYPES = (Const,)
    PARAMETERS = (ParamSpec("alpha", 0.2, "smoothing factor in (0, 1]"),)

    def reset(self) -> None:
        self._state: float | None = None

    def checkpoint(self) -> dict[str, Any]:
        return {"state": self._state}

    def restore(self, state: dict[str, Any]) -> None:
        self._state = state.get("state")

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        alpha = float(self.get_param("alpha"))
        if not 0 < alpha <= 1:
            raise UnitError(f"ExpSmoother: alpha {alpha} outside (0, 1]")
        x = inputs[0].value
        self._state = x if self._state is None else alpha * x + (1 - alpha) * self._state
        return [Const(value=self._state)]


@register_unit(category="statistics")
class PeakDetect(Unit):
    """Local maxima above a threshold, reported as a table of (index, value)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (VectorType, SampleSet)
    OUTPUT_TYPES = (TableData,)
    PARAMETERS = (ParamSpec("threshold", 0.0, "minimum peak height"),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        data = _data_of(inputs[0])
        threshold = float(self.get_param("threshold"))
        table = TableData(["index", "value"])
        for i in range(1, len(data) - 1):
            if data[i] > threshold and data[i] >= data[i - 1] and data[i] > data[i + 1]:
                table.append((i, float(data[i])))
        return [table]


@register_unit(category="statistics")
class AutoCorrelate(Unit):
    """Normalised autocorrelation (lag 0..N-1) of a signal."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        sig = inputs[0]
        n = len(sig.data)
        if n == 0:
            raise UnitError("AutoCorrelate: empty input")
        x = sig.data - sig.data.mean()
        nfft = 1 << int(np.ceil(np.log2(max(2 * n - 1, 2))))
        f = np.fft.rfft(x, nfft)
        acf = np.fft.irfft(f * np.conj(f), nfft)[:n]
        if acf[0] > 0:
            acf = acf / acf[0]
        return [SampleSet(data=acf, sampling_rate=sig.sampling_rate)]

    def estimated_flops(self, input_nbytes: int) -> float:
        n = max(input_nbytes / 8.0, 2.0)
        return 15.0 * n * np.log2(n)


@register_unit(category="statistics")
class ZeroCrossingRate(_VecReduction):
    """Sign changes per sample — a crude frequency estimator."""

    def _op(self, a):
        if len(a) < 2:
            return 0.0
        return np.sum(np.abs(np.diff(np.sign(a)))) / 2.0 / (len(a) - 1)


@register_unit(category="statistics")
class RunningStats(Unit):
    """Streaming mean/std over the last ``window`` scalar inputs.

    Emits a 2-column table each iteration; checkpointable so a migrating
    peer keeps its window.
    """

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (Const,)
    OUTPUT_TYPES = (TableData,)
    PARAMETERS = (ParamSpec("window", 16, "history length", _positive),)

    def reset(self) -> None:
        self._history: deque[float] = deque(maxlen=int(self.get_param("window")))

    def checkpoint(self) -> dict[str, Any]:
        return {"history": list(self._history)}

    def restore(self, state: dict[str, Any]) -> None:
        self.reset()
        for v in state.get("history", []):
            self._history.append(float(v))

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        self._history.append(inputs[0].value)
        arr = np.array(self._history)
        table = TableData(["mean", "std", "n"])
        table.append((float(arr.mean()), float(arr.std()), len(arr)))
        return [table]
