"""Vector / signal shaping units, including multi-output tools."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..errors import UnitError
from ..registry import register_unit
from ..types import ComplexSpectrum, Const, SampleSet, Spectrum, VectorType
from ..units import ParamSpec, Unit

__all__ = [
    "Concatenate",
    "SplitHalf",
    "Duplicate",
    "Reverse",
    "ZeroPad",
    "TrimTo",
    "Resample",
    "DotProduct",
    "L2Distance",
    "MinMax",
    "ComplexToPolar",
    "Interleave",
]


def _positive(x) -> None:
    if not x > 0:
        raise ValueError(f"must be positive, got {x!r}")


def _sig(value: Any) -> SampleSet:
    if not isinstance(value, SampleSet):
        raise UnitError(f"expected SampleSet, got {type(value).__name__}")
    return value


@register_unit(category="vector")
class Concatenate(Unit):
    """Join two equal-rate sample sets end-to-end."""

    NUM_INPUTS = 2
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        a, b = _sig(inputs[0]), _sig(inputs[1])
        if a.sampling_rate != b.sampling_rate:
            raise UnitError("Concatenate: sampling-rate mismatch")
        return [
            SampleSet(
                data=np.concatenate([a.data, b.data]),
                sampling_rate=a.sampling_rate,
                t0=a.t0,
            )
        ]


@register_unit(category="vector")
class SplitHalf(Unit):
    """Split a sample set into first/second halves (two outputs)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 2
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        sig = _sig(inputs[0])
        mid = len(sig.data) // 2
        if mid == 0:
            raise UnitError("SplitHalf: signal too short to split")
        first = SampleSet(data=sig.data[:mid], sampling_rate=sig.sampling_rate, t0=sig.t0)
        second = SampleSet(
            data=sig.data[mid:],
            sampling_rate=sig.sampling_rate,
            t0=sig.t0 + mid / sig.sampling_rate,
        )
        return [first, second]


@register_unit(category="vector")
class Duplicate(Unit):
    """Fan one payload out to two outputs (explicit tee)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 2

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        return [inputs[0], inputs[0]]


@register_unit(category="vector")
class Reverse(Unit):
    """Time-reverse a sample set."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        sig = _sig(inputs[0])
        return [SampleSet(data=sig.data[::-1].copy(),
                          sampling_rate=sig.sampling_rate, t0=sig.t0)]


@register_unit(category="vector")
class ZeroPad(Unit):
    """Append zeros up to ``length`` samples."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)
    PARAMETERS = (ParamSpec("length", 512, "target length", _positive),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        sig = _sig(inputs[0])
        target = int(self.get_param("length"))
        if target < len(sig.data):
            raise UnitError(
                f"ZeroPad: target {target} shorter than signal {len(sig.data)}"
            )
        data = np.concatenate([sig.data, np.zeros(target - len(sig.data))])
        return [SampleSet(data=data, sampling_rate=sig.sampling_rate, t0=sig.t0)]


@register_unit(category="vector")
class TrimTo(Unit):
    """Keep only the first ``length`` samples."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)
    PARAMETERS = (ParamSpec("length", 256, "samples to keep", _positive),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        sig = _sig(inputs[0])
        target = int(self.get_param("length"))
        if target > len(sig.data):
            raise UnitError(f"TrimTo: signal shorter than {target}")
        return [SampleSet(data=sig.data[:target].copy(),
                          sampling_rate=sig.sampling_rate, t0=sig.t0)]


@register_unit(category="vector")
class Resample(Unit):
    """Linear-interpolation resampling to a new rate."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)
    PARAMETERS = (ParamSpec("rate", 512.0, "target sampling rate", _positive),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        sig = _sig(inputs[0])
        new_rate = float(self.get_param("rate"))
        duration = len(sig.data) / sig.sampling_rate
        n_new = max(int(round(duration * new_rate)), 1)
        old_t = np.arange(len(sig.data)) / sig.sampling_rate
        new_t = np.arange(n_new) / new_rate
        data = np.interp(new_t, old_t, sig.data)
        return [SampleSet(data=data, sampling_rate=new_rate, t0=sig.t0)]


@register_unit(category="vector")
class DotProduct(Unit):
    """Inner product of two equal-length vectors → scalar."""

    NUM_INPUTS = 2
    NUM_OUTPUTS = 1
    INPUT_TYPES = (VectorType, SampleSet)
    OUTPUT_TYPES = (Const,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        a, b = inputs[0].data, inputs[1].data
        if len(a) != len(b):
            raise UnitError(f"DotProduct: length mismatch {len(a)} vs {len(b)}")
        return [Const(value=float(np.dot(a, b)))]


@register_unit(category="vector")
class L2Distance(Unit):
    """Euclidean distance between two equal-length vectors."""

    NUM_INPUTS = 2
    NUM_OUTPUTS = 1
    INPUT_TYPES = (VectorType, SampleSet)
    OUTPUT_TYPES = (Const,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        a, b = inputs[0].data, inputs[1].data
        if len(a) != len(b):
            raise UnitError(f"L2Distance: length mismatch {len(a)} vs {len(b)}")
        return [Const(value=float(np.linalg.norm(a - b)))]


@register_unit(category="vector")
class MinMax(Unit):
    """Emit (min, max) of a vector on two scalar outputs."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 2
    INPUT_TYPES = (VectorType, SampleSet)
    OUTPUT_TYPES = (Const,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        data = inputs[0].data
        if data.size == 0:
            raise UnitError("MinMax: empty input")
        return [Const(value=float(data.min())), Const(value=float(data.max()))]


@register_unit(category="vector")
class ComplexToPolar(Unit):
    """Split a complex spectrum into magnitude and phase spectra."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 2
    INPUT_TYPES = (ComplexSpectrum,)
    OUTPUT_TYPES = (Spectrum,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        spec = inputs[0]
        return [
            Spectrum(data=np.abs(spec.data), df=spec.df),
            Spectrum(data=np.angle(spec.data), df=spec.df),
        ]


@register_unit(category="vector")
class Interleave(Unit):
    """Interleave two equal-length, equal-rate signals sample by sample."""

    NUM_INPUTS = 2
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        a, b = _sig(inputs[0]), _sig(inputs[1])
        if len(a.data) != len(b.data) or a.sampling_rate != b.sampling_rate:
            raise UnitError("Interleave: inputs must match in length and rate")
        out = np.empty(2 * len(a.data))
        out[0::2] = a.data
        out[1::2] = b.data
        return [SampleSet(data=out, sampling_rate=2 * a.sampling_rate, t0=a.t0)]
