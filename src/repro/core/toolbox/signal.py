"""Signal-processing units — the toolbox family behind Fig. 1/2.

Implements the paper's demonstration workflow (Wave → GaussianNoise →
FFT → PowerSpectrum → AccumStat → Grapher) plus the filtering/correlation
units a signal-analysis toolbox needs.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..errors import UnitError
from ..registry import register_unit
from ..types import (
    ComplexSpectrum,
    GraphData,
    SampleSet,
    Spectrum,
    TimeFrequency,
)
from ..units import ParamSpec, Unit

__all__ = [
    "Wave",
    "ChirpGenerator",
    "GaussianNoise",
    "UniformNoise",
    "FFT",
    "InverseFFT",
    "PowerSpectrum",
    "AmplitudeSpectrum",
    "AccumStat",
    "Spectrogram",
    "Gain",
    "Offset",
    "Mixer",
    "WindowFn",
    "LowPass",
    "HighPass",
    "Decimate",
    "Correlate",
    "SpectrumToGraph",
    "SampleSetToGraph",
]


def _positive(x) -> None:
    if not x > 0:
        raise ValueError(f"must be positive, got {x!r}")


def _non_negative(x) -> None:
    if x < 0:
        raise ValueError(f"must be >= 0, got {x!r}")


@register_unit(category="signal")
class Wave(Unit):
    """Periodic waveform source with phase continuity across iterations."""

    NUM_INPUTS = 0
    NUM_OUTPUTS = 1
    OUTPUT_TYPES = (SampleSet,)
    PARAMETERS = (
        ParamSpec("frequency", 64.0, "oscillation frequency, Hz", _positive),
        ParamSpec("amplitude", 1.0, "peak amplitude"),
        ParamSpec("samples", 256, "samples per output frame", _positive),
        ParamSpec("sampling_rate", 1024.0, "samples per second", _positive),
        ParamSpec("waveform", "sine", "sine | square | sawtooth"),
    )

    def reset(self) -> None:
        self._frame = 0

    def checkpoint(self) -> dict[str, Any]:
        return {"frame": self._frame}

    def restore(self, state: dict[str, Any]) -> None:
        self._frame = int(state.get("frame", 0))

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        n = int(self.get_param("samples"))
        fs = float(self.get_param("sampling_rate"))
        f = float(self.get_param("frequency"))
        a = float(self.get_param("amplitude"))
        t0 = self._frame * n / fs
        t = t0 + np.arange(n) / fs
        phase = 2.0 * np.pi * f * t
        kind = self.get_param("waveform")
        if kind == "sine":
            data = a * np.sin(phase)
        elif kind == "square":
            data = a * np.sign(np.sin(phase))
        elif kind == "sawtooth":
            data = a * (2.0 * ((f * t) % 1.0) - 1.0)
        else:
            raise UnitError(f"Wave: unknown waveform {kind!r}")
        self._frame += 1
        return [SampleSet(data=data, sampling_rate=fs, t0=t0)]


@register_unit(category="signal")
class ChirpGenerator(Unit):
    """Linear-frequency chirp source (test signal for inspiral-style work)."""

    NUM_INPUTS = 0
    NUM_OUTPUTS = 1
    OUTPUT_TYPES = (SampleSet,)
    PARAMETERS = (
        ParamSpec("f0", 40.0, "start frequency, Hz", _positive),
        ParamSpec("f1", 200.0, "end frequency, Hz", _positive),
        ParamSpec("duration", 1.0, "seconds", _positive),
        ParamSpec("amplitude", 1.0, "peak amplitude"),
        ParamSpec("sampling_rate", 2048.0, "samples per second", _positive),
    )

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        fs = float(self.get_param("sampling_rate"))
        dur = float(self.get_param("duration"))
        f0 = float(self.get_param("f0"))
        f1 = float(self.get_param("f1"))
        a = float(self.get_param("amplitude"))
        t = np.arange(int(round(dur * fs))) / fs
        # Instantaneous phase of a linear chirp: 2π (f0 t + (f1-f0) t² / 2T).
        phase = 2.0 * np.pi * (f0 * t + 0.5 * (f1 - f0) * t**2 / dur)
        return [SampleSet(data=a * np.sin(phase), sampling_rate=fs)]


class _NoiseUnit(Unit):
    """Shared machinery for additive-noise units with reproducible draws."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)

    def reset(self) -> None:
        self._rng = np.random.default_rng(int(self.get_param("seed")))

    def checkpoint(self) -> dict[str, Any]:
        return {"rng_state": self._rng.bit_generator.state}

    def restore(self, state: dict[str, Any]) -> None:
        if "rng_state" in state:
            self._rng.bit_generator.state = state["rng_state"]

    def _draw(self, n: int) -> np.ndarray:  # pragma: no cover - overridden
        raise NotImplementedError

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (sig,) = inputs
        noisy = sig.data + self._draw(len(sig.data))
        return [SampleSet(data=noisy, sampling_rate=sig.sampling_rate, t0=sig.t0)]


@register_unit(category="signal")
class GaussianNoise(_NoiseUnit):
    """Contaminates a sample set with white Gaussian noise (Fig. 1)."""

    PARAMETERS = (
        ParamSpec("sigma", 1.0, "noise standard deviation", _non_negative),
        ParamSpec("seed", 0, "noise stream seed"),
    )

    def _draw(self, n: int) -> np.ndarray:
        return self._rng.normal(0.0, float(self.get_param("sigma")), n)


@register_unit(category="signal")
class UniformNoise(_NoiseUnit):
    """Adds uniform noise in [-width/2, +width/2]."""

    PARAMETERS = (
        ParamSpec("width", 1.0, "peak-to-peak width", _non_negative),
        ParamSpec("seed", 0, "noise stream seed"),
    )

    def _draw(self, n: int) -> np.ndarray:
        w = float(self.get_param("width"))
        return self._rng.uniform(-w / 2.0, w / 2.0, n)


@register_unit(category="signal")
class FFT(Unit):
    """Real FFT: SampleSet → one-sided ComplexSpectrum."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (ComplexSpectrum,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (sig,) = inputs
        if len(sig.data) == 0:
            raise UnitError("FFT: empty input")
        spec = np.fft.rfft(sig.data)
        df = sig.sampling_rate / len(sig.data)
        return [ComplexSpectrum(data=spec, df=df)]

    def estimated_flops(self, input_nbytes: int) -> float:
        n = max(input_nbytes / 8.0, 2.0)
        return 5.0 * n * np.log2(n)


@register_unit(category="signal")
class InverseFFT(Unit):
    """One-sided ComplexSpectrum → SampleSet (inverse of :class:`FFT`)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (ComplexSpectrum,)
    OUTPUT_TYPES = (SampleSet,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (spec,) = inputs
        n_time = 2 * (len(spec.data) - 1)
        data = np.fft.irfft(spec.data, n=n_time)
        fs = spec.df * n_time
        return [SampleSet(data=data, sampling_rate=fs)]

    def estimated_flops(self, input_nbytes: int) -> float:
        n = max(input_nbytes / 16.0, 2.0)
        return 5.0 * n * np.log2(n)


@register_unit(category="signal")
class PowerSpectrum(Unit):
    """|X(f)|² normalised by N² — the quantity AccumStat averages."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (ComplexSpectrum,)
    OUTPUT_TYPES = (Spectrum,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (spec,) = inputs
        n_time = 2 * (len(spec.data) - 1)
        power = np.abs(spec.data) ** 2 / max(n_time, 1) ** 2
        return [Spectrum(data=power, df=spec.df)]


@register_unit(category="signal")
class AmplitudeSpectrum(Unit):
    """|X(f)| / N."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (ComplexSpectrum,)
    OUTPUT_TYPES = (Spectrum,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (spec,) = inputs
        n_time = 2 * (len(spec.data) - 1)
        return [Spectrum(data=np.abs(spec.data) / max(n_time, 1), df=spec.df)]


@register_unit(category="signal")
class AccumStat(Unit):
    """Running mean of successive spectra (Fig. 1's noise remover).

    "uses a unit called AccumStat to average the spectra over successive
    iterations to remove the noise from the original signal."  State is
    checkpointable so a migrating peer keeps its accumulated average.
    """

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (Spectrum,)
    OUTPUT_TYPES = (Spectrum,)

    def reset(self) -> None:
        self._count = 0
        self._sum: np.ndarray | None = None
        self._df = 1.0

    def checkpoint(self) -> dict[str, Any]:
        return {
            "count": self._count,
            "sum": None if self._sum is None else self._sum.tolist(),
            "df": self._df,
        }

    def restore(self, state: dict[str, Any]) -> None:
        self._count = int(state.get("count", 0))
        raw = state.get("sum")
        self._sum = None if raw is None else np.asarray(raw, dtype=float)
        self._df = float(state.get("df", 1.0))

    @property
    def count(self) -> int:
        """Number of spectra accumulated so far."""
        return self._count

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (spec,) = inputs
        if self._sum is None:
            self._sum = np.zeros_like(spec.data)
            self._df = spec.df
        elif self._sum.shape != spec.data.shape:
            raise UnitError(
                f"AccumStat: spectrum length changed "
                f"({self._sum.shape} -> {spec.data.shape})"
            )
        self._sum = self._sum + spec.data
        self._count += 1
        return [Spectrum(data=self._sum / self._count, df=self._df)]


@register_unit(category="signal")
class Gain(Unit):
    """Multiply a sample set by a constant factor."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)
    PARAMETERS = (ParamSpec("factor", 1.0, "gain factor"),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (sig,) = inputs
        return [
            SampleSet(
                data=sig.data * float(self.get_param("factor")),
                sampling_rate=sig.sampling_rate,
                t0=sig.t0,
            )
        ]


@register_unit(category="signal")
class Offset(Unit):
    """Add a DC offset to a sample set."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)
    PARAMETERS = (ParamSpec("offset", 0.0, "additive offset"),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (sig,) = inputs
        return [
            SampleSet(
                data=sig.data + float(self.get_param("offset")),
                sampling_rate=sig.sampling_rate,
                t0=sig.t0,
            )
        ]


@register_unit(category="signal")
class Mixer(Unit):
    """Sum two equal-rate sample sets."""

    NUM_INPUTS = 2
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        a, b = inputs
        if a.sampling_rate != b.sampling_rate:
            raise UnitError(
                f"Mixer: rate mismatch {a.sampling_rate} vs {b.sampling_rate}"
            )
        n = min(len(a.data), len(b.data))
        return [
            SampleSet(
                data=a.data[:n] + b.data[:n],
                sampling_rate=a.sampling_rate,
                t0=a.t0,
            )
        ]


@register_unit(category="signal")
class WindowFn(Unit):
    """Apply a taper window (hann/hamming/blackman/rect)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)
    PARAMETERS = (ParamSpec("window", "hann", "hann | hamming | blackman | rect"),)

    _WINDOWS = {
        "hann": np.hanning,
        "hamming": np.hamming,
        "blackman": np.blackman,
        "rect": np.ones,
    }

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (sig,) = inputs
        kind = self.get_param("window")
        if kind not in self._WINDOWS:
            raise UnitError(f"WindowFn: unknown window {kind!r}")
        w = self._WINDOWS[kind](len(sig.data))
        return [SampleSet(data=sig.data * w, sampling_rate=sig.sampling_rate, t0=sig.t0)]


class _FFTFilter(Unit):
    """Zero out FFT bins outside the pass region."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)

    def _mask(self, freqs: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (sig,) = inputs
        spec = np.fft.rfft(sig.data)
        freqs = np.fft.rfftfreq(len(sig.data), d=1.0 / sig.sampling_rate)
        spec[~self._mask(freqs)] = 0.0
        data = np.fft.irfft(spec, n=len(sig.data))
        return [SampleSet(data=data, sampling_rate=sig.sampling_rate, t0=sig.t0)]

    def estimated_flops(self, input_nbytes: int) -> float:
        n = max(input_nbytes / 8.0, 2.0)
        return 10.0 * n * np.log2(n)


@register_unit(category="signal")
class LowPass(_FFTFilter):
    """Ideal low-pass filter at ``cutoff`` Hz."""

    PARAMETERS = (ParamSpec("cutoff", 100.0, "cutoff frequency, Hz", _positive),)

    def _mask(self, freqs: np.ndarray) -> np.ndarray:
        return freqs <= float(self.get_param("cutoff"))


@register_unit(category="signal")
class HighPass(_FFTFilter):
    """Ideal high-pass filter at ``cutoff`` Hz."""

    PARAMETERS = (ParamSpec("cutoff", 100.0, "cutoff frequency, Hz", _positive),)

    def _mask(self, freqs: np.ndarray) -> np.ndarray:
        return freqs >= float(self.get_param("cutoff"))


@register_unit(category="signal")
class Decimate(Unit):
    """Keep every k-th sample (no anti-alias filter — compose with LowPass)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)
    PARAMETERS = (ParamSpec("factor", 2, "decimation factor", _positive),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (sig,) = inputs
        k = int(self.get_param("factor"))
        return [
            SampleSet(
                data=sig.data[::k],
                sampling_rate=sig.sampling_rate / k,
                t0=sig.t0,
            )
        ]


@register_unit(category="signal")
class Correlate(Unit):
    """FFT-based cross-correlation of two sample sets (node1 is template)."""

    NUM_INPUTS = 2
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (SampleSet,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        data, template = inputs
        n = len(data.data) + len(template.data) - 1
        nfft = 1 << int(np.ceil(np.log2(max(n, 2))))
        fd = np.fft.rfft(data.data, nfft)
        ft = np.fft.rfft(template.data, nfft)
        corr = np.fft.irfft(fd * np.conj(ft), nfft)[:n]
        return [SampleSet(data=corr, sampling_rate=data.sampling_rate, t0=data.t0)]

    def estimated_flops(self, input_nbytes: int) -> float:
        n = max(input_nbytes / 8.0, 2.0)
        return 15.0 * n * np.log2(n)


@register_unit(category="signal")
class Spectrogram(Unit):
    """Short-time Fourier transform: SampleSet → TimeFrequency map.

    Rows are time frames (hop-spaced), columns frequency bins; values are
    power.  The natural display for chirping signals like Case 2's
    inspirals.
    """

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (TimeFrequency,)
    PARAMETERS = (
        ParamSpec("window", 128, "FFT window length in samples", _positive),
        ParamSpec("hop", 64, "hop between frames in samples", _positive),
    )

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (sig,) = inputs
        window = int(self.get_param("window"))
        hop = int(self.get_param("hop"))
        if len(sig.data) < window:
            raise UnitError(
                f"Spectrogram: signal shorter than window ({len(sig.data)} < {window})"
            )
        taper = np.hanning(window)
        frames = []
        for start in range(0, len(sig.data) - window + 1, hop):
            chunk = sig.data[start : start + window] * taper
            frames.append(np.abs(np.fft.rfft(chunk)) ** 2)
        return [
            TimeFrequency(
                data=np.array(frames),
                dt=hop / sig.sampling_rate,
                df=sig.sampling_rate / window,
            )
        ]

    def estimated_flops(self, input_nbytes: int) -> float:
        n = max(input_nbytes / 8.0, 2.0)
        return 10.0 * n * np.log2(max(n, 2.0))


@register_unit(category="signal")
class SpectrumToGraph(Unit):
    """Spectrum → GraphData (frequency axis attached)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (Spectrum,)
    OUTPUT_TYPES = (GraphData,)
    PARAMETERS = (ParamSpec("label", "", "series label"),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (spec,) = inputs
        return [
            GraphData(x=spec.frequencies(), y=spec.data, label=self.get_param("label"))
        ]


@register_unit(category="signal")
class SampleSetToGraph(Unit):
    """SampleSet → GraphData (time axis attached)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (GraphData,)
    PARAMETERS = (ParamSpec("label", "", "series label"),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        (sig,) = inputs
        return [GraphData(x=sig.times(), y=sig.data, label=self.get_param("label"))]
