"""Image units — Triana manipulates "image ... data" too.

The galaxy scenario's column-density frames flow through these as
:class:`~repro.core.types.ImageData`.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..errors import UnitError
from ..registry import register_unit
from ..types import Const, ImageData, VectorType
from ..units import ParamSpec, Unit

__all__ = [
    "TestImage",
    "InvertImage",
    "ThresholdImage",
    "BoxBlur",
    "SobelEdges",
    "DownsampleImage",
    "ImageStats",
    "RowProfile",
]


def _positive(x) -> None:
    if not x > 0:
        raise ValueError(f"must be positive, got {x!r}")


@register_unit(category="image")
class TestImage(Unit):
    """Synthetic test pattern source (gradient + gaussian blob)."""

    __test__ = False  # not a pytest test class despite the name

    NUM_INPUTS = 0
    NUM_OUTPUTS = 1
    OUTPUT_TYPES = (ImageData,)
    PARAMETERS = (
        ParamSpec("size", 64, "image side length in pixels", _positive),
        ParamSpec("pattern", "blob", "blob | gradient | checker"),
    )

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        n = int(self.get_param("size"))
        kind = self.get_param("pattern")
        yy, xx = np.mgrid[0:n, 0:n]
        if kind == "blob":
            c = (n - 1) / 2.0
            pixels = np.exp(-((xx - c) ** 2 + (yy - c) ** 2) / (2 * (n / 6.0) ** 2))
        elif kind == "gradient":
            pixels = xx / max(n - 1, 1)
        elif kind == "checker":
            pixels = ((xx // 8 + yy // 8) % 2).astype(float)
        else:
            raise UnitError(f"TestImage: unknown pattern {kind!r}")
        return [ImageData(pixels=pixels)]


@register_unit(category="image")
class InvertImage(Unit):
    """max - pixel, preserving range."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (ImageData,)
    OUTPUT_TYPES = (ImageData,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        img = inputs[0]
        top = img.pixels.max() if img.pixels.size else 0.0
        return [ImageData(pixels=top - img.pixels)]


@register_unit(category="image")
class ThresholdImage(Unit):
    """Binarise at ``level``."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (ImageData,)
    OUTPUT_TYPES = (ImageData,)
    PARAMETERS = (ParamSpec("level", 0.5, "binarisation level"),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        level = float(self.get_param("level"))
        return [ImageData(pixels=(inputs[0].pixels >= level).astype(float))]


@register_unit(category="image")
class BoxBlur(Unit):
    """Mean filter with a (2r+1)² box, edge-clamped."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (ImageData,)
    OUTPUT_TYPES = (ImageData,)
    PARAMETERS = (ParamSpec("radius", 1, "box radius in pixels", _positive),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        img = inputs[0].pixels
        r = int(self.get_param("radius"))
        padded = np.pad(img, r, mode="edge")
        # Summed-area table gives O(1) box sums per pixel.
        sat = padded.cumsum(0).cumsum(1)
        sat = np.pad(sat, ((1, 0), (1, 0)))
        k = 2 * r + 1
        h, w = img.shape
        total = (
            sat[k : k + h, k : k + w]
            - sat[0:h, k : k + w]
            - sat[k : k + h, 0:w]
            + sat[0:h, 0:w]
        )
        return [ImageData(pixels=total / (k * k))]

    def estimated_flops(self, input_nbytes: int) -> float:
        return 10.0 * input_nbytes / 8.0


@register_unit(category="image")
class SobelEdges(Unit):
    """Gradient magnitude via 3×3 Sobel kernels."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (ImageData,)
    OUTPUT_TYPES = (ImageData,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        img = np.pad(inputs[0].pixels, 1, mode="edge")
        gx = (
            img[:-2, 2:] + 2 * img[1:-1, 2:] + img[2:, 2:]
            - img[:-2, :-2] - 2 * img[1:-1, :-2] - img[2:, :-2]
        )
        gy = (
            img[2:, :-2] + 2 * img[2:, 1:-1] + img[2:, 2:]
            - img[:-2, :-2] - 2 * img[:-2, 1:-1] - img[:-2, 2:]
        )
        return [ImageData(pixels=np.hypot(gx, gy))]

    def estimated_flops(self, input_nbytes: int) -> float:
        return 20.0 * input_nbytes / 8.0


@register_unit(category="image")
class DownsampleImage(Unit):
    """Block-mean downsampling by an integer factor."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (ImageData,)
    OUTPUT_TYPES = (ImageData,)
    PARAMETERS = (ParamSpec("factor", 2, "downsampling factor", _positive),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        img = inputs[0].pixels
        k = int(self.get_param("factor"))
        h, w = (img.shape[0] // k) * k, (img.shape[1] // k) * k
        if h == 0 or w == 0:
            raise UnitError("DownsampleImage: image smaller than factor")
        blocks = img[:h, :w].reshape(h // k, k, w // k, k)
        return [ImageData(pixels=blocks.mean(axis=(1, 3)))]


@register_unit(category="image")
class ImageStats(Unit):
    """Total flux of an image as a scalar."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (ImageData,)
    OUTPUT_TYPES = (Const,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        return [Const(value=float(inputs[0].pixels.sum()))]


@register_unit(category="image")
class RowProfile(Unit):
    """Column-wise sum — collapses an image to a 1-D profile vector."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (ImageData,)
    OUTPUT_TYPES = (VectorType,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        return [VectorType(data=inputs[0].pixels.sum(axis=0))]
