"""Display / sink units.

The GUI screenshots in Fig. 1/2 show a ``Grapher`` rendering its input.
Headless reproduction: the Grapher is a sink unit that retains every frame
it is shown as :class:`~repro.core.types.GraphData`; tests and benchmarks
read the frames back instead of looking at pixels.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..errors import UnitError
from ..registry import register_unit
from ..types import (
    AnyType,
    ComplexSpectrum,
    Const,
    GraphData,
    SampleSet,
    Spectrum,
    TextMessage,
    VectorType,
)
from ..units import ParamSpec, Unit

__all__ = ["Grapher", "ScopeProbe", "TextConsole"]


def _to_graph_data(value: Any) -> GraphData:
    """Render any displayable payload into an (x, y) series."""
    if isinstance(value, GraphData):
        return value
    if isinstance(value, SampleSet):
        return GraphData(x=value.times(), y=value.data, label="samples")
    if isinstance(value, Spectrum):
        return GraphData(x=value.frequencies(), y=value.data, label="spectrum")
    if isinstance(value, ComplexSpectrum):
        return GraphData(
            x=value.frequencies(), y=np.abs(value.data), label="magnitude"
        )
    if isinstance(value, VectorType):
        return GraphData(x=np.arange(len(value.data), dtype=float), y=value.data)
    if isinstance(value, Const):
        return GraphData(x=np.zeros(1), y=np.array([value.value]))
    raise UnitError(f"Grapher cannot display {type(value).__name__}")


@register_unit(category="display")
class Grapher(Unit):
    """Terminal sink: records every frame displayed (Fig. 1's output unit)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 0
    INPUT_TYPES = (AnyType,)
    PARAMETERS = (ParamSpec("title", "", "display title"),)

    def reset(self) -> None:
        self.frames: list[GraphData] = []

    def checkpoint(self) -> dict[str, Any]:
        return {
            "frames": [
                {"x": f.x.tolist(), "y": f.y.tolist(), "label": f.label}
                for f in self.frames
            ]
        }

    def restore(self, state: dict[str, Any]) -> None:
        self.frames = [
            GraphData(x=np.asarray(f["x"]), y=np.asarray(f["y"]), label=f["label"])
            for f in state.get("frames", [])
        ]

    @property
    def last_frame(self) -> GraphData:
        if not self.frames:
            raise UnitError("Grapher has displayed nothing")
        return self.frames[-1]

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        self.frames.append(_to_graph_data(inputs[0]))
        return []


@register_unit(category="display")
class ScopeProbe(Unit):
    """Pass-through observer: forwards input unchanged, keeps a copy."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (AnyType,)
    OUTPUT_TYPES = (AnyType,)

    def reset(self) -> None:
        self.seen: list[Any] = []

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        self.seen.append(inputs[0])
        return [inputs[0]]


@register_unit(category="display")
class TextConsole(Unit):
    """Sink collecting text lines (the WAP/browser progress view stand-in)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 0
    INPUT_TYPES = (TextMessage, Const)

    def reset(self) -> None:
        self.lines: list[str] = []

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        value = inputs[0]
        self.lines.append(value.text if isinstance(value, TextMessage) else str(value.value))
        return []
