"""The built-in unit toolbox (system S5).

Importing this package registers every built-in unit in the global
registry — mirroring Triana's palette of ready-made tools.  Families:

* :mod:`.signal`     — waveform sources, FFTs, spectra, AccumStat, filters
* :mod:`.generators` — impulse/step/noise/PRBS sources
* :mod:`.mathpack`   — scalar/vector arithmetic, reductions, histograms
* :mod:`.statistics` — running/windowed estimators, peak detection
* :mod:`.vectorpack` — shaping, resampling, multi-output splitters
* :mod:`.conversion` — bridges between the payload families
* :mod:`.textpack`   — text manipulation
* :mod:`.imagepack`  — image processing
* :mod:`.display`    — Grapher and other sinks
"""

from . import (  # noqa: F401
    conversion,
    display,
    generators,
    imagepack,
    mathpack,
    signal,
    statistics,
    textpack,
    vectorpack,
)

from .display import Grapher, ScopeProbe, TextConsole
from .signal import (
    FFT,
    AccumStat,
    AmplitudeSpectrum,
    ChirpGenerator,
    Correlate,
    Decimate,
    GaussianNoise,
    Gain,
    HighPass,
    InverseFFT,
    LowPass,
    Mixer,
    Offset,
    PowerSpectrum,
    SampleSetToGraph,
    SpectrumToGraph,
    UniformNoise,
    Wave,
    WindowFn,
)

__all__ = [
    "AccumStat",
    "AmplitudeSpectrum",
    "ChirpGenerator",
    "Correlate",
    "Decimate",
    "FFT",
    "Gain",
    "GaussianNoise",
    "Grapher",
    "HighPass",
    "InverseFFT",
    "LowPass",
    "Mixer",
    "Offset",
    "PowerSpectrum",
    "SampleSetToGraph",
    "ScopeProbe",
    "SpectrumToGraph",
    "TextConsole",
    "UniformNoise",
    "Wave",
    "WindowFn",
]
