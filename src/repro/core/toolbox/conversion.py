"""Type-conversion units bridging the payload families."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..errors import UnitError
from ..registry import register_unit
from ..types import (
    Const,
    ImageData,
    SampleSet,
    Spectrum,
    TableData,
    TextMessage,
    VectorType,
)
from ..units import ParamSpec, Unit

__all__ = [
    "VectorToSampleSet",
    "SampleSetToVector",
    "SpectrumToVector",
    "TableColumn",
    "VectorToTable",
    "ImageFlatten",
    "ConstToVector",
    "TableToText",
]


def _positive(x) -> None:
    if not x > 0:
        raise ValueError(f"must be positive, got {x!r}")


@register_unit(category="conversion")
class VectorToSampleSet(Unit):
    """Attach a sampling rate to a bare vector."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (VectorType,)
    OUTPUT_TYPES = (SampleSet,)
    PARAMETERS = (ParamSpec("sampling_rate", 1024.0, "samples per second", _positive),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        return [
            SampleSet(
                data=inputs[0].data,
                sampling_rate=float(self.get_param("sampling_rate")),
            )
        ]


@register_unit(category="conversion")
class SampleSetToVector(Unit):
    """Strip signal semantics, keep the samples."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (SampleSet,)
    OUTPUT_TYPES = (VectorType,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        return [VectorType(data=inputs[0].data.copy())]


@register_unit(category="conversion")
class SpectrumToVector(Unit):
    """Spectrum bins as a bare vector."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (Spectrum,)
    OUTPUT_TYPES = (VectorType,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        return [VectorType(data=inputs[0].data.copy())]


@register_unit(category="conversion")
class TableColumn(Unit):
    """Extract one numeric column of a table as a vector."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (TableData,)
    OUTPUT_TYPES = (VectorType,)
    PARAMETERS = (ParamSpec("column", "", "column name to extract"),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        table = inputs[0]
        name = self.get_param("column")
        try:
            values = table.column(name)
        except KeyError as exc:
            raise UnitError(str(exc)) from exc
        try:
            data = np.asarray(values, dtype=float)
        except (TypeError, ValueError) as exc:
            raise UnitError(f"TableColumn: column {name!r} is not numeric") from exc
        return [VectorType(data=data)]


@register_unit(category="conversion")
class VectorToTable(Unit):
    """Wrap a vector into a single-column table."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (VectorType, SampleSet)
    OUTPUT_TYPES = (TableData,)
    PARAMETERS = (ParamSpec("column", "value", "column name"),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        name = self.get_param("column") or "value"
        table = TableData([name])
        for v in inputs[0].data:
            table.append((float(v),))
        return [table]


@register_unit(category="conversion")
class ImageFlatten(Unit):
    """Row-major flatten of an image into a vector."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (ImageData,)
    OUTPUT_TYPES = (VectorType,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        return [VectorType(data=inputs[0].pixels.ravel().copy())]


@register_unit(category="conversion")
class ConstToVector(Unit):
    """Repeat a scalar into a vector of given length."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (Const,)
    OUTPUT_TYPES = (VectorType,)
    PARAMETERS = (ParamSpec("length", 16, "output length", _positive),)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        n = int(self.get_param("length"))
        return [VectorType(data=np.full(n, inputs[0].value))]


@register_unit(category="conversion")
class TableToText(Unit):
    """Render a table as CSV text (the inverse of Database.load_csv)."""

    NUM_INPUTS = 1
    NUM_OUTPUTS = 1
    INPUT_TYPES = (TableData,)
    OUTPUT_TYPES = (TextMessage,)

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        table = inputs[0]
        lines = [", ".join(table.columns)]
        for row in table.rows:
            lines.append(", ".join(str(c) for c in row))
        return [TextMessage(text="\n".join(lines))]
