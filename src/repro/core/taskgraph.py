"""Task graphs: the unit-of-work description a Triana peer interprets.

A :class:`TaskGraph` is a named collection of :class:`Task` instances and
typed :class:`Connection` objects.  Tasks reference units by registry name
(the graph itself carries **no executable code** — peers fetch that on
demand, which is the paper's code-mobility model: "Transmitting the
connectivity graph to nodes has a limited overhead – as the graph itself
is a text file").

Grouping: "Tools have to be grouped in order to be distributed" — a
:class:`GroupTask` embeds a whole sub-graph behind external input/output
nodes, carries a distribution policy name, and is the unit of distribution
used by :mod:`repro.core.distribution`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Type

import networkx as nx

from .errors import GraphError, TypeMismatchError
from .registry import UnitRegistry, global_registry
from .types import TrianaType, is_compatible
from .units import Unit

__all__ = [
    "Task",
    "GroupTask",
    "Connection",
    "TaskGraph",
    "GROUP_POLICIES",
    "register_policy_name",
    "known_policy_names",
]

#: Built-in distribution policies a group may carry.  ``none`` = run in
#: place; ``parallel`` = farm copies of the group across peers; ``p2p`` =
#: place each inner task on its own peer and pipe data between them
#: (§3.3); ``chunked`` = farm variant batching k iterations per message.
#: Third-party policies extend the valid set via
#: :func:`register_policy_name` (done automatically by
#: ``repro.service.policies.PolicyRegistry.register``).
GROUP_POLICIES = ("none", "parallel", "p2p", "chunked")

_known_policy_names: set[str] = set(GROUP_POLICIES)


def register_policy_name(name: str) -> None:
    """Declare ``name`` a valid :class:`GroupTask` distribution policy.

    The core layer validates policy *names* only; the behaviour behind a
    name lives in ``repro.service.policies`` (which calls this on
    registration) so graphs can be built and serialized without the
    service layer imported.
    """
    if not name or not isinstance(name, str):
        raise GraphError(f"invalid policy name {name!r}")
    _known_policy_names.add(name)


def known_policy_names() -> tuple[str, ...]:
    """Every currently-valid policy name, sorted."""
    return tuple(sorted(_known_policy_names))


def _clone_task(task: "Task", new_name: str) -> "Task":
    """Copy a plain task under a (possibly path-qualified) new name.

    Bypasses ``Task.__init__`` name validation because flattened names
    legitimately contain ``/`` separators.
    """
    new = Task.__new__(Task)
    new.name = new_name
    new.registry = task.registry
    new.descriptor = task.descriptor
    new.unit_name = task.unit_name
    new.params = dict(task.params)
    return new


@dataclass(frozen=True)
class Connection:
    """A directed, typed data channel between two task nodes."""

    src: str
    src_node: int
    dst: str
    dst_node: int

    def label(self) -> str:
        return f"{self.src}:{self.src_node}->{self.dst}:{self.dst_node}"


class Task:
    """One placed instance of a unit inside a task graph."""

    def __init__(
        self,
        name: str,
        unit_name: str,
        params: Optional[dict] = None,
        registry: Optional[UnitRegistry] = None,
    ):
        if not name or "/" in name or ":" in name:
            raise GraphError(f"invalid task name {name!r} ('/' and ':' are reserved)")
        self.name = name
        self.registry = registry if registry is not None else global_registry()
        self.descriptor = self.registry.lookup(unit_name)
        self.unit_name = self.descriptor.name
        self.params = dict(params or {})
        # Fail fast on bad parameters by instantiating once.
        self.descriptor.cls(**self.params)

    # -- node geometry -------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        return self.descriptor.cls.NUM_INPUTS

    @property
    def num_outputs(self) -> int:
        return self.descriptor.cls.NUM_OUTPUTS

    def input_types_at(self, node: int) -> list[Type[TrianaType]]:
        return self.descriptor.cls.input_types_at(node)

    def output_types_at(self, node: int) -> list[Type[TrianaType]]:
        return self.descriptor.cls.output_types_at(node)

    def instantiate(self) -> Unit:
        """Create a fresh unit instance for execution."""
        return self.descriptor.cls(**self.params)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Task({self.name!r}, unit={self.unit_name!r})"


class GroupTask(Task):
    """An aggregate task hiding a sub-graph behind mapped external nodes.

    Parameters
    ----------
    name:
        Task name in the enclosing graph.
    graph:
        The inner :class:`TaskGraph`.
    input_map / output_map:
        One ``(inner_task_name, inner_node)`` pair per external node, in
        external-node order.
    policy:
        Distribution policy name; built-ins are :data:`GROUP_POLICIES`,
        and plugins extend the set via :func:`register_policy_name`.
    """

    def __init__(
        self,
        name: str,
        graph: "TaskGraph",
        input_map: Iterable[tuple[str, int]],
        output_map: Iterable[tuple[str, int]],
        policy: str = "none",
    ):
        if not name or "/" in name or ":" in name:
            raise GraphError(f"invalid group name {name!r}")
        if policy not in _known_policy_names:
            raise GraphError(
                f"unknown policy {policy!r}; valid: {known_policy_names()}"
            )
        self.name = name
        self.graph = graph
        self.registry = graph.registry
        self.policy = policy
        self.input_map = [tuple(m) for m in input_map]
        self.output_map = [tuple(m) for m in output_map]
        for task_name, node in self.input_map:
            inner = graph.task(task_name)
            if not 0 <= node < inner.num_inputs:
                raise GraphError(
                    f"group {name!r}: mapping targets missing input "
                    f"{task_name}:{node}"
                )
        for task_name, node in self.output_map:
            inner = graph.task(task_name)
            if not 0 <= node < inner.num_outputs:
                raise GraphError(
                    f"group {name!r}: mapping targets missing output "
                    f"{task_name}:{node}"
                )

    @property
    def num_inputs(self) -> int:
        return len(self.input_map)

    @property
    def num_outputs(self) -> int:
        return len(self.output_map)

    def input_types_at(self, node: int) -> list[Type[TrianaType]]:
        task_name, inner_node = self.input_map[node]
        return self.graph.task(task_name).input_types_at(inner_node)

    def output_types_at(self, node: int) -> list[Type[TrianaType]]:
        task_name, inner_node = self.output_map[node]
        return self.graph.task(task_name).output_types_at(inner_node)

    def instantiate(self) -> Unit:
        raise GraphError(
            f"group {self.name!r} cannot be instantiated directly; "
            "flatten the graph or distribute the group"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GroupTask({self.name!r}, tasks={len(self.graph.tasks)}, "
            f"policy={self.policy!r})"
        )


class TaskGraph:
    """A named DAG of tasks and typed connections."""

    def __init__(self, name: str = "taskgraph", registry: Optional[UnitRegistry] = None):
        self.name = name
        self.registry = registry if registry is not None else global_registry()
        self.tasks: dict[str, Task] = {}
        self.connections: list[Connection] = []

    # -- construction -----------------------------------------------------------
    def add_task(self, name: str, unit: str, **params) -> Task:
        """Place a unit instance in the graph under ``name``."""
        if name in self.tasks:
            raise GraphError(f"duplicate task name {name!r}")
        task = Task(name, unit, params, registry=self.registry)
        self.tasks[name] = task
        return task

    def add_group(
        self,
        name: str,
        graph: "TaskGraph",
        input_map: Iterable[tuple[str, int]],
        output_map: Iterable[tuple[str, int]],
        policy: str = "none",
    ) -> GroupTask:
        """Place a sub-graph as a single aggregate task."""
        if name in self.tasks:
            raise GraphError(f"duplicate task name {name!r}")
        group = GroupTask(name, graph, input_map, output_map, policy)
        self.tasks[name] = group
        return group

    def group_tasks(
        self,
        name: str,
        members: Iterable[str],
        policy: str = "none",
    ) -> GroupTask:
        """Collapse existing tasks ``members`` into a group in place.

        Connections internal to the member set move inside the group;
        boundary connections are re-routed through fresh external nodes in
        a deterministic order (inputs first by original connection order,
        then outputs).  This is the programmatic equivalent of selecting
        units in the GUI and pressing "group".
        """
        member_set = set(members)
        missing = member_set - set(self.tasks)
        if missing:
            raise GraphError(f"cannot group unknown tasks: {sorted(missing)}")
        if name in self.tasks and name not in member_set:
            raise GraphError(f"duplicate task name {name!r}")
        for m in member_set:
            if isinstance(self.tasks[m], GroupTask):
                raise GraphError(f"nested grouping of group {m!r} unsupported here")

        inner = TaskGraph(name=name, registry=self.registry)
        for m in sorted(member_set):
            src_task = self.tasks[m]
            inner.add_task(m, src_task.unit_name, **src_task.params)

        internal, boundary_in, boundary_out, outside = [], [], [], []
        for conn in self.connections:
            s_in, d_in = conn.src in member_set, conn.dst in member_set
            if s_in and d_in:
                internal.append(conn)
            elif d_in:
                boundary_in.append(conn)
            elif s_in:
                boundary_out.append(conn)
            else:
                outside.append(conn)
        for conn in internal:
            inner.connect(conn.src, conn.src_node, conn.dst, conn.dst_node)

        input_map = [(c.dst, c.dst_node) for c in boundary_in]
        output_map: list[tuple[str, int]] = []
        out_index: dict[tuple[str, int], int] = {}
        for c in boundary_out:
            key = (c.src, c.src_node)
            if key not in out_index:
                out_index[key] = len(output_map)
                output_map.append(key)

        for m in member_set:
            del self.tasks[m]
        self.connections = outside
        group = self.add_group(name, inner, input_map, output_map, policy)
        for ext_node, c in enumerate(boundary_in):
            self.connect(c.src, c.src_node, name, ext_node)
        for c in boundary_out:
            self.connect(name, out_index[(c.src, c.src_node)], c.dst, c.dst_node)
        return group

    def connect(self, src: str, src_node: int, dst: str, dst_node: int) -> Connection:
        """Wire an output node to an input node, type-checking the join."""
        for tname in (src, dst):
            if tname not in self.tasks:
                raise GraphError(f"unknown task {tname!r} in connection")
        s, d = self.tasks[src], self.tasks[dst]
        if not 0 <= src_node < s.num_outputs:
            raise GraphError(
                f"{src!r} has no output node {src_node} (has {s.num_outputs})"
            )
        if not 0 <= dst_node < d.num_inputs:
            raise GraphError(
                f"{dst!r} has no input node {dst_node} (has {d.num_inputs})"
            )
        for existing in self.connections:
            if existing.dst == dst and existing.dst_node == dst_node:
                raise GraphError(
                    f"input {dst}:{dst_node} already fed by {existing.label()}"
                )
        out_types = s.output_types_at(src_node)
        in_types = d.input_types_at(dst_node)
        if not is_compatible(out_types, in_types):
            raise TypeMismatchError(
                f"cannot connect {src}:{src_node} "
                f"({[t.__name__ for t in out_types]}) to {dst}:{dst_node} "
                f"({[t.__name__ for t in in_types]})"
            )
        conn = Connection(src, src_node, dst, dst_node)
        self.connections.append(conn)
        return conn

    def disconnect(self, conn: Connection) -> None:
        try:
            self.connections.remove(conn)
        except ValueError:
            raise GraphError(f"connection {conn.label()} not in graph") from None

    # -- lookup ------------------------------------------------------------------
    def task(self, name: str) -> Task:
        if name not in self.tasks:
            raise GraphError(f"no task {name!r} in graph {self.name!r}")
        return self.tasks[name]

    def groups(self) -> list[GroupTask]:
        return [t for t in self.tasks.values() if isinstance(t, GroupTask)]

    def in_connections(self, name: str) -> list[Connection]:
        return [c for c in self.connections if c.dst == name]

    def out_connections(self, name: str) -> list[Connection]:
        return [c for c in self.connections if c.src == name]

    def sources(self) -> list[str]:
        """Tasks with no incoming connections."""
        fed = {c.dst for c in self.connections}
        return [n for n in self.tasks if n not in fed]

    def sinks(self) -> list[str]:
        """Tasks with no outgoing connections."""
        feeding = {c.src for c in self.connections}
        return [n for n in self.tasks if n not in feeding]

    # -- validation & ordering -----------------------------------------------------
    def _digraph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(self.tasks)
        for c in self.connections:
            g.add_edge(c.src, c.dst)
        return g

    def validate(self) -> None:
        """Raise :class:`GraphError` on cycles or under-fed input nodes."""
        g = self._digraph()
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise GraphError(f"task graph contains a cycle: {cycle}")
        for name, task in self.tasks.items():
            fed = {c.dst_node for c in self.in_connections(name)}
            missing = set(range(task.num_inputs)) - fed
            # Pure sources have no inputs; partially fed units are an error.
            if fed and missing:
                raise GraphError(
                    f"task {name!r} has unconnected input nodes {sorted(missing)}"
                )
        for t in self.groups():
            t.graph.validate()

    def topological_order(self) -> list[str]:
        """Deterministic topological ordering of task names."""
        g = self._digraph()
        if not nx.is_directed_acyclic_graph(g):
            raise GraphError("task graph contains a cycle")
        return list(nx.lexicographical_topological_sort(g))

    # -- flattening ------------------------------------------------------------------
    def flattened(self) -> "TaskGraph":
        """Expand every group into its member tasks (recursively).

        Inner task names become ``group/inner``.  The result contains no
        :class:`GroupTask` and is what the local engine executes.
        """
        flat = TaskGraph(name=self.name, registry=self.registry)
        for name, task in self.tasks.items():
            if isinstance(task, GroupTask):
                inner_flat = task.graph.flattened()
                for iname, itask in inner_flat.tasks.items():
                    flat.tasks[f"{name}/{iname}"] = _clone_task(itask, f"{name}/{iname}")
                for c in inner_flat.connections:
                    flat.connections.append(
                        Connection(f"{name}/{c.src}", c.src_node, f"{name}/{c.dst}", c.dst_node)
                    )
            else:
                flat.tasks[name] = _clone_task(task, name)

        def walk_in(graph: "TaskGraph", tname: str, node: int, prefix: str) -> tuple[str, int]:
            task = graph.tasks[tname]
            if isinstance(task, GroupTask):
                inner_name, inner_node = task.input_map[node]
                return walk_in(task.graph, inner_name, inner_node, f"{prefix}{tname}/")
            return f"{prefix}{tname}", node

        def walk_out(graph: "TaskGraph", tname: str, node: int, prefix: str) -> tuple[str, int]:
            task = graph.tasks[tname]
            if isinstance(task, GroupTask):
                inner_name, inner_node = task.output_map[node]
                return walk_out(task.graph, inner_name, inner_node, f"{prefix}{tname}/")
            return f"{prefix}{tname}", node

        for conn in self.connections:
            src, src_node = walk_out(self, conn.src, conn.src_node, "")
            dst, dst_node = walk_in(self, conn.dst, conn.dst_node, "")
            flat.connections.append(Connection(src, src_node, dst, dst_node))
        return flat

    def copy(self) -> "TaskGraph":
        """Structural copy sharing unit classes but not mutable state."""
        dup = TaskGraph(name=self.name, registry=self.registry)
        for name, task in self.tasks.items():
            if isinstance(task, GroupTask):
                dup.tasks[name] = GroupTask(
                    name,
                    task.graph.copy(),
                    task.input_map,
                    task.output_map,
                    task.policy,
                )
            else:
                dup.tasks[name] = _clone_task(task, name)
        for c in self.connections:
            dup.connections.append(Connection(c.src, c.src_node, c.dst, c.dst_node))
        return dup

    def __len__(self) -> int:
        return len(self.tasks)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TaskGraph({self.name!r}, tasks={len(self.tasks)}, "
            f"connections={len(self.connections)})"
        )
