"""Triana-style typed data containers.

The paper: Triana "provides a set of built-in data types that can be used
to connect different Peer services – and undertake type checking on their
connectivity".  This module defines that type system: a small hierarchy of
containers for numeric, signal, spectral, image, tabular and textual data,
plus the compatibility relation used when wiring task graphs.

All heavy payloads are numpy arrays; containers are intentionally thin and
carry the metadata units need (sampling rates, frequency resolution...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence, Type

import numpy as np

__all__ = [
    "TrianaType",
    "AnyType",
    "Const",
    "VectorType",
    "SampleSet",
    "ComplexSpectrum",
    "Spectrum",
    "TimeFrequency",
    "ImageData",
    "TableData",
    "TextMessage",
    "GraphData",
    "ParticleSnapshot",
    "is_compatible",
    "type_by_name",
    "TYPE_REGISTRY",
]

TYPE_REGISTRY: dict[str, Type["TrianaType"]] = {}


class TrianaType:
    """Base class of every payload that can travel along a connection."""

    def __init_subclass__(cls, **kw):
        super().__init_subclass__(**kw)
        TYPE_REGISTRY[cls.__name__] = cls

    @classmethod
    def type_name(cls) -> str:
        """Stable name used in XML task graphs and advertisements."""
        return cls.__name__

    def payload_nbytes(self) -> int:
        """Approximate wire size — used by the network cost model."""
        total = 0
        for value in vars(self).values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
            elif isinstance(value, (bytes, str)):
                total += len(value)
            elif isinstance(value, (int, float, complex)):
                total += 8
        return max(total, 8)


class AnyType(TrianaType):
    """Wildcard: compatible with every other type.

    Units that merely forward or inspect data (e.g. probes, graphers)
    declare ``AnyType`` inputs.
    """


@dataclass
class Const(TrianaType):
    """A single scalar constant."""

    value: float = 0.0

    def __post_init__(self):
        self.value = float(self.value)


@dataclass
class VectorType(TrianaType):
    """A bare 1-D numeric vector with no signal semantics."""

    data: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def __post_init__(self):
        self.data = np.asarray(self.data, dtype=float)
        if self.data.ndim != 1:
            raise ValueError(f"VectorType requires 1-D data, got shape {self.data.shape}")

    def __len__(self) -> int:
        return len(self.data)


@dataclass
class SampleSet(TrianaType):
    """A uniformly sampled time series (the workhorse signal type).

    Attributes
    ----------
    data:
        Real samples.
    sampling_rate:
        Samples per second.
    t0:
        Timestamp of the first sample, seconds.
    """

    data: np.ndarray = field(default_factory=lambda: np.zeros(0))
    sampling_rate: float = 1.0
    t0: float = 0.0

    def __post_init__(self):
        self.data = np.asarray(self.data, dtype=float)
        if self.data.ndim != 1:
            raise ValueError(f"SampleSet requires 1-D data, got shape {self.data.shape}")
        if self.sampling_rate <= 0:
            raise ValueError("sampling_rate must be positive")

    def __len__(self) -> int:
        return len(self.data)

    @property
    def duration(self) -> float:
        """Length of the series in seconds."""
        return len(self.data) / self.sampling_rate

    def times(self) -> np.ndarray:
        """Sample timestamps."""
        return self.t0 + np.arange(len(self.data)) / self.sampling_rate


@dataclass
class ComplexSpectrum(TrianaType):
    """Complex FFT output; ``df`` is the frequency resolution in Hz."""

    data: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=complex))
    df: float = 1.0

    def __post_init__(self):
        self.data = np.asarray(self.data, dtype=complex)
        if self.data.ndim != 1:
            raise ValueError("ComplexSpectrum requires 1-D data")
        if self.df <= 0:
            raise ValueError("df must be positive")

    def __len__(self) -> int:
        return len(self.data)

    def frequencies(self) -> np.ndarray:
        return np.arange(len(self.data)) * self.df


@dataclass
class Spectrum(TrianaType):
    """A real (power or amplitude) spectrum."""

    data: np.ndarray = field(default_factory=lambda: np.zeros(0))
    df: float = 1.0

    def __post_init__(self):
        self.data = np.asarray(self.data, dtype=float)
        if self.data.ndim != 1:
            raise ValueError("Spectrum requires 1-D data")
        if self.df <= 0:
            raise ValueError("df must be positive")

    def __len__(self) -> int:
        return len(self.data)

    def frequencies(self) -> np.ndarray:
        return np.arange(len(self.data)) * self.df


@dataclass
class TimeFrequency(TrianaType):
    """A 2-D time-frequency map (rows = time, cols = frequency)."""

    data: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))
    dt: float = 1.0
    df: float = 1.0

    def __post_init__(self):
        self.data = np.asarray(self.data, dtype=float)
        if self.data.ndim != 2:
            raise ValueError("TimeFrequency requires 2-D data")


@dataclass
class ImageData(TrianaType):
    """A 2-D greyscale image."""

    pixels: np.ndarray = field(default_factory=lambda: np.zeros((0, 0)))

    def __post_init__(self):
        self.pixels = np.asarray(self.pixels, dtype=float)
        if self.pixels.ndim != 2:
            raise ValueError(f"ImageData requires 2-D pixels, got {self.pixels.shape}")

    @property
    def shape(self) -> tuple[int, int]:
        return self.pixels.shape  # type: ignore[return-value]


class TableData(TrianaType):
    """A typed relational table (columns + rows) for the database scenario."""

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence[Any]] = ()):
        if not columns:
            raise ValueError("TableData requires at least one column")
        self.columns = list(columns)
        if len(set(self.columns)) != len(self.columns):
            raise ValueError(f"duplicate column names in {self.columns}")
        self.rows: list[tuple] = []
        for row in rows:
            self.append(row)

    def append(self, row: Sequence[Any]) -> None:
        row = tuple(row)
        if len(row) != len(self.columns):
            raise ValueError(
                f"row width {len(row)} != column count {len(self.columns)}"
            )
        self.rows.append(row)

    def column(self, name: str) -> list[Any]:
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r}; have {self.columns}") from None
        return [row[idx] for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TableData)
            and self.columns == other.columns
            and self.rows == other.rows
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TableData({self.columns}, {len(self.rows)} rows)"

    def payload_nbytes(self) -> int:
        return 8 * len(self.columns) * max(len(self.rows), 1)


@dataclass
class TextMessage(TrianaType):
    """Free-form text travelling through a pipeline."""

    text: str = ""


@dataclass
class GraphData(TrianaType):
    """(x, y) series ready for display — what a Grapher consumes."""

    x: np.ndarray = field(default_factory=lambda: np.zeros(0))
    y: np.ndarray = field(default_factory=lambda: np.zeros(0))
    label: str = ""

    def __post_init__(self):
        self.x = np.asarray(self.x, dtype=float)
        self.y = np.asarray(self.y, dtype=float)
        if self.x.shape != self.y.shape:
            raise ValueError(f"x/y shape mismatch: {self.x.shape} vs {self.y.shape}")


@dataclass
class ParticleSnapshot(TrianaType):
    """One time-slice of an N-body/SPH simulation (galaxy scenario).

    ``positions`` is (N, 3); ``masses`` and ``smoothing`` are (N,).
    """

    positions: np.ndarray = field(default_factory=lambda: np.zeros((0, 3)))
    masses: np.ndarray = field(default_factory=lambda: np.zeros(0))
    smoothing: np.ndarray = field(default_factory=lambda: np.zeros(0))
    time: float = 0.0

    def __post_init__(self):
        self.positions = np.asarray(self.positions, dtype=float)
        self.masses = np.asarray(self.masses, dtype=float)
        self.smoothing = np.asarray(self.smoothing, dtype=float)
        if self.positions.ndim != 2 or self.positions.shape[1] != 3:
            raise ValueError("positions must be (N, 3)")
        n = len(self.positions)
        if len(self.masses) != n or len(self.smoothing) != n:
            raise ValueError("masses/smoothing must match particle count")

    def __len__(self) -> int:
        return len(self.positions)


def is_compatible(
    out_types: Sequence[Type[TrianaType]], in_types: Sequence[Type[TrianaType]]
) -> bool:
    """Decide whether an output node may feed an input node.

    Compatible iff either side accepts anything (:class:`AnyType`) or some
    produced type is a subclass of some accepted type.
    """
    outs = list(out_types) or [AnyType]
    ins = list(in_types) or [AnyType]
    if AnyType in outs or AnyType in ins:
        return True
    return any(issubclass(o, i) for o in outs for i in ins)


def type_by_name(name: str) -> Type[TrianaType]:
    """Resolve a type name from XML back to its class."""
    # Accept Java-style dotted names from historical task graphs
    # (e.g. "triana.types.SampleSet" → "SampleSet").
    short = name.rsplit(".", 1)[-1]
    if short not in TYPE_REGISTRY:
        raise KeyError(f"unknown Triana type {name!r}")
    return TYPE_REGISTRY[short]
