"""The Unit abstraction — Triana's "tool"/"program" building block.

A unit declares typed input and output nodes, named parameters, and a
``process`` method that maps one set of input payloads to output payloads.
Units may be stateful across iterations (e.g. ``AccumStat``) and expose
``checkpoint``/``restore`` so the controller can migrate them between
peers, per the paper's Case 2 ("a check-pointing mechanism may also be
employed to migrate computation if necessary").

Units also carry the metadata the Consumer Grid needs:

* ``VERSION`` and ``CODE_SIZE`` — the mobility layer ships units by name
  and version and models transfer cost from the code size;
* ``estimated_flops`` — the cost model used when execution is simulated
  rather than performed (DESIGN.md §5, "two execution planes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Sequence, Type

from .errors import ParameterError, UnitError
from .types import AnyType, TrianaType

__all__ = ["ParamSpec", "Unit"]


@dataclass(frozen=True)
class ParamSpec:
    """Declaration of one unit parameter.

    Parameters
    ----------
    name:
        Parameter name, unique within the unit.
    default:
        Value used when not supplied.
    doc:
        One-line description (surfaced in unit advertisements).
    validator:
        Optional callable raising ``ValueError`` on bad values.
    """

    name: str
    default: Any
    doc: str = ""
    validator: Optional[Callable[[Any], None]] = None

    def check(self, value: Any) -> None:
        if self.validator is not None:
            try:
                self.validator(value)
            except ValueError as exc:
                raise ParameterError(f"parameter {self.name!r}: {exc}") from exc


def _normalise_types(
    spec: Sequence, count: int, what: str
) -> list[list[Type[TrianaType]]]:
    """Expand a type declaration into one type-list per node."""
    if count == 0:
        return []
    if not spec:
        return [[AnyType] for _ in range(count)]
    first = spec[0]
    if isinstance(first, type):
        # Flat list of alternatives shared by every node.
        return [list(spec) for _ in range(count)]
    per_node = [list(s) for s in spec]
    if len(per_node) != count:
        raise UnitError(
            f"{what} declares {len(per_node)} node type lists but {count} nodes"
        )
    return per_node


class Unit:
    """Base class for all workflow units.

    Subclasses declare, as class attributes:

    * ``NUM_INPUTS`` / ``NUM_OUTPUTS`` — node counts;
    * ``INPUT_TYPES`` / ``OUTPUT_TYPES`` — either a flat list of accepted
      types (applied to every node) or a list of per-node lists;
    * ``PARAMETERS`` — a tuple of :class:`ParamSpec`;
    * ``VERSION`` / ``CODE_SIZE`` — mobility metadata;

    and implement :meth:`process`.
    """

    NUM_INPUTS: int = 1
    NUM_OUTPUTS: int = 1
    INPUT_TYPES: Sequence = ()
    OUTPUT_TYPES: Sequence = ()
    PARAMETERS: tuple[ParamSpec, ...] = ()
    VERSION: str = "1.0"
    CODE_SIZE: int = 20_000  # modelled bytes of executable code
    #: Host permissions this unit needs (checked by the sandbox), e.g.
    #: ``("fs.read",)`` for a file-reading unit.  Pure-compute units need none.
    REQUIRED_PERMISSIONS: tuple[str, ...] = ()
    #: Modelled working-set bytes; hosts cap deployments against their
    #: advertised RAM ("how much RAM the applications could use", §3.7).
    RAM_ESTIMATE: int = 8 * 1024 * 1024

    def __init__(self, **params: Any):
        self._params: dict[str, Any] = {}
        specs = self.param_specs()
        for spec in specs.values():
            self._params[spec.name] = spec.default
        for name, value in params.items():
            self.set_param(name, value)
        self.reset()

    # -- class-level introspection -------------------------------------------
    @classmethod
    def unit_name(cls) -> str:
        """Registry name of the unit (class name by default)."""
        return cls.__name__

    @classmethod
    def param_specs(cls) -> dict[str, ParamSpec]:
        return {spec.name: spec for spec in cls.PARAMETERS}

    @classmethod
    def input_types_at(cls, node: int) -> list[Type[TrianaType]]:
        """Accepted types of input node ``node``."""
        per_node = _normalise_types(cls.INPUT_TYPES, cls.NUM_INPUTS, cls.__name__)
        if not 0 <= node < cls.NUM_INPUTS:
            raise UnitError(f"{cls.__name__} has no input node {node}")
        return per_node[node]

    @classmethod
    def output_types_at(cls, node: int) -> list[Type[TrianaType]]:
        """Produced types of output node ``node``."""
        per_node = _normalise_types(cls.OUTPUT_TYPES, cls.NUM_OUTPUTS, cls.__name__)
        if not 0 <= node < cls.NUM_OUTPUTS:
            raise UnitError(f"{cls.__name__} has no output node {node}")
        return per_node[node]

    # -- parameters ------------------------------------------------------------
    def set_param(self, name: str, value: Any) -> None:
        specs = self.param_specs()
        if name not in specs:
            raise ParameterError(
                f"{self.unit_name()} has no parameter {name!r}; "
                f"valid: {sorted(specs)}"
            )
        specs[name].check(value)
        self._params[name] = value

    def get_param(self, name: str) -> Any:
        if name not in self._params:
            raise ParameterError(f"{self.unit_name()} has no parameter {name!r}")
        return self._params[name]

    @property
    def params(self) -> dict[str, Any]:
        """Copy of the current parameter values."""
        return dict(self._params)

    def non_default_params(self) -> dict[str, Any]:
        """Parameters that differ from their declared defaults."""
        specs = self.param_specs()
        return {
            k: v for k, v in self._params.items() if v != specs[k].default
        }

    # -- lifecycle --------------------------------------------------------------
    def reset(self) -> None:
        """Clear any per-run state.  Stateful subclasses override."""

    def process(self, inputs: Sequence[Any]) -> list[Any]:
        """Consume one payload per input node, return one per output node.

        Must be overridden; stateless units should be pure functions of
        ``inputs`` and parameters.
        """
        raise NotImplementedError(f"{self.unit_name()}.process")

    # -- checkpoint / migration ---------------------------------------------------
    def checkpoint(self) -> dict[str, Any]:
        """Serialisable snapshot of mutable state (default: stateless)."""
        return {}

    def restore(self, state: dict[str, Any]) -> None:
        """Restore from :meth:`checkpoint` output."""
        if state:
            raise UnitError(
                f"{self.unit_name()} is stateless but was given state {sorted(state)}"
            )

    # -- cost model ----------------------------------------------------------------
    def estimated_flops(self, input_nbytes: int) -> float:
        """Modelled floating-point cost of one ``process`` call.

        The default assumes a linear pass over the input.  Units with
        super-linear kernels (FFT, matched filter, SPH scatter) override.
        """
        return max(float(input_nbytes) / 8.0, 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        extras = ", ".join(f"{k}={v!r}" for k, v in self.non_default_params().items())
        return f"{self.unit_name()}({extras})"
