"""WSFL-flavoured task-graph serialisation.

§3.1: "A Triana network can be constructed using the GUI or directly by
writing an XML taskgraph (in Web Services Flow Language (WSFL), Petri
net or Business Process Enactment Language for Web Services (BPEL4WS)
formats)."  This module provides the WSFL-style encoding as a second,
fully round-trippable wire format:

* each task is an ``<activity>`` whose ``operation`` names the unit;
* connections are ``<dataLink source=... target=...>`` elements;
* groups become composite activities holding a nested ``<flowModel>``
  plus ``<export>`` node mappings and their distribution policy.

``graph_to_wsfl`` / ``graph_from_wsfl`` are interchangeable with the
native format in :mod:`repro.core.xml_io` — the same graph, two syntaxes.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from typing import Optional

from .errors import SerializationError
from .registry import UnitRegistry, global_registry
from .taskgraph import GroupTask, Task, TaskGraph

__all__ = ["graph_to_wsfl", "graph_from_wsfl"]


def _activity(task: Task) -> ET.Element:
    el = ET.Element(
        "activity", name=task.name, operation=task.unit_name,
        version=task.descriptor.version,
    )
    for pname, pvalue in sorted(task.params.items()):
        try:
            encoded = json.dumps(pvalue)
        except TypeError as exc:
            raise SerializationError(
                f"parameter {pname!r} of {task.name!r} is not serialisable"
            ) from exc
        ET.SubElement(el, "parameter", name=pname, value=encoded)
    for node in range(task.num_inputs):
        ET.SubElement(el, "input", message=f"{task.name}.in{node}")
    for node in range(task.num_outputs):
        ET.SubElement(el, "output", message=f"{task.name}.out{node}")
    return el


def _composite(group: GroupTask) -> ET.Element:
    el = ET.Element("activity", name=group.name, kind="composite",
                    policy=group.policy)
    el.append(_flow_model(group.graph))
    for idx, (tname, tnode) in enumerate(group.input_map):
        ET.SubElement(
            el, "export", direction="in", external=str(idx),
            internal=f"{tname}:{tnode}",
        )
    for idx, (tname, tnode) in enumerate(group.output_map):
        ET.SubElement(
            el, "export", direction="out", external=str(idx),
            internal=f"{tname}:{tnode}",
        )
    return el


def _flow_model(graph: TaskGraph) -> ET.Element:
    root = ET.Element("flowModel", name=graph.name)
    for name in sorted(graph.tasks):
        task = graph.tasks[name]
        root.append(_composite(task) if isinstance(task, GroupTask) else _activity(task))
    for conn in graph.connections:
        ET.SubElement(
            root, "dataLink",
            source=f"{conn.src}:{conn.src_node}",
            target=f"{conn.dst}:{conn.dst_node}",
        )
    return root


def graph_to_wsfl(graph: TaskGraph) -> str:
    """Serialise a task graph to the WSFL-style wire format."""
    el = _flow_model(graph)
    ET.indent(el)
    return ET.tostring(el, encoding="unicode")


def _split(ref: str) -> tuple[str, int]:
    try:
        name, node = ref.rsplit(":", 1)
        return name, int(node)
    except ValueError as exc:
        raise SerializationError(f"bad node reference {ref!r}") from exc


def _parse_flow(el: ET.Element, registry: UnitRegistry) -> TaskGraph:
    graph = TaskGraph(name=el.get("name", "flow"), registry=registry)
    for child in el:
        if child.tag == "activity":
            name = child.get("name")
            if not name:
                raise SerializationError("<activity> requires a name")
            if child.get("kind") == "composite":
                inner_el = child.find("flowModel")
                if inner_el is None:
                    raise SerializationError(
                        f"composite activity {name!r} lacks a <flowModel>"
                    )
                inner = _parse_flow(inner_el, registry)
                in_map: list[tuple[int, str, int]] = []
                out_map: list[tuple[int, str, int]] = []
                for exp in child.findall("export"):
                    tname, tnode = _split(exp.get("internal", ""))
                    entry = (int(exp.get("external", "0")), tname, tnode)
                    (in_map if exp.get("direction") == "in" else out_map).append(entry)
                in_map.sort()
                out_map.sort()
                graph.add_group(
                    name,
                    inner,
                    [(t, n) for _i, t, n in in_map],
                    [(t, n) for _i, t, n in out_map],
                    policy=child.get("policy", "none"),
                )
            else:
                operation = child.get("operation")
                if not operation:
                    raise SerializationError(
                        f"activity {name!r} requires an operation"
                    )
                params = {}
                for p in child.findall("parameter"):
                    try:
                        params[p.get("name")] = json.loads(p.get("value", "null"))
                    except json.JSONDecodeError as exc:
                        raise SerializationError(
                            f"bad parameter encoding in {name!r}"
                        ) from exc
                task = graph.add_task(name, operation, **params)
                declared = child.get("version")
                if declared and declared != task.descriptor.version:
                    raise SerializationError(
                        f"activity {name!r} pins {operation}@{declared}, registry "
                        f"has @{task.descriptor.version}"
                    )
        elif child.tag == "dataLink":
            continue
        else:
            raise SerializationError(f"unexpected element <{child.tag}>")
    for link in el.findall("dataLink"):
        src, src_node = _split(link.get("source", ""))
        dst, dst_node = _split(link.get("target", ""))
        graph.connect(src, src_node, dst, dst_node)
    return graph


def graph_from_wsfl(text: str, registry: Optional[UnitRegistry] = None) -> TaskGraph:
    """Parse the WSFL-style wire format back into a task graph."""
    try:
        el = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SerializationError(f"malformed WSFL: {exc}") from exc
    if el.tag != "flowModel":
        raise SerializationError(f"expected <flowModel>, got <{el.tag}>")
    return _parse_flow(el, registry if registry is not None else global_registry())
