"""Introspection helpers — what a GUI palette / graph view consumes.

The reference Triana GUI shows "several hundred units" on a palette with
their parameters and node types, and draws the wired network.  These
helpers expose the same information programmatically:

* :func:`describe_unit` — palette entry: parameters (with defaults and
  docs), node types, permissions, mobility metadata;
* :func:`graph_to_dot` — Graphviz rendering of a task graph (groups as
  clusters), for documentation and debugging.
"""

from __future__ import annotations

from typing import Any, Optional

from .registry import UnitRegistry, global_registry
from .taskgraph import GroupTask, TaskGraph

__all__ = ["describe_unit", "graph_to_dot"]


def describe_unit(name: str, registry: Optional[UnitRegistry] = None) -> dict[str, Any]:
    """A palette entry for one registered unit."""
    reg = registry if registry is not None else global_registry()
    desc = reg.lookup(name)
    cls = desc.cls
    return {
        "name": desc.name,
        "version": desc.version,
        "category": desc.category,
        "doc": (cls.__doc__ or "").strip().splitlines()[0] if cls.__doc__ else "",
        "code_size": desc.code_size,
        "permissions": list(cls.REQUIRED_PERMISSIONS),
        "inputs": [
            [t.__name__ for t in cls.input_types_at(k)]
            for k in range(cls.NUM_INPUTS)
        ],
        "outputs": [
            [t.__name__ for t in cls.output_types_at(k)]
            for k in range(cls.NUM_OUTPUTS)
        ],
        "parameters": [
            {"name": p.name, "default": p.default, "doc": p.doc}
            for p in cls.PARAMETERS
        ],
    }


def _dot_escape(text: str) -> str:
    return text.replace('"', '\\"')


def graph_to_dot(graph: TaskGraph) -> str:
    """Render a task graph as Graphviz ``dot`` source.

    Groups become labelled clusters; edges carry the node indices when
    they are not the trivial 0→0.
    """
    lines = [f'digraph "{_dot_escape(graph.name)}" {{', "  rankdir=LR;"]

    def emit_tasks(g: TaskGraph, indent: str, prefix: str) -> None:
        for name in sorted(g.tasks):
            task = g.tasks[name]
            qualified = f"{prefix}{name}"
            if isinstance(task, GroupTask):
                lines.append(f'{indent}subgraph "cluster_{_dot_escape(qualified)}" {{')
                lines.append(
                    f'{indent}  label="{_dot_escape(name)} [{task.policy}]";'
                )
                emit_tasks(task.graph, indent + "  ", f"{qualified}/")
                for conn in task.graph.connections:
                    _emit_edge(indent + "  ", f"{qualified}/", conn)
                lines.append(f"{indent}}}")
            else:
                lines.append(
                    f'{indent}"{_dot_escape(qualified)}" '
                    f'[label="{_dot_escape(name)}\\n({task.unit_name})"];'
                )

    def _emit_edge(indent: str, prefix: str, conn) -> None:
        label = ""
        if conn.src_node != 0 or conn.dst_node != 0:
            label = f' [label="{conn.src_node}:{conn.dst_node}"]'
        lines.append(
            f'{indent}"{_dot_escape(prefix + conn.src)}" -> '
            f'"{_dot_escape(prefix + conn.dst)}"{label};'
        )

    emit_tasks(graph, "  ", "")
    for conn in graph.connections:
        src_task = graph.tasks[conn.src]
        dst_task = graph.tasks[conn.dst]
        # Route edges touching a group to its mapped inner task so the
        # arrow lands inside the cluster.
        if isinstance(src_task, GroupTask):
            inner, _node = src_task.output_map[conn.src_node]
            src = f"{conn.src}/{inner}"
        else:
            src = conn.src
        if isinstance(dst_task, GroupTask):
            inner, _node = dst_task.input_map[conn.dst_node]
            dst = f"{conn.dst}/{inner}"
        else:
            dst = conn.dst
        label = ""
        if conn.src_node != 0 or conn.dst_node != 0:
            label = f' [label="{conn.src_node}:{conn.dst_node}"]'
        lines.append(f'  "{_dot_escape(src)}" -> "{_dot_escape(dst)}"{label};')
    lines.append("}")
    return "\n".join(lines)
