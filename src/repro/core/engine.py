"""The local data-flow execution engine.

"In the case where no local resource manager is available, the Triana
server component can itself be used to launch the application" — this is
that component's execution core.  The engine takes a (possibly grouped)
task graph, flattens it, instantiates one unit per task, and fires units
in topological order once per iteration, moving payloads along
connections.

It also provides:

* **external inputs** — a deployed group sub-graph has boundary input
  nodes fed from the network rather than from local connections; the
  engine accepts per-iteration values for them (:meth:`LocalEngine.step`);
* **probes** — observers attached to any output node (how Fig. 2's
  grapher output is captured programmatically);
* **checkpoint/restore** of all stateful units (migration support);
* **cost accounting** — modelled flops and bytes per task, reused by the
  simulated execution plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from .errors import GraphError, UnitError
from .taskgraph import TaskGraph
from .units import Unit

__all__ = ["Probe", "RunStats", "LocalEngine", "run_graph"]


@dataclass
class Probe:
    """Collects every payload seen on one task output node."""

    task: str
    node: int = 0
    values: list[Any] = field(default_factory=list)

    def __call__(self, value: Any) -> None:
        self.values.append(value)

    @property
    def last(self) -> Any:
        if not self.values:
            raise UnitError(f"probe {self.task}:{self.node} saw no data")
        return self.values[-1]


@dataclass
class RunStats:
    """Accounting for one engine run."""

    iterations: int = 0
    firings: int = 0
    modelled_flops: float = 0.0
    bytes_moved: int = 0
    per_task_flops: dict[str, float] = field(default_factory=dict)


def _payload_bytes(value: Any) -> int:
    return value.payload_nbytes() if hasattr(value, "payload_nbytes") else 8


class LocalEngine:
    """Executes a task graph in-process.

    Parameters
    ----------
    graph:
        The graph to execute; groups are flattened automatically.
    external_inputs:
        ``(task, node)`` pairs (flattened names) that will be fed from
        outside per iteration instead of by a local connection.
    """

    def __init__(
        self,
        graph: TaskGraph,
        external_inputs: Iterable[tuple[str, int]] = (),
    ):
        self.graph = graph.flattened()
        self.external = {(t, int(n)) for t, n in external_inputs}
        self.order = self.graph.topological_order()  # raises on cycles
        self._check_fedness()
        self.units: dict[str, Unit] = {
            name: task.instantiate() for name, task in self.graph.tasks.items()
        }
        self.probes: list[Probe] = []
        self.stats = RunStats()
        self._sink_outputs: dict[str, list[Any]] = {}

    def _check_fedness(self) -> None:
        for t, n in self.external:
            if t not in self.graph.tasks:
                raise GraphError(f"external input names unknown task {t!r}")
            if not 0 <= n < self.graph.task(t).num_inputs:
                raise GraphError(f"external input {t}:{n} out of range")
        for name, task in self.graph.tasks.items():
            fed = {c.dst_node for c in self.graph.in_connections(name)}
            overlap = fed & {n for t, n in self.external if t == name}
            if overlap:
                raise GraphError(
                    f"input {name}:{sorted(overlap)} is both connected and external"
                )
            fed |= {n for t, n in self.external if t == name}
            missing = set(range(task.num_inputs)) - fed
            if fed and missing:
                raise GraphError(
                    f"task {name!r} has unconnected input nodes {sorted(missing)}"
                )

    # -- probes -------------------------------------------------------------
    def attach_probe(self, task: str, node: int = 0) -> Probe:
        """Observe the given output node; returns the collecting probe."""
        if task not in self.graph.tasks:
            # Accept unflattened names like "FFT" only if unambiguous.
            matches = [t for t in self.graph.tasks if t.endswith(f"/{task}") or t == task]
            if len(matches) != 1:
                raise GraphError(
                    f"probe target {task!r} not found in flattened graph "
                    f"(candidates: {matches})"
                )
            task = matches[0]
        t = self.graph.task(task)
        if not 0 <= node < t.num_outputs:
            raise GraphError(f"{task!r} has no output node {node}")
        probe = Probe(task, node)
        self.probes.append(probe)
        return probe

    # -- execution ------------------------------------------------------------
    def run(self, iterations: int = 1) -> dict[str, list[Any]]:
        """Run the graph ``iterations`` times (no external inputs).

        Returns a mapping of sink-task name to the list of payloads its
        *inputs* received on the final iteration — the natural "result" of
        a workflow whose sinks are display/output units.
        """
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        for _ in range(iterations):
            self.step()
        return dict(self._sink_outputs)

    def step(
        self, external: Optional[dict[tuple[str, int], Any]] = None
    ) -> dict[str, list[Any]]:
        """Run one iteration; returns every task's output payload list.

        ``external`` must supply a value for each declared external input.
        """
        external = external or {}
        missing = self.external - set(external)
        if missing:
            raise GraphError(f"missing external inputs: {sorted(missing)}")
        unknown = set(external) - self.external
        if unknown:
            raise GraphError(f"undeclared external inputs supplied: {sorted(unknown)}")

        pending: dict[tuple[str, int], Any] = dict(external)
        outputs_map: dict[str, list[Any]] = {}
        self._sink_outputs = {}
        for name in self.order:
            task = self.graph.task(name)
            unit = self.units[name]
            inputs = []
            for node in range(task.num_inputs):
                key = (name, node)
                if key not in pending:
                    raise GraphError(
                        f"task {name!r} fired before input {node} arrived; "
                        "graph is under-connected"
                    )
                inputs.append(pending.pop(key))
            in_bytes = sum(_payload_bytes(v) for v in inputs)
            outputs = unit.process(inputs)
            if outputs is None:
                outputs = []
            if len(outputs) != task.num_outputs:
                raise UnitError(
                    f"unit {task.unit_name} returned {len(outputs)} outputs, "
                    f"declared {task.num_outputs}"
                )
            outputs_map[name] = list(outputs)
            self.stats.firings += 1
            flops = unit.estimated_flops(in_bytes)
            self.stats.modelled_flops += flops
            self.stats.per_task_flops[name] = (
                self.stats.per_task_flops.get(name, 0.0) + flops
            )
            for probe in self.probes:
                if probe.task == name:
                    probe(outputs[probe.node])
            outgoing = self.graph.out_connections(name)
            for conn in outgoing:
                value = outputs[conn.src_node]
                pending[(conn.dst, conn.dst_node)] = value
                self.stats.bytes_moved += _payload_bytes(value)
            if not outgoing and task.num_inputs:
                self._sink_outputs.setdefault(name, []).extend(inputs)
        self.stats.iterations += 1
        return outputs_map

    # -- migration support -----------------------------------------------------
    def checkpoint(self) -> dict[str, dict[str, Any]]:
        """Snapshot state of every unit (empty dicts for stateless ones)."""
        return {name: unit.checkpoint() for name, unit in self.units.items()}

    def restore(self, state: dict[str, dict[str, Any]]) -> None:
        """Restore unit state saved by :meth:`checkpoint`."""
        unknown = set(state) - set(self.units)
        if unknown:
            raise GraphError(f"checkpoint references unknown tasks {sorted(unknown)}")
        for name, unit_state in state.items():
            self.units[name].restore(unit_state)

    def reset(self) -> None:
        """Reset all units and statistics for a fresh run."""
        for unit in self.units.values():
            unit.reset()
        for probe in self.probes:
            probe.values.clear()
        self.stats = RunStats()


def run_graph(
    graph: TaskGraph,
    iterations: int = 1,
    probes: Optional[list[tuple[str, int]]] = None,
    on_iteration: Optional[Callable[[int], None]] = None,
) -> tuple[dict[str, list[Any]], list[Probe]]:
    """Convenience one-shot runner returning (sink outputs, probes)."""
    engine = LocalEngine(graph)
    attached = [engine.attach_probe(t, n) for t, n in (probes or [])]
    if on_iteration is None:
        outputs = engine.run(iterations)
    else:
        outputs = {}
        for i in range(iterations):
            outputs = engine.run(1)
            on_iteration(i)
    return outputs, attached
