"""The unit toolbox registry.

Triana ships "several hundred units" discoverable by name; task graphs
reference units by registry name, and the mobility layer treats a registry
entry (name + version + code size) as the downloadable module.  This
module provides the registry plus the ``@register_unit`` decorator used by
the built-in toolbox.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Type

from .errors import RegistryError
from .units import Unit

__all__ = ["UnitDescriptor", "UnitRegistry", "register_unit", "global_registry"]


@dataclass(frozen=True)
class UnitDescriptor:
    """Metadata describing one registered unit implementation."""

    name: str
    cls: Type[Unit]
    version: str
    code_size: int
    category: str = "misc"

    @property
    def qualified_name(self) -> str:
        """``name@version`` — the identity the mobility layer ships."""
        return f"{self.name}@{self.version}"


class UnitRegistry:
    """Name → unit-class mapping with category search.

    A registry instance models one *module repository*: the controller's
    registry is authoritative; peers fetch descriptors from it on demand
    (see :mod:`repro.mobility`).
    """

    def __init__(self):
        self._units: dict[str, UnitDescriptor] = {}

    def register(self, cls: Type[Unit], category: str = "misc") -> UnitDescriptor:
        """Register a unit class; duplicate names are an error."""
        if not (isinstance(cls, type) and issubclass(cls, Unit)):
            raise RegistryError(f"{cls!r} is not a Unit subclass")
        name = cls.unit_name()
        if name in self._units:
            raise RegistryError(f"unit {name!r} already registered")
        desc = UnitDescriptor(
            name=name,
            cls=cls,
            version=cls.VERSION,
            code_size=cls.CODE_SIZE,
            category=category,
        )
        self._units[name] = desc
        return desc

    def unregister(self, name: str) -> None:
        if name not in self._units:
            raise RegistryError(f"unit {name!r} not registered")
        del self._units[name]

    def lookup(self, name: str) -> UnitDescriptor:
        """Resolve a unit name (accepts Java-style dotted prefixes)."""
        short = name.rsplit(".", 1)[-1]
        if short not in self._units:
            raise RegistryError(
                f"unknown unit {name!r}; registered: {sorted(self._units)[:10]}..."
            )
        return self._units[short]

    def create(self, name: str, **params) -> Unit:
        """Instantiate a registered unit with parameters."""
        return self.lookup(name).cls(**params)

    def __contains__(self, name: str) -> bool:
        return name.rsplit(".", 1)[-1] in self._units

    def __len__(self) -> int:
        return len(self._units)

    def __iter__(self) -> Iterator[UnitDescriptor]:
        return iter(self._units.values())

    def names(self) -> list[str]:
        return sorted(self._units)

    def search(self, category: str | None = None, text: str = "") -> list[UnitDescriptor]:
        """Find units by category and/or name substring."""
        hits = []
        needle = text.lower()
        for desc in self._units.values():
            if category is not None and desc.category != category:
                continue
            if needle and needle not in desc.name.lower():
                continue
            hits.append(desc)
        return sorted(hits, key=lambda d: d.name)


_GLOBAL = UnitRegistry()


def global_registry() -> UnitRegistry:
    """The process-wide default registry the built-in toolbox populates."""
    return _GLOBAL


def register_unit(category: str = "misc", registry: UnitRegistry | None = None):
    """Class decorator registering a unit in the global (or given) registry."""

    def deco(cls: Type[Unit]) -> Type[Unit]:
        (registry or _GLOBAL).register(cls, category=category)
        return cls

    return deco
