"""XML task-graph serialisation.

"A Triana network can be constructed using the GUI or directly by writing
an XML taskgraph"; peers exchange work as "XML scripts" (Code Segment 1).
This module defines that interchange format and its parser.  The schema
mirrors the paper's example: a ``<taskgraph>`` element containing
``<task>`` elements (unit name, parameters, typed nodes), nested
``<group>`` elements with ``<nodemapping>`` entries and a distribution
policy, and ``<connection>`` elements.

The XML deliberately carries *no code* — only unit names/versions — which
is what makes the paper's "limited overhead ... the graph itself is a text
file" claim hold; benchmarks measure the serialised size directly.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from typing import Optional

from .errors import SerializationError
from .registry import UnitRegistry, global_registry
from .taskgraph import GroupTask, Task, TaskGraph

__all__ = [
    "graph_to_xml",
    "graph_from_xml",
    "graph_to_string",
    "graph_from_string",
    "unit_names_in_xml",
]

_FORMAT_VERSION = "1"


def _encode_value(value) -> str:
    """Encode a parameter value as JSON text (types survive round-trip)."""
    try:
        return json.dumps(value)
    except TypeError as exc:
        raise SerializationError(
            f"parameter value {value!r} is not XML-serialisable"
        ) from exc


def _decode_value(text: str):
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"bad parameter encoding {text!r}") from exc


def _task_element(task: Task) -> ET.Element:
    el = ET.Element("task", name=task.name, unit=task.unit_name)
    el.set("version", task.descriptor.version)
    for pname, pvalue in sorted(task.params.items()):
        ET.SubElement(el, "param", name=pname, value=_encode_value(pvalue))
    for node in range(task.num_inputs):
        types = ",".join(t.__name__ for t in task.input_types_at(node))
        ET.SubElement(el, "inputnode", index=str(node), types=types)
    for node in range(task.num_outputs):
        types = ",".join(t.__name__ for t in task.output_types_at(node))
        ET.SubElement(el, "outputnode", index=str(node), types=types)
    return el


def _group_element(group: GroupTask) -> ET.Element:
    el = ET.Element("group", name=group.name, policy=group.policy)
    inner = _graph_element(group.graph, tag="subgraph")
    el.append(inner)
    for idx, (tname, tnode) in enumerate(group.input_map):
        ET.SubElement(
            el, "nodemapping",
            direction="in", external=str(idx), task=tname, node=str(tnode),
        )
    for idx, (tname, tnode) in enumerate(group.output_map):
        ET.SubElement(
            el, "nodemapping",
            direction="out", external=str(idx), task=tname, node=str(tnode),
        )
    return el


def _graph_element(graph: TaskGraph, tag: str = "taskgraph") -> ET.Element:
    root = ET.Element(tag, name=graph.name, format=_FORMAT_VERSION)
    for name in sorted(graph.tasks):
        task = graph.tasks[name]
        if isinstance(task, GroupTask):
            root.append(_group_element(task))
        else:
            root.append(_task_element(task))
    for conn in graph.connections:
        ET.SubElement(
            root, "connection",
            source=f"{conn.src}:{conn.src_node}",
            dest=f"{conn.dst}:{conn.dst_node}",
        )
    return root


def graph_to_xml(graph: TaskGraph) -> ET.Element:
    """Serialise a task graph to an XML element tree."""
    return _graph_element(graph)


def graph_to_string(graph: TaskGraph) -> str:
    """Serialise a task graph to an XML string (the wire format)."""
    el = graph_to_xml(graph)
    ET.indent(el)
    return ET.tostring(el, encoding="unicode")


def _parse_endpoint(text: str) -> tuple[str, int]:
    try:
        name, node = text.rsplit(":", 1)
        return name, int(node)
    except ValueError as exc:
        raise SerializationError(f"bad connection endpoint {text!r}") from exc


def _parse_graph(
    el: ET.Element, registry: UnitRegistry
) -> TaskGraph:
    graph = TaskGraph(name=el.get("name", "taskgraph"), registry=registry)
    for child in el:
        if child.tag == "task":
            name = child.get("name")
            unit = child.get("unit")
            if not name or not unit:
                raise SerializationError("<task> requires name and unit attributes")
            params = {
                p.get("name"): _decode_value(p.get("value", "null"))
                for p in child.findall("param")
            }
            task = graph.add_task(name, unit, **params)
            declared = child.get("version")
            if declared and declared != task.descriptor.version:
                raise SerializationError(
                    f"task {name!r} requires unit {unit}@{declared} but the "
                    f"registry provides @{task.descriptor.version}"
                )
        elif child.tag == "group":
            name = child.get("name")
            policy = child.get("policy", "none")
            sub_el = child.find("subgraph")
            if name is None or sub_el is None:
                raise SerializationError("<group> requires a name and a <subgraph>")
            sub = _parse_graph(sub_el, registry)
            in_map: list[tuple[int, str, int]] = []
            out_map: list[tuple[int, str, int]] = []
            for m in child.findall("nodemapping"):
                entry = (int(m.get("external")), m.get("task"), int(m.get("node")))
                (in_map if m.get("direction") == "in" else out_map).append(entry)
            in_map.sort()
            out_map.sort()
            graph.add_group(
                name,
                sub,
                [(t, n) for _i, t, n in in_map],
                [(t, n) for _i, t, n in out_map],
                policy=policy,
            )
        elif child.tag == "connection":
            continue  # second pass below
        else:
            raise SerializationError(f"unexpected element <{child.tag}>")
    for child in el.findall("connection"):
        src, src_node = _parse_endpoint(child.get("source", ""))
        dst, dst_node = _parse_endpoint(child.get("dest", ""))
        graph.connect(src, src_node, dst, dst_node)
    return graph


def graph_from_xml(
    el: ET.Element, registry: Optional[UnitRegistry] = None
) -> TaskGraph:
    """Reconstruct a task graph from an XML element tree.

    Units are resolved against ``registry``; unit-version mismatches raise
    :class:`SerializationError` (the consistency guarantee the paper's
    on-demand download model provides).
    """
    if el.tag not in ("taskgraph", "subgraph"):
        raise SerializationError(f"expected <taskgraph>, got <{el.tag}>")
    return _parse_graph(el, registry if registry is not None else global_registry())


def graph_from_string(
    text: str, registry: Optional[UnitRegistry] = None
) -> TaskGraph:
    """Parse the XML wire format back into a task graph."""
    try:
        el = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SerializationError(f"malformed task-graph XML: {exc}") from exc
    return graph_from_xml(el, registry)


def unit_names_in_xml(text: str) -> set[str]:
    """Unit names a task-graph XML references, without resolving them.

    This is what a receiving peer scans *before* it has any code: the set
    of modules to request from the repository ("the peer can request
    executable code for modules that are present within the connectivity
    graph").
    """
    try:
        el = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SerializationError(f"malformed task-graph XML: {exc}") from exc
    names: set[str] = set()
    for task_el in el.iter("task"):
        unit = task_el.get("unit")
        if unit:
            names.add(unit)
    return names
