"""Petri-net task-graph serialisation — the third format of §3.1.

"A Triana network can be constructed ... by writing an XML taskgraph (in
Web Services Flow Language (WSFL), **Petri net** or Business Process
Enactment Language for Web Services (BPEL4WS) formats)."

Mapping (classic workflow-net encoding):

* every task is a **transition** (unit name + parameters attached);
* every connection is a **place** with one input arc from the producing
  transition and one output arc to the consuming transition;
* group composites carry a nested ``<net>`` plus port mappings.

The encoding is information-preserving, so ``graph_from_petrinet``
reconstructs the exact task graph; a structural helper also exposes the
net (places/transitions/arcs) for analysis.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Optional

from .errors import SerializationError
from .registry import UnitRegistry, global_registry
from .taskgraph import GroupTask, TaskGraph

__all__ = ["graph_to_petrinet", "graph_from_petrinet", "petri_structure", "PetriNet"]


@dataclass(frozen=True)
class PetriNet:
    """Structural view: transition names, place names, and arcs."""

    transitions: tuple[str, ...]
    places: tuple[str, ...]
    arcs: tuple[tuple[str, str], ...]  # (source, target), mixed kinds

    def preset(self, node: str) -> set[str]:
        return {s for s, t in self.arcs if t == node}

    def postset(self, node: str) -> set[str]:
        return {t for s, t in self.arcs if s == node}


def _place_name(conn) -> str:
    return f"p[{conn.src}:{conn.src_node}->{conn.dst}:{conn.dst_node}]"


def petri_structure(graph: TaskGraph) -> PetriNet:
    """The (flattened) workflow net underlying a task graph."""
    flat = graph.flattened()
    transitions = tuple(sorted(flat.tasks))
    places = tuple(sorted(_place_name(c) for c in flat.connections))
    arcs = []
    for c in flat.connections:
        p = _place_name(c)
        arcs.append((c.src, p))
        arcs.append((p, c.dst))
    return PetriNet(transitions=transitions, places=places, arcs=tuple(sorted(arcs)))


def _net_element(graph: TaskGraph) -> ET.Element:
    net = ET.Element("net", name=graph.name, type="workflow")
    for name in sorted(graph.tasks):
        task = graph.tasks[name]
        if isinstance(task, GroupTask):
            composite = ET.SubElement(
                net, "transition", id=name, kind="composite", policy=task.policy
            )
            composite.append(_net_element(task.graph))
            for idx, (tname, tnode) in enumerate(task.input_map):
                ET.SubElement(
                    composite, "port", direction="in", external=str(idx),
                    internal=f"{tname}:{tnode}",
                )
            for idx, (tname, tnode) in enumerate(task.output_map):
                ET.SubElement(
                    composite, "port", direction="out", external=str(idx),
                    internal=f"{tname}:{tnode}",
                )
        else:
            tr = ET.SubElement(
                net, "transition", id=name, unit=task.unit_name,
                version=task.descriptor.version,
            )
            for pname, pvalue in sorted(task.params.items()):
                try:
                    encoded = json.dumps(pvalue)
                except TypeError as exc:
                    raise SerializationError(
                        f"parameter {pname!r} of {name!r} is not serialisable"
                    ) from exc
                ET.SubElement(tr, "param", name=pname, value=encoded)
    for conn in graph.connections:
        pid = _place_name(conn)
        ET.SubElement(net, "place", id=pid)
        ET.SubElement(net, "arc", source=conn.src, target=pid,
                      srcnode=str(conn.src_node))
        ET.SubElement(net, "arc", source=pid, target=conn.dst,
                      dstnode=str(conn.dst_node))
    return net


def graph_to_petrinet(graph: TaskGraph) -> str:
    """Serialise a task graph to the Petri-net wire format."""
    el = _net_element(graph)
    ET.indent(el)
    return ET.tostring(el, encoding="unicode")


def _split(ref: str) -> tuple[str, int]:
    name, node = ref.rsplit(":", 1)
    return name, int(node)


def _parse_net(el: ET.Element, registry: UnitRegistry) -> TaskGraph:
    graph = TaskGraph(name=el.get("name", "net"), registry=registry)
    for tr in el.findall("transition"):
        name = tr.get("id")
        if not name:
            raise SerializationError("<transition> requires an id")
        if tr.get("kind") == "composite":
            inner_el = tr.find("net")
            if inner_el is None:
                raise SerializationError(
                    f"composite transition {name!r} lacks a <net>"
                )
            inner = _parse_net(inner_el, registry)
            in_map: list[tuple[int, str, int]] = []
            out_map: list[tuple[int, str, int]] = []
            for port in tr.findall("port"):
                tname, tnode = _split(port.get("internal", ""))
                entry = (int(port.get("external", "0")), tname, tnode)
                (in_map if port.get("direction") == "in" else out_map).append(entry)
            in_map.sort()
            out_map.sort()
            graph.add_group(
                name, inner,
                [(t, n) for _i, t, n in in_map],
                [(t, n) for _i, t, n in out_map],
                policy=tr.get("policy", "none"),
            )
        else:
            unit = tr.get("unit")
            if not unit:
                raise SerializationError(f"transition {name!r} requires a unit")
            params = {}
            for p in tr.findall("param"):
                try:
                    params[p.get("name")] = json.loads(p.get("value", "null"))
                except json.JSONDecodeError as exc:
                    raise SerializationError(
                        f"bad parameter encoding in {name!r}"
                    ) from exc
            graph.add_task(name, unit, **params)
    # Re-assemble connections: place id → its two arcs.
    into_place: dict[str, tuple[str, int]] = {}
    from_place: dict[str, tuple[str, int]] = {}
    for arc in el.findall("arc"):
        source, target = arc.get("source", ""), arc.get("target", "")
        if source in graph.tasks:
            into_place[target] = (source, int(arc.get("srcnode", "0")))
        else:
            from_place[source] = (target, int(arc.get("dstnode", "0")))
    for place in el.findall("place"):
        pid = place.get("id", "")
        if pid not in into_place or pid not in from_place:
            raise SerializationError(f"place {pid!r} is not 1-in/1-out")
        (src, src_node), (dst, dst_node) = into_place[pid], from_place[pid]
        graph.connect(src, src_node, dst, dst_node)
    return graph


def graph_from_petrinet(text: str, registry: Optional[UnitRegistry] = None) -> TaskGraph:
    """Parse the Petri-net wire format back into a task graph."""
    try:
        el = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SerializationError(f"malformed Petri net: {exc}") from exc
    if el.tag != "net":
        raise SerializationError(f"expected <net>, got <{el.tag}>")
    return _parse_net(el, registry if registry is not None else global_registry())
