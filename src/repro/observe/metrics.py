"""Counters, gauges and histograms with deterministic bucketing (§3.2).

The paper's progress requirement (§3.2) is qualitative; a production
grid also needs *quantities* — how many messages were dropped, how deep
the event queue ran, how long iterations took.  A
:class:`MetricsRegistry` holds named instruments that instrumented
layers update as the simulation runs:

* :class:`Counter` — monotonically increasing count;
* :class:`Gauge` — last-written value (plus the running max);
* :class:`Histogram` — fixed, explicit bucket boundaries so the same
  observations always land in the same buckets, on every platform and
  in every run.  No dynamic resizing, no quantile sketches — the
  determinism contract extends to metrics.

A :class:`NullMetricsRegistry` backs the no-op tracer: its instruments
are shared singletons whose update methods do nothing, so guarded call
sites cost one branch and unguarded ones cost one no-op call.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Optional, Sequence

try:  # numpy accelerates bulk observation; the bisect loop is the fallback
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a baked-in dependency
    _np = None

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "geometric_bounds",
]


def geometric_bounds(start: float, factor: float, count: int) -> tuple[float, ...]:
    """Bucket boundaries ``start * factor**k`` for ``k in range(count)``.

    Products are computed by repeated multiplication from ``start`` so
    the exact float values are reproducible everywhere.
    """
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError("need start > 0, factor > 1, count >= 1")
    bounds = []
    value = float(start)
    for _ in range(count):
        bounds.append(value)
        value *= factor
    return tuple(bounds)


#: Default histogram boundaries: 2-decade-per-4-buckets geometric ladder
#: covering microseconds to ~18 minutes of simulated time (or any other
#: positive quantity of similar dynamic range).
DEFAULT_BOUNDS = geometric_bounds(1e-6, 10.0 ** 0.5, 19)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (must be >= 0) to the count."""
        self.value += n

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value, with the running maximum kept alongside."""

    __slots__ = ("value", "max")

    def __init__(self):
        self.value = 0.0
        self.max = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value, "max": self.max}


class Histogram:
    """Fixed-boundary histogram.

    A value ``v`` lands in the first bucket whose upper bound satisfies
    ``v <= bound`` (found with :func:`bisect.bisect_left`); values above
    the last bound land in the overflow bucket.  Boundaries are frozen
    at construction, so bucketing is a pure function of the value — the
    property the determinism tests pin down.
    """

    __slots__ = ("bounds", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, bounds: Optional[Sequence[float]] = None):
        chosen = tuple(float(b) for b in (bounds if bounds is not None else DEFAULT_BOUNDS))
        if not chosen or any(a >= b for a, b in zip(chosen, chosen[1:])):
            raise ValueError("histogram bounds must be non-empty and strictly increasing")
        self.bounds = chosen
        self.counts = [0] * (len(chosen) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch of observations in one call.

        Semantically equivalent to ``for v in values: observe(v)``.  The
        fast path vectorises bucketing with numpy (``searchsorted`` uses
        the same left-bisection rule as :func:`bisect.bisect_left`) and
        is only taken for *integer* batches, where summation is exact in
        any order — float batches fall back to the sequential loop so
        the running ``total`` stays bit-identical to repeated
        :meth:`observe` calls.  Hot per-tick emitters (the simulator's
        queue-depth instrument) buffer ints and flush through here.
        """
        if not len(values):
            return
        if _np is not None:
            arr = _np.asarray(values)
            if arr.dtype.kind in "iu":
                idx = _np.searchsorted(self.bounds, arr, side="left")
                bucket_counts = _np.bincount(idx, minlength=len(self.counts))
                counts = self.counts
                for i, c in enumerate(bucket_counts):
                    if c:
                        counts[i] += int(c)
                self.count += arr.size
                self.total += float(int(arr.sum()))
                vmin = int(arr.min())
                vmax = int(arr.max())
                if vmin < self.vmin:
                    self.vmin = vmin
                if vmax > self.vmax:
                    self.vmax = vmax
                return
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.vmin if self.count else None,
            "max": self.vmax if self.count else None,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
        }


class MetricsRegistry:
    """Named instrument store with get-or-create semantics.

    Asking twice for the same name returns the same instrument; asking
    for an existing name as a different instrument type is an error
    (silent type confusion would corrupt the exported snapshot).
    """

    def __init__(self):
        self._instruments: dict[str, Any] = {}
        self._flush_hooks: list[Callable[[], None]] = []

    def add_flush_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback that drains buffered observations.

        Hot emitters (e.g. the tracer's per-tick queue-depth buffer) can
        batch updates and materialise them lazily; :meth:`snapshot`
        runs every hook first so readers never see stale instruments.
        """
        self._flush_hooks.append(hook)

    def flush(self) -> None:
        """Run all registered flush hooks."""
        for hook in self._flush_hooks:
            hook()

    def _get(self, name: str, cls, *args):
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = cls(*args)
        elif type(inst) is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None) -> Histogram:
        """Get or create a histogram; ``bounds`` only applies on creation."""
        inst = self._instruments.get(name)
        if inst is None:
            inst = self._instruments[name] = Histogram(bounds)
        elif type(inst) is not Histogram:
            raise TypeError(
                f"metric {name!r} already registered as {type(inst).__name__}"
            )
        return inst

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """All instruments, keyed by name, in sorted (stable) order.

        Flush hooks run first, so buffered observations are always
        reflected in the returned snapshot.
        """
        self.flush()
        return {name: self._instruments[name].snapshot() for name in self.names()}


class _NullInstrument:
    """Shared no-op counter/gauge/histogram behind :class:`NullTracer`."""

    __slots__ = ()

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: Sequence[float]) -> None:
        pass

    def snapshot(self) -> dict[str, Any]:
        return {"type": "null"}


_NULL_INSTRUMENT = _NullInstrument()


class NullMetricsRegistry:
    """Registry whose instruments discard every update (no allocation)."""

    def add_flush_hook(self, hook: Callable[[], None]) -> None:
        pass

    def flush(self) -> None:
        pass

    def counter(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, bounds=None) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def names(self) -> list[str]:
        return []

    def snapshot(self) -> dict[str, Any]:
        return {}
