"""Live telemetry: periodic sampling and flight recording over sim time.

The tracer (:mod:`repro.observe.tracer`) only speaks after the run ends;
the paper's consumer-grid premise is a volunteer pool whose health —
churn, stragglers, saboteurs, fetch storms — changes *while* a workflow
executes.  This module adds the streaming half of the observability
layer:

* :class:`TelemetrySampler` — captures a snapshot row at fixed
  sim-clock intervals into a bounded ring buffer.  Rows always carry the
  kernel's own state (event-queue depth, events executed); grids
  register additional *sources* — plain callables returning dicts — for
  per-peer inflight/queued work, module-cache hit and peer-fetch rates,
  in-flight network bytes, failure-detector health and reputation
  scores.  A :class:`~repro.observe.health.HealthMonitor` attached to
  the sampler sees every row as it is taken, so anomaly detection runs
  *online*, not post-hoc.
* :class:`FlightRecorder` — keeps the last N spans and instants per
  track (peer), so a failed run can dump a short per-peer timeline of
  what each worker was doing just before things went wrong.

Sampling is strictly passive, like tracing: it never schedules
simulation events and never draws randomness.  The sampler piggybacks
on ``Tracer.on_step`` — it reads the clock when an event executes and
emits a row per crossed tick boundary, stamped with the deterministic
boundary time.  A telemetered run is therefore bit-identical to a bare
one (the passivity gate in ``benchmarks/trace_overhead.py`` pins this
down).
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Optional

__all__ = ["TelemetrySampler", "FlightRecorder"]


class TelemetrySampler:
    """Fixed-interval snapshot rows over simulated time, in a ring buffer.

    Parameters
    ----------
    interval:
        Sim seconds between samples.  Rows are stamped with the exact
        tick-boundary time (``t0 + k*interval``); the values are the
        grid state at the first executed event at-or-after the boundary.
    capacity:
        Ring size.  Older rows are dropped (counted in
        ``samples_dropped``) once the buffer is full.
    max_catchup:
        If the event stream goes quiet for longer than
        ``max_catchup * interval``, intermediate boundaries are skipped
        (counted in ``ticks_skipped``) rather than emitting a burst of
        identical rows.
    """

    def __init__(
        self,
        interval: float = 5.0,
        capacity: int = 2048,
        monitor: Optional[Any] = None,
        max_catchup: int = 32,
    ):
        if not interval > 0:
            raise ValueError(f"sampler interval must be positive, got {interval!r}")
        if capacity < 1:
            raise ValueError(f"sampler capacity must be >= 1, got {capacity!r}")
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.max_catchup = int(max_catchup)
        self.samples: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self.monitor = monitor
        #: registered (name, fn) sources, sampled in registration order
        self._sources: list[tuple[str, Callable[[], dict[str, Any]]]] = []
        self.next_tick: float = float("inf")
        self.samples_taken = 0
        self.samples_dropped = 0
        self.ticks_skipped = 0

    # -- wiring --------------------------------------------------------------
    def bind(self, sim) -> None:
        """Anchor the tick grid at the simulator's current clock."""
        self.next_tick = sim.now + self.interval

    def add_source(self, name: str, fn: Callable[[], dict[str, Any]]) -> None:
        """Register a named snapshot source (a callable returning a dict).

        Sources are plain callables so the observe layer never imports
        the subsystems it observes — the grid wires them up.
        """
        if any(existing == name for existing, _ in self._sources):
            raise ValueError(f"duplicate telemetry source {name!r}")
        self._sources.append((name, fn))

    def attach_monitor(self, monitor) -> None:
        """Deliver every sampled row to ``monitor.on_sample`` as it is taken."""
        self.monitor = monitor

    # -- sampling ------------------------------------------------------------
    def on_step(self, sim) -> None:
        """Take one row per tick boundary crossed since the last event.

        Called from ``Tracer.on_step`` only when ``sim.now`` has reached
        ``next_tick``, so the traced hot loop pays one comparison.
        """
        now = sim.now
        tick = self.next_tick
        interval = self.interval
        gap = int((now - tick) // interval)
        if gap > self.max_catchup:
            skipped = gap - self.max_catchup
            self.ticks_skipped += skipped
            tick += skipped * interval
        while now >= tick:
            self._sample(tick, sim)
            tick += interval
        self.next_tick = tick

    def _sample(self, tick: float, sim) -> None:
        row: dict[str, Any] = {
            "t": tick,
            "seq": self.samples_taken,
            "sim": {
                "queue_depth": sim._queue._len,
                "events": sim.events_executed,
            },
        }
        for name, fn in self._sources:
            row[name] = fn()
        if len(self.samples) == self.capacity:
            self.samples_dropped += 1
        self.samples.append(row)
        self.samples_taken += 1
        monitor = self.monitor
        if monitor is not None:
            monitor.on_sample(row)

    # -- reporting -----------------------------------------------------------
    def rows(self) -> list[dict[str, Any]]:
        """The buffered rows, oldest first."""
        return list(self.samples)

    def latest(self) -> Optional[dict[str, Any]]:
        return self.samples[-1] if self.samples else None

    def summary(self) -> dict[str, Any]:
        return {
            "interval_s": self.interval,
            "samples": self.samples_taken,
            "buffered": len(self.samples),
            "dropped": self.samples_dropped,
            "ticks_skipped": self.ticks_skipped,
            "sources": [name for name, _ in self._sources],
        }

    def export_jsonl(self, path: str) -> int:
        """Write the buffered rows as one JSON object per line."""
        count = 0
        with open(path, "w") as fh:
            for row in self.samples:
                fh.write(json.dumps(row, sort_keys=True, default=str))
                fh.write("\n")
                count += 1
        return count


def _span_row(record) -> dict[str, Any]:
    return {
        "name": record.name,
        "category": record.category,
        "start": record.start,
        "end": record.end,
        "attrs": dict(record.attrs),
    }


def _event_row(event) -> dict[str, Any]:
    return {
        "name": event.name,
        "category": event.category,
        "time": event.time,
        "attrs": event.info,
    }


class FlightRecorder:
    """Last-N spans and instants per track, for post-mortem dumps.

    The recorder subscribes to the tracer's point-event stream (which
    works even on a :class:`~repro.observe.tracer.NullTracer`) and, on a
    recording :class:`~repro.observe.tracer.Tracer`, is notified of
    every span *close*.  Each track keeps a bounded deque, so memory
    stays flat no matter how long the run is.
    """

    def __init__(self, per_track: int = 64):
        if per_track < 1:
            raise ValueError(f"per_track must be >= 1, got {per_track!r}")
        self.per_track = int(per_track)
        self._spans: dict[str, deque] = {}
        self._events: dict[str, deque] = {}

    def attach(self, tracer) -> None:
        """Wire into a tracer: instants via subscription, spans on close."""
        tracer.subscribe(self.on_instant)
        tracer.attach_recorder(self)

    # -- hooks ---------------------------------------------------------------
    def on_instant(self, event) -> None:
        ring = self._events.get(event.track)
        if ring is None:
            ring = self._events[event.track] = deque(maxlen=self.per_track)
        ring.append(event)

    def on_span(self, record) -> None:
        """Called by ``Tracer._end`` when a span closes."""
        ring = self._spans.get(record.track)
        if ring is None:
            ring = self._spans[record.track] = deque(maxlen=self.per_track)
        ring.append(record)

    # -- post-mortem ---------------------------------------------------------
    def tracks(self) -> list[str]:
        return sorted(set(self._spans) | set(self._events))

    def dump(self, track: Optional[str] = None) -> dict[str, Any]:
        """Plain-dict snapshot of the retained history (one or all tracks)."""
        tracks = [track] if track is not None else self.tracks()
        out: dict[str, Any] = {}
        for name in tracks:
            out[name] = {
                "spans": [_span_row(r) for r in self._spans.get(name, ())],
                "events": [_event_row(e) for e in self._events.get(name, ())],
            }
        return out

    def render(self, track: str, limit: int = 20) -> str:
        """A short text timeline of a track's final moments."""
        rows: list[tuple[float, str]] = []
        for record in self._spans.get(track, ()):
            end = "…" if record.end is None else f"{record.end:.2f}"
            rows.append(
                (record.start, f"[{record.start:9.2f} → {end:>8}] {record.name}")
            )
        for event in self._events.get(track, ()):
            rows.append((event.time, f"[{event.time:9.2f}           ] {event.name}"))
        rows.sort(key=lambda pair: pair[0])
        lines = [f"flight recorder — {track} (last {len(rows)} records)"]
        lines.extend(text for _, text in rows[-limit:])
        return "\n".join(lines)
