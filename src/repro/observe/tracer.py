"""Run-scoped hierarchical tracing over simulated time (§3.2).

"users should be able to obtain progress of their running network" —
§3.2.  The tracer is how every layer of the reproduction answers that:
instrumented call sites open **spans** (named intervals with a start and
end in *simulated* seconds, a parent span, a track — usually the peer id
— and structured attributes) or record **point events**.  Progress
views (:mod:`repro.service.monitor`) subscribe to the same event stream
rather than maintaining a parallel one, and exporters
(:mod:`repro.observe.export`) turn the record into Chrome/Perfetto
traces, JSONL logs and per-peer timelines.

Two implementations share one interface:

* :class:`Tracer` — records everything; ``enabled`` is True;
* :class:`NullTracer` — records nothing, ``enabled`` is False, and every
  method is a near-empty body.  Hot call sites guard with
  ``if tracer.enabled:`` so a disabled simulation pays one attribute
  load and a branch.  Every :class:`~repro.simkernel.sim.Simulator`
  carries its own ``NullTracer`` by default.

Tracing is passive by contract: no simulation events are scheduled, no
RNG streams are consumed, and time is only ever *read* from the
simulator clock.  Span ids come from a per-tracer counter, so two runs
with the same seed produce identical span tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .metrics import MetricsRegistry, NullMetricsRegistry

__all__ = ["SpanRecord", "TraceEvent", "SpanHandle", "Tracer", "NullTracer"]


@dataclass
class SpanRecord:
    """One named interval of simulated time."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    track: str
    start: float
    end: Optional[float] = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass(frozen=True)
class TraceEvent:
    """One point event (zero duration)."""

    name: str
    category: str
    track: str
    time: float
    attrs: tuple[tuple[str, Any], ...] = ()

    @property
    def info(self) -> dict[str, Any]:
        return dict(self.attrs)


class SpanHandle:
    """Open-span handle: close with :meth:`end` or as a context manager."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord):
        self._tracer = tracer
        self.record = record

    def set(self, **attrs: Any) -> "SpanHandle":
        """Attach (or overwrite) attributes on the open span."""
        self.record.attrs.update(attrs)
        return self

    def end(self, **attrs: Any) -> None:
        """Close the span at the current simulated time."""
        self._tracer._end(self.record, attrs)

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end()


class _NullSpanHandle:
    """Shared do-nothing stand-in for :class:`SpanHandle`."""

    __slots__ = ()
    record = None

    def set(self, **attrs: Any) -> "_NullSpanHandle":
        return self

    def end(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpanHandle()


class _TracerBase:
    """Clock binding and subscriber dispatch shared by both tracers."""

    def __init__(self):
        self._clock: Callable[[], float] = lambda: 0.0
        #: (category-filter-or-None, callback) pairs, dispatch order = subscribe order
        self._subs: list[tuple[Optional[str], Callable[[TraceEvent], None]]] = []
        #: optional live-telemetry hooks (see repro.observe.telemetry)
        self._sampler = None
        self._recorder = None

    def attach_clock(self, clock: Callable[[], float]) -> None:
        """Bind the time source (the simulator does this on construction)."""
        self._clock = clock

    def attach_sampler(self, sampler) -> None:
        """Wire a :class:`~repro.observe.telemetry.TelemetrySampler` in.

        The sampler is polled from :meth:`Tracer.on_step` (one float
        comparison per executed event) and takes a snapshot row whenever
        the clock crosses a tick boundary.  Only a recording
        :class:`Tracer` drives it — install one via
        ``Simulator.install_sampler``.
        """
        self._sampler = sampler

    def attach_recorder(self, recorder) -> None:
        """Wire a :class:`~repro.observe.telemetry.FlightRecorder` in.

        The recorder is notified of every span *close* (instants reach
        it through the ordinary subscription stream).
        """
        self._recorder = recorder

    def now(self) -> float:
        return self._clock()

    def subscribe(
        self,
        callback: Callable[[TraceEvent], None],
        category: Optional[str] = None,
    ) -> None:
        """Deliver every point event (optionally of one category) to ``callback``.

        Subscription works on both tracer flavours — progress views stay
        live even when nothing is being recorded.
        """
        self._subs.append((category, callback))

    def _dispatch(self, event: TraceEvent) -> None:
        for category, callback in self._subs:
            if category is None or category == event.category:
                callback(event)


class Tracer(_TracerBase):
    """The recording tracer: spans, point events and a metrics registry."""

    enabled = True

    def __init__(self):
        super().__init__()
        self.spans: list[SpanRecord] = []
        self.events: list[TraceEvent] = []
        self.metrics = MetricsRegistry()
        self._next_id = 1
        #: per-track stack of open span ids (implicit parenting)
        self._open: dict[str, list[SpanRecord]] = {}
        self._sim_instruments = None
        #: buffered per-tick queue depths, flushed into the histogram lazily
        self._step_depths: list[int] = []
        self.metrics.add_flush_hook(self._flush_step_metrics)

    # -- spans ---------------------------------------------------------------
    def begin(
        self,
        name: str,
        category: str = "app",
        track: str = "main",
        parent: Optional[SpanHandle] = None,
        **attrs: Any,
    ) -> SpanHandle:
        """Open a span; nested under the track's innermost open span.

        Pass ``parent`` to pin the parent explicitly (cross-track or
        cross-handler spans); otherwise the innermost span still open on
        the same track is the parent.
        """
        if parent is not None and parent.record is not None:
            parent_id = parent.record.span_id
        else:
            stack = self._open.get(track)
            parent_id = stack[-1].span_id if stack else None
        record = SpanRecord(
            span_id=self._next_id,
            parent_id=parent_id,
            name=name,
            category=category,
            track=track,
            start=self._clock(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self.spans.append(record)
        self._open.setdefault(track, []).append(record)
        return SpanHandle(self, record)

    #: alias: ``with tracer.span(...):`` reads better at call sites
    span = begin

    def _end(self, record: SpanRecord, attrs: dict[str, Any]) -> None:
        if record.end is not None:
            return  # idempotent: racing completion paths may both close
        record.end = self._clock()
        if attrs:
            record.attrs.update(attrs)
        stack = self._open.get(record.track)
        if stack and record in stack:
            # Usually LIFO; remove-by-identity tolerates overlapping
            # async spans on one track (e.g. concurrent module fetches).
            stack.remove(record)
        recorder = self._recorder
        if recorder is not None:
            recorder.on_span(record)

    # -- point events --------------------------------------------------------
    def instant(
        self,
        name: str,
        category: str = "app",
        track: str = "main",
        time: Optional[float] = None,
        **attrs: Any,
    ) -> TraceEvent:
        """Record a zero-duration event and fan it out to subscribers."""
        event = TraceEvent(
            name=name,
            category=category,
            track=track,
            time=self._clock() if time is None else time,
            attrs=tuple(attrs.items()),
        )
        self.events.append(event)
        if self._subs:
            self._dispatch(event)
        return event

    # -- simkernel hook ------------------------------------------------------
    #: queue-depth histogram boundaries (powers of two)
    QUEUE_DEPTH_BOUNDS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096)

    def on_step(self, sim) -> None:
        """Per-event-loop-tick metrics; called by ``Simulator.step``.

        This is the hottest instrumented call in a traced run (once per
        executed event), so it only appends the current queue depth to a
        buffer; :meth:`_flush_step_metrics` — registered as a metrics
        flush hook, run by every ``metrics.snapshot()`` — materialises
        the counter increment and histogram observations in batch.  An
        attached telemetry sampler costs one comparison here and only
        does real work when the clock crosses a tick boundary.
        """
        self._step_depths.append(sim._queue._len)
        sampler = self._sampler
        if sampler is not None and sim.now >= sampler.next_tick:
            sampler.on_step(sim)

    def _flush_step_metrics(self) -> None:
        """Drain the buffered queue depths into the real instruments."""
        depths = self._step_depths
        if not depths:
            return
        instruments = self._sim_instruments
        if instruments is None:
            instruments = self._sim_instruments = (
                self.metrics.counter("sim.events_executed"),
                self.metrics.histogram("sim.queue_depth", self.QUEUE_DEPTH_BOUNDS),
            )
        instruments[0].inc(len(depths))
        instruments[1].observe_many(depths)
        self._step_depths = []

    # -- reporting -----------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Aggregate counts for :class:`~repro.service.controller.RunReport`."""
        spans_by_category: dict[str, int] = {}
        open_spans = 0
        for span in self.spans:
            spans_by_category[span.category] = spans_by_category.get(span.category, 0) + 1
            if span.end is None:
                open_spans += 1
        events_by_category: dict[str, int] = {}
        for event in self.events:
            events_by_category[event.category] = events_by_category.get(event.category, 0) + 1
        return {
            "enabled": True,
            "spans": len(self.spans),
            "open_spans": open_spans,
            "events": len(self.events),
            "spans_by_category": dict(sorted(spans_by_category.items())),
            "events_by_category": dict(sorted(events_by_category.items())),
            "metrics": self.metrics.snapshot(),
        }


class NullTracer(_TracerBase):
    """The default tracer: records nothing, still routes subscriptions.

    Point events are dispatched to subscribers (progress views must work
    without tracing) but never stored; spans are the shared no-op handle.
    """

    enabled = False

    #: shared empty record lists so exporters accept a NullTracer too
    spans: list[SpanRecord] = []
    events: list[TraceEvent] = []

    def __init__(self):
        super().__init__()
        self.metrics = NullMetricsRegistry()

    def begin(self, name, category="app", track="main", parent=None, **attrs):
        return _NULL_SPAN

    span = begin

    def instant(self, name, category="app", track="main", time=None, **attrs):
        if not self._subs:
            return None
        event = TraceEvent(
            name=name,
            category=category,
            track=track,
            time=self._clock() if time is None else time,
            attrs=tuple(attrs.items()),
        )
        self._dispatch(event)
        return event

    def on_step(self, sim) -> None:
        pass

    def summary(self) -> dict[str, Any]:
        return {"enabled": False, "spans": 0, "open_spans": 0, "events": 0}
