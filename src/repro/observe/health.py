"""Online health detection over telemetry samples, and the ``repro top`` view.

The streaming half of anomaly detection: a :class:`HealthMonitor`
receives every :class:`~repro.observe.telemetry.TelemetrySampler` row as
it is taken and runs a catalogue of online detectors against it.  Each
detector watches for one failure signature of the paper's consumer-grid
setting and emits severity-ranked :class:`Incident` records — both kept
on the monitor and, when a recording tracer is attached, written onto
the trace as ``health.incident`` instants so post-hoc analysis
(:func:`~repro.observe.analyze.doctor`, ``repro analyze``) sees the same
timeline the live monitor saw.

Detector catalogue (all transition-triggered — an incident fires when a
peer *enters* a bad state, not on every sample it stays there):

=====================  ========  =====================================
kind                   severity  signature
=====================  ========  =====================================
``heartbeat-silence``  critical  the failure detector newly suspects a
                                 peer (missed heartbeats)
``reputation-collapse`` critical a peer's first integrity conviction
                                 (tampered result caught by voting)
``straggler``          warning   a peer's completed iterations fall a
                                 z-score below the healthy fleet
``backlog-growth``     warning   total queued work strictly grows for
                                 N consecutive ticks
``fetch-storm``        warning   module fetches in one tick exceed a
                                 burst threshold
``starvation``         info      an idle peer while others hold a
                                 backlog (placement imbalance)
=====================  ========  =====================================

Detection quality is *scored*, not assumed: :func:`score_against_faults`
matches incidents against the :class:`~repro.faults.FaultInjector`'s
ground-truth log (recall over injected crash/straggler/saboteur faults,
precision over emitted incidents) and the chaos e2e tests gate on it.

Like the sampler, everything here is passive — detectors only read
sample rows; emitting an incident records a trace instant and never
schedules simulation events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

from .analyze import load_trace, utilization

__all__ = [
    "Incident",
    "HealthMonitor",
    "HealthDetector",
    "HeartbeatSilenceDetector",
    "StragglerDetector",
    "FetchStormDetector",
    "StarvationDetector",
    "BacklogGrowthDetector",
    "ReputationCollapseDetector",
    "default_detectors",
    "score_against_faults",
    "health_incidents",
    "render_top",
]

#: severity ladder, least to most severe
SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class Incident:
    """One detected anomaly, stamped with the sample tick that exposed it."""

    time: float
    kind: str
    severity: str
    track: str
    message: str
    detail: dict[str, Any] = field(default_factory=dict)

    @property
    def severity_rank(self) -> int:
        return SEVERITIES.index(self.severity)

    def as_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "kind": self.kind,
            "severity": self.severity,
            "track": self.track,
            "message": self.message,
            "detail": dict(self.detail),
        }


# -- detectors ---------------------------------------------------------------------


class HealthDetector:
    """Base class: one failure signature, updated once per sample row.

    ``update(row, emit)`` receives the raw sample dict and an ``emit``
    callable (``emit(track, message, **detail)``); the monitor stamps
    kind/severity/time.  Detectors must tolerate missing row sections —
    a bare sampler only carries the ``sim`` block.
    """

    kind = "anomaly"
    severity = "warning"

    def update(self, row: dict[str, Any], emit: Callable[..., None]) -> None:
        raise NotImplementedError


def _excluded(row: dict[str, Any]) -> set[str]:
    """Peers the failure detector already considers gone.

    Suspected/quarantined/blacklisted peers are excluded from fleet
    statistics: a crashed worker's frozen progress would otherwise drag
    the mean down and mask a genuinely slow (but alive) straggler.
    """
    det = row.get("detector") or {}
    out: set[str] = set()
    for key in ("suspected", "quarantined", "blacklisted"):
        out.update(det.get(key, ()))
    return out


class HeartbeatSilenceDetector(HealthDetector):
    """A peer newly suspected by the failure detector went silent."""

    kind = "heartbeat-silence"
    severity = "critical"

    def __init__(self):
        self._flagged: set[str] = set()

    def update(self, row, emit):
        det = row.get("detector")
        if det is None:
            return
        suspected = set(det.get("suspected", ()))
        for peer in sorted(suspected - self._flagged):
            emit(peer, f"{peer} stopped heartbeating (suspected by the "
                       "failure detector)")
        self._flagged = suspected


class StragglerDetector(HealthDetector):
    """A live peer's completed iterations fall a z-score behind the fleet."""

    kind = "straggler"
    severity = "warning"

    def __init__(self, z_threshold: float = 2.0, min_lag: float = 2.0,
                 min_fleet: int = 3):
        self.z_threshold = float(z_threshold)
        self.min_lag = float(min_lag)
        self.min_fleet = int(min_fleet)
        self._flagged: set[str] = set()

    def update(self, row, emit):
        workers = row.get("workers")
        if not workers:
            return
        exclude = _excluded(row)
        counts = {
            peer: info.get("iterations", 0)
            for peer, info in workers.items()
            if peer not in exclude
        }
        if len(counts) < self.min_fleet:
            return
        values = list(counts.values())
        n = len(values)
        mean = sum(values) / n
        std = (sum((v - mean) ** 2 for v in values) / n) ** 0.5
        flagged_now: set[str] = set()
        if std > 0:
            for peer in sorted(counts):
                lag = mean - counts[peer]
                z = -lag / std
                if z <= -self.z_threshold and lag >= self.min_lag:
                    flagged_now.add(peer)
                    if peer not in self._flagged:
                        emit(
                            peer,
                            f"{peer} lags the fleet: {counts[peer]} vs mean "
                            f"{mean:.1f} iterations (z={z:.1f})",
                            z=round(z, 2),
                            lag=round(lag, 2),
                        )
        self._flagged = flagged_now


class FetchStormDetector(HealthDetector):
    """Module fetches in one sample interval exceed a burst threshold."""

    kind = "fetch-storm"
    severity = "warning"

    def __init__(self, threshold: int = 64):
        self.threshold = int(threshold)
        self._last: Optional[int] = None
        self._active = False

    def update(self, row, emit):
        workers = row.get("workers")
        if workers is None:
            return
        total = 0
        for info in workers.values():
            cache = info.get("cache", {})
            total += cache.get("fetches", 0) + cache.get("peer_fetches", 0)
        if self._last is not None:
            delta = total - self._last
            if delta > self.threshold and not self._active:
                self._active = True
                emit(
                    "grid",
                    f"fetch storm: {delta} module fetches in one sample "
                    f"interval (threshold {self.threshold})",
                    fetches=delta,
                )
            elif delta <= self.threshold:
                self._active = False
        self._last = total


class StarvationDetector(HealthDetector):
    """A live peer sits idle while others hold a backlog."""

    kind = "starvation"
    severity = "info"

    def __init__(self, backlog_min: int = 3, patience: int = 3):
        self.backlog_min = int(backlog_min)
        self.patience = int(patience)
        self._streak: dict[str, int] = {}

    def update(self, row, emit):
        workers = row.get("workers")
        if not workers:
            return
        exclude = _excluded(row)
        max_queued = max(
            (info.get("queued", 0) for info in workers.values()), default=0
        )
        for peer in sorted(workers):
            info = workers[peer]
            idle = (
                info.get("queued", 0) == 0
                and info.get("inflight", 0) == 0
                and peer not in exclude
            )
            if idle and max_queued >= self.backlog_min:
                streak = self._streak.get(peer, 0) + 1
                self._streak[peer] = streak
                if streak == self.patience:
                    emit(
                        peer,
                        f"{peer} starved: idle for {streak} samples while the "
                        f"busiest peer queues {max_queued} iterations",
                        backlog=max_queued,
                    )
            else:
                self._streak[peer] = 0


class BacklogGrowthDetector(HealthDetector):
    """Total queued work across the fleet strictly grows tick over tick."""

    kind = "backlog-growth"
    severity = "warning"

    def __init__(self, patience: int = 4):
        self.patience = int(patience)
        self._last: Optional[int] = None
        self._streak = 0
        self._fired = False

    def update(self, row, emit):
        workers = row.get("workers")
        if workers is None:
            return
        total = sum(info.get("queued", 0) for info in workers.values())
        if self._last is not None and total > self._last:
            self._streak += 1
        else:
            self._streak = 0
            self._fired = False
        if self._streak >= self.patience and not self._fired:
            self._fired = True
            emit(
                "grid",
                f"backlog growing: fleet queue depth rose {self._streak} "
                f"consecutive samples to {total}",
                queued=total,
            )
        self._last = total


class ReputationCollapseDetector(HealthDetector):
    """A peer's first integrity conviction — quorum caught a tampered result."""

    kind = "reputation-collapse"
    severity = "critical"

    def __init__(self):
        self._flagged: set[str] = set()

    def update(self, row, emit):
        rep = row.get("reputation")
        if rep is None:
            return
        convicted = rep.get("convicted", {})
        for peer in sorted(convicted):
            if peer not in self._flagged:
                self._flagged.add(peer)
                emit(
                    peer,
                    f"{peer} convicted of result tampering "
                    f"({convicted[peer]} conviction(s))",
                    convictions=convicted[peer],
                )


def default_detectors(
    *,
    straggler_z: float = 2.0,
    straggler_min_lag: float = 2.0,
    fetch_storm_threshold: int = 64,
    starvation_backlog: int = 3,
    starvation_patience: int = 3,
    backlog_patience: int = 4,
) -> list[HealthDetector]:
    """The full catalogue with tunable thresholds (the grid's default)."""
    return [
        HeartbeatSilenceDetector(),
        ReputationCollapseDetector(),
        StragglerDetector(z_threshold=straggler_z, min_lag=straggler_min_lag),
        BacklogGrowthDetector(patience=backlog_patience),
        FetchStormDetector(threshold=fetch_storm_threshold),
        StarvationDetector(backlog_min=starvation_backlog,
                           patience=starvation_patience),
    ]


# -- the monitor -------------------------------------------------------------------


class HealthMonitor:
    """Runs the detector catalogue over every sampled telemetry row."""

    def __init__(self, detectors: Optional[Iterable[HealthDetector]] = None,
                 max_incidents: int = 1024):
        self.detectors = (
            list(detectors) if detectors is not None else default_detectors()
        )
        self.incidents: list[Incident] = []
        self.max_incidents = int(max_incidents)
        self.dropped = 0
        self._tracer = None

    def attach(self, tracer) -> None:
        """Mirror every incident onto the trace as a ``health.incident``."""
        self._tracer = tracer

    def on_sample(self, row: dict[str, Any]) -> None:
        time = row.get("t", 0.0)
        for detector in self.detectors:
            def emit(track, message, _det=detector, _t=time, **detail):
                self._record(_det, _t, track, message, detail)
            detector.update(row, emit)

    def _record(self, detector, time, track, message, detail) -> None:
        if len(self.incidents) >= self.max_incidents:
            self.dropped += 1
            return
        incident = Incident(
            time=time,
            kind=detector.kind,
            severity=detector.severity,
            track=track,
            message=message,
            detail=detail,
        )
        self.incidents.append(incident)
        tracer = self._tracer
        if tracer is not None:
            tracer.instant(
                "health.incident",
                category="health",
                track=track,
                time=time,
                kind=incident.kind,
                severity=incident.severity,
                message=message,
                **detail,
            )

    # -- reporting -----------------------------------------------------------
    def ranked(self) -> list[Incident]:
        """Incidents most-severe first, earliest first within a severity."""
        return sorted(
            self.incidents,
            key=lambda i: (-i.severity_rank, i.time, i.kind, i.track),
        )

    def summary(self) -> dict[str, Any]:
        by_severity: dict[str, int] = {}
        by_kind: dict[str, int] = {}
        for incident in self.incidents:
            by_severity[incident.severity] = by_severity.get(incident.severity, 0) + 1
            by_kind[incident.kind] = by_kind.get(incident.kind, 0) + 1
        return {
            "incidents": len(self.incidents),
            "dropped": self.dropped,
            "by_severity": dict(sorted(by_severity.items())),
            "by_kind": dict(sorted(by_kind.items())),
            "worst": [i.as_dict() for i in self.ranked()[:5]],
        }


# -- scoring against fault ground truth ---------------------------------------------

#: which incident kinds count as *detecting* each injected fault action.
#: A crash legitimately surfaces as heartbeat silence, a frozen-progress
#: straggler, or downstream starvation — any of them is a catch.
FAULT_KINDS = {
    "crash": ("heartbeat-silence", "straggler", "starvation"),
    "slowdown": ("straggler",),
    "saboteur": ("reputation-collapse",),
    "flaky_compute": ("reputation-collapse",),
    "liar_heartbeat": ("reputation-collapse", "heartbeat-silence"),
}

#: grid-scoped kinds describe ambient pressure, not one peer's fault —
#: they are excluded from the per-fault precision accounting.
_AMBIENT_KINDS = frozenset({"fetch-storm", "backlog-growth"})


def _incident_fields(incident) -> tuple[str, str, float]:
    if isinstance(incident, dict):
        return (
            incident.get("kind", ""),
            incident.get("track", ""),
            float(incident.get("time", 0.0)),
        )
    return incident.kind, incident.track, incident.time


def score_against_faults(incidents, fault_log) -> dict[str, Any]:
    """Match incidents to the :class:`FaultInjector`'s ground-truth log.

    One injected fault = one unique ``(action, target)`` pair among the
    log's onset entries (crash/slowdown/saboteur/...); it counts as
    *detected* if any incident of a matching kind names the same peer at
    or after the onset.  ``recall`` is detected/injected.  ``precision``
    is the fraction of peer-scoped incidents attributable to some
    injected fault (ambient grid-level kinds are reported separately).
    On a clean run both lists are empty and recall/precision are 1.0.
    """
    faults: list[dict[str, Any]] = []
    seen: set[tuple[str, str]] = set()
    for entry in fault_log:
        action = entry.get("action")
        if action not in FAULT_KINDS:
            continue
        detail = str(entry.get("detail", ""))
        target = detail.split()[0] if detail else ""
        key = (action, target)
        if key in seen:
            continue
        seen.add(key)
        faults.append({"action": action, "target": target, "t": entry.get("t", 0.0)})

    rows = [_incident_fields(i) for i in incidents]

    def _matches(fault, kind, track, time):
        return (
            kind in FAULT_KINDS[fault["action"]]
            and track == fault["target"]
            and time >= fault["t"]
        )

    detected, missed = [], []
    for fault in faults:
        hit = next(
            ((kind, time) for kind, track, time in rows
             if _matches(fault, kind, track, time)),
            None,
        )
        if hit is None:
            missed.append(dict(fault))
        else:
            detected.append({**fault, "incident_kind": hit[0],
                             "detected_at": hit[1]})

    ambient = sum(1 for kind, _, _ in rows if kind in _AMBIENT_KINDS)
    scoped = [(k, tr, t) for k, tr, t in rows if k not in _AMBIENT_KINDS]
    unmatched = [
        {"kind": kind, "track": track, "time": time}
        for kind, track, time in scoped
        if not any(_matches(f, kind, track, time) for f in faults)
    ]
    return {
        "faults": len(faults),
        "detected": len(detected),
        "missed": missed,
        "matched": detected,
        "recall": len(detected) / len(faults) if faults else 1.0,
        "incidents": len(rows),
        "ambient_incidents": ambient,
        "unmatched_incidents": len(unmatched),
        "unmatched": unmatched,
        "precision": 1.0 - len(unmatched) / len(scoped) if scoped else 1.0,
    }


# -- the `repro top` dashboard ------------------------------------------------------


def health_incidents(source) -> list[dict[str, Any]]:
    """Extract ``health.incident`` instants from any trace source."""
    view = load_trace(source)
    out = []
    for event in view.events:
        if event.name != "health.incident":
            continue
        attrs = dict(event.attrs)
        out.append({
            "time": event.time,
            "track": event.track,
            "kind": attrs.pop("kind", "anomaly"),
            "severity": attrs.pop("severity", "warning"),
            "message": attrs.pop("message", ""),
            "detail": attrs,
        })
    out.sort(key=lambda i: (i["time"], i["kind"], i["track"]))
    return out


def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "-" * (width - filled)


_SEV_TAG = {"critical": "CRIT", "warning": "WARN", "info": "info"}


def render_top(source, max_incidents: int = 15) -> str:
    """The ``repro top`` text dashboard over a trace source.

    Three panes: per-peer utilization bars, the incident timeline
    (most recent ``max_incidents``), and worst offenders — peers ranked
    by incident severity, then by idleness.
    """
    util = utilization(source)
    incidents = health_incidents(source)
    window = util["window"]

    out: list[str] = []
    out.append(
        f"repro top — window [{window['start']:.1f} – {window['end']:.1f}] "
        f"sim s, {len(util['workers'])} workers, "
        f"fairness {util['fairness']:.3f}"
    )
    out.append("")
    out.append("peers")
    for track, row in util["tracks"].items():
        frac = row["busy_fraction"]
        count = sum(1 for i in incidents if i["track"] == track)
        suffix = f"  {count} incident(s)" if count else ""
        out.append(
            f"  {track:<12} [{_bar(frac)}] {frac * 100:5.1f}% busy  "
            f"{row['execs']:4d} execs{suffix}"
        )
    out.append("")
    if incidents:
        shown = incidents[-max_incidents:]
        out.append(
            f"incidents ({len(incidents)} total"
            + (f", last {len(shown)} shown" if len(shown) < len(incidents) else "")
            + ")"
        )
        for inc in shown:
            tag = _SEV_TAG.get(inc["severity"], inc["severity"])
            out.append(
                f"  t={inc['time']:8.1f}  {tag:<4} {inc['kind']:<19} "
                f"{inc['track']:<12} {inc['message']}"
            )
        out.append("")
        out.append("worst offenders")
        weight = {"critical": 100, "warning": 10, "info": 1}
        score: dict[str, int] = {}
        for inc in incidents:
            if inc["track"] in util["tracks"] or inc["track"] != "grid":
                score[inc["track"]] = (
                    score.get(inc["track"], 0) + weight.get(inc["severity"], 1)
                )
        ranked = sorted(score.items(), key=lambda kv: (-kv[1], kv[0]))
        for track, points in ranked[:5]:
            counts: dict[str, int] = {}
            for inc in incidents:
                if inc["track"] == track:
                    counts[inc["severity"]] = counts.get(inc["severity"], 0) + 1
            busy = util["tracks"].get(track, {}).get("busy_fraction", 0.0)
            breakdown = ", ".join(
                f"{n} {sev}" for sev, n in sorted(counts.items(),
                                                  key=lambda kv: -weight.get(kv[0], 0))
            )
            out.append(f"  {track:<12} {breakdown} — busy {busy * 100:.1f}%")
    else:
        out.append("incidents: none — healthy run")
    return "\n".join(out) + "\n"
