"""Observability layer — tracing, metrics and timeline exports (§3.2).

"users should be able to obtain progress of their running network" — the
paper's disconnected-view requirement, §3.2.  This package generalises
the minimal progress stream into a first-class observability layer:

* :mod:`repro.observe.tracer` — a run-scoped :class:`Tracer` producing
  hierarchical spans and point events over *simulated* time, plus the
  zero-overhead :class:`NullTracer` every :class:`~repro.simkernel.Simulator`
  carries by default;
* :mod:`repro.observe.metrics` — a :class:`MetricsRegistry` of counters,
  gauges and histograms with deterministic bucketing;
* :mod:`repro.observe.export` — exporters: Chrome/Perfetto trace JSON,
  a JSONL event log, a plain-text per-peer timeline, and a metrics
  snapshot dump;
* :mod:`repro.observe.analyze` — trace analytics over a live tracer or
  an exported trace: critical-path extraction, per-peer utilization,
  bottleneck attribution, run diffing, and the ``doctor()`` report
  behind ``repro analyze``;
* :mod:`repro.observe.telemetry` — *live* telemetry: the sim-clock
  :class:`TelemetrySampler` ring buffer and the per-peer
  :class:`FlightRecorder` post-mortem buffers;
* :mod:`repro.observe.health` — online anomaly detectors over sampler
  rows emitting severity-ranked :class:`Incident` records, scored
  against fault-injection ground truth, plus the ``repro top``
  dashboard renderer.

Tracing is strictly *passive*: it never schedules simulation events and
never draws randomness, so a traced run is bit-identical to an untraced
one and two traced runs with the same seed emit identical trace files.

See ``docs/observability.md`` for the full guide.
"""

from .analyze import (
    TraceView,
    analyze,
    bottlenecks,
    compare_runs,
    critical_path,
    doctor,
    load_trace,
    render_diff,
    utilization,
)
from .export import (
    chrome_trace,
    jsonl_lines,
    text_timeline,
    trace_summary,
    write_metrics,
    write_trace,
)
from .health import (
    HealthMonitor,
    Incident,
    default_detectors,
    health_incidents,
    render_top,
    score_against_faults,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    geometric_bounds,
)
from .telemetry import FlightRecorder, TelemetrySampler
from .tracer import NullTracer, SpanHandle, SpanRecord, TraceEvent, Tracer

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "HealthMonitor",
    "Histogram",
    "Incident",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullTracer",
    "SpanHandle",
    "SpanRecord",
    "TelemetrySampler",
    "TraceEvent",
    "TraceView",
    "Tracer",
    "analyze",
    "bottlenecks",
    "chrome_trace",
    "compare_runs",
    "critical_path",
    "default_detectors",
    "doctor",
    "geometric_bounds",
    "health_incidents",
    "jsonl_lines",
    "load_trace",
    "render_diff",
    "render_top",
    "score_against_faults",
    "text_timeline",
    "trace_summary",
    "utilization",
    "write_metrics",
    "write_trace",
]
