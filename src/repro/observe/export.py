"""Trace exporters: Chrome/Perfetto JSON, JSONL log, text timelines (§3.2).

The paper's §3.2 wants run progress visible through multiple
disconnected views; these exporters are the offline counterparts of the
live progress pages.  Three formats, chosen by file extension in
:func:`write_trace`:

* ``.json`` — the Chrome ``chrome://tracing`` / Perfetto "JSON trace
  event" format (``traceEvents`` with ``ph: "X"`` complete spans and
  ``ph: "i"`` instants).  Load it at https://ui.perfetto.dev or in
  ``chrome://tracing``; each peer renders as its own thread row.
* ``.jsonl`` — one self-describing JSON object per span/event, in
  simulated-time order; the machine-friendly event log.
* ``.txt`` / ``.log`` — a plain-text per-peer timeline, readable in a
  terminal.

All exports are byte-deterministic for a given trace: tracks map to
thread ids in sorted order, events are sorted by (time, id), and JSON is
emitted with sorted keys.
"""

from __future__ import annotations

import json
from typing import Any, Optional

__all__ = [
    "chrome_trace",
    "jsonl_lines",
    "text_timeline",
    "trace_summary",
    "write_metrics",
    "write_trace",
]

#: One synthetic process groups every track in the exported trace.
_PID = 1


def _json_default(value: Any):
    """Coerce non-JSON attribute values (numpy scalars, sets, objects)."""
    item = getattr(value, "item", None)
    if item is not None:
        try:
            return item()  # numpy scalar → native python number
        except (TypeError, ValueError):
            pass
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) for v in value)
    return str(value)


def _track_ids(tracer) -> dict[str, int]:
    """Deterministic track → thread-id mapping (sorted by track name)."""
    tracks = {span.track for span in tracer.spans}
    tracks.update(event.track for event in tracer.events)
    return {track: tid for tid, track in enumerate(sorted(tracks), start=1)}


def chrome_trace(tracer) -> dict[str, Any]:
    """The trace as a Chrome/Perfetto ``traceEvents`` document (a dict).

    Times are converted from simulated seconds to the format's
    microseconds.  Spans still open at export time are emitted with zero
    duration and ``args.unfinished = true`` rather than dropped.
    """
    tids = _track_ids(tracer)
    events: list[dict[str, Any]] = []
    for track, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for span in tracer.spans:
        args = dict(span.attrs)
        duration = span.end - span.start if span.end is not None else 0.0
        if span.end is None:
            args["unfinished"] = True
        if span.parent_id is not None:
            args["parent_span"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": duration * 1e6,
                "pid": _PID,
                "tid": tids[span.track],
                "id": span.span_id,
                "args": args,
            }
        )
    for event in tracer.events:
        events.append(
            {
                "name": event.name,
                "cat": event.category,
                "ph": "i",
                "s": "t",
                "ts": event.time * 1e6,
                "pid": _PID,
                "tid": tids[event.track],
                "args": event.info,
            }
        )
    # Metadata first, then strict (ts, name) order — stable across runs.
    events.sort(key=lambda e: (e["ph"] != "M", e.get("ts", 0.0), e.get("id", 0), e["name"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated-seconds", "source": "repro.observe"},
    }


def jsonl_lines(tracer) -> list[str]:
    """One JSON object per record, ordered by simulated time."""
    records: list[tuple[float, int, dict[str, Any]]] = []
    for span in tracer.spans:
        records.append(
            (
                span.start,
                span.span_id,
                {
                    "type": "span",
                    "id": span.span_id,
                    "parent": span.parent_id,
                    "name": span.name,
                    "category": span.category,
                    "track": span.track,
                    "start": span.start,
                    "end": span.end,
                    "attrs": span.attrs,
                },
            )
        )
    for i, event in enumerate(tracer.events):
        records.append(
            (
                event.time,
                i,
                {
                    "type": "event",
                    "name": event.name,
                    "category": event.category,
                    "track": event.track,
                    "time": event.time,
                    "attrs": event.info,
                },
            )
        )
    records.sort(key=lambda r: (r[0], r[2]["type"], r[1]))
    return [
        json.dumps(record, sort_keys=True, default=_json_default)
        for _, _, record in records
    ]


def text_timeline(tracer, width: int = 100) -> str:
    """A plain-text per-track (per-peer) timeline.

    Each track gets its own section; spans show ``[start – end]`` with
    nesting indentation, point events show ``@time``.
    """
    tids = _track_ids(tracer)
    lines: list[str] = ["timeline (simulated seconds)", "=" * 28]
    depth_of: dict[int, int] = {}
    for span in tracer.spans:
        depth_of[span.span_id] = (
            depth_of.get(span.parent_id, -1) + 1 if span.parent_id is not None else 0
        )
    for track in tids:
        rows: list[tuple[float, int, str]] = []
        for span in tracer.spans:
            if span.track != track:
                continue
            indent = "  " * depth_of.get(span.span_id, 0)
            end = f"{span.end:.3f}" if span.end is not None else "…"
            attrs = " ".join(f"{k}={v}" for k, v in span.attrs.items())
            rows.append(
                (
                    span.start,
                    span.span_id,
                    f"  [{span.start:10.3f} – {end:>10}] {indent}{span.name}"
                    + (f"  ({attrs})" if attrs else ""),
                )
            )
        for i, event in enumerate(tracer.events):
            if event.track != track:
                continue
            attrs = " ".join(f"{k}={v}" for k, v in event.info.items())
            rows.append(
                (
                    event.time,
                    10**9 + i,
                    f"  [{event.time:10.3f} @          ] {event.name}"
                    + (f"  ({attrs})" if attrs else ""),
                )
            )
        rows.sort(key=lambda r: (r[0], r[1]))
        lines.append("")
        lines.append(f"-- {track} ({len(rows)} records)")
        lines.extend(row[-1][: width + 2] for row in rows)
    return "\n".join(lines) + "\n"


def trace_summary(tracer) -> dict[str, Any]:
    """The tracer's aggregate summary (see :meth:`Tracer.summary`)."""
    return tracer.summary()


#: extension → format map for ``write_trace(..., fmt="auto")``
_EXTENSION_FORMATS = {
    ".json": "chrome",
    ".jsonl": "jsonl",
    ".txt": "text",
    ".log": "text",
}


def write_trace(tracer, path: str, fmt: str = "auto") -> str:
    """Write the trace to ``path``; returns the format actually used.

    ``fmt`` may be ``chrome`` (Perfetto-loadable JSON), ``jsonl``,
    ``text``, or ``auto`` to pick by extension (``.json`` → chrome,
    ``.jsonl`` → jsonl, ``.txt``/``.log`` → text).  An unknown extension
    with ``fmt="auto"`` raises :class:`ValueError` naming the supported
    extensions; pass an explicit ``fmt`` to override a mismatched (or
    missing) extension.
    """
    if fmt == "auto":
        lowered = path.lower()
        for extension, mapped in _EXTENSION_FORMATS.items():
            if lowered.endswith(extension):
                fmt = mapped
                break
        else:
            known = "/".join(sorted(_EXTENSION_FORMATS))
            raise ValueError(
                f"cannot infer trace format from {path!r}: supported "
                f"extensions are {known}; pass fmt='chrome'/'jsonl'/'text' "
                "to override"
            )
    if fmt == "chrome":
        payload = json.dumps(
            chrome_trace(tracer), sort_keys=True, default=_json_default
        )
    elif fmt == "jsonl":
        payload = "\n".join(jsonl_lines(tracer)) + "\n"
    elif fmt == "text":
        payload = text_timeline(tracer)
    else:
        raise ValueError(f"unknown trace format {fmt!r}; know chrome/jsonl/text/auto")
    with open(path, "w") as fh:
        fh.write(payload)
    return fmt


#: extensions accepted by ``write_metrics`` (single-document JSON only)
_METRICS_EXTENSIONS = (".json",)


def write_metrics(tracer, path: str) -> dict[str, Any]:
    """Dump the tracer's :class:`MetricsRegistry` snapshot as JSON.

    The sibling of :func:`write_trace` for quantities rather than
    timelines: one JSON document keyed by metric name, each value a
    self-describing instrument snapshot.  Returns the snapshot written.
    Byte-deterministic for a given run (sorted keys, fixed bucketing).

    Only ``.json`` output is supported; an unrecognised extension raises
    :class:`ValueError` naming the supported formats, matching the
    :func:`write_trace` contract.
    """
    lowered = path.lower()
    if not any(lowered.endswith(ext) for ext in _METRICS_EXTENSIONS):
        known = "/".join(sorted(_METRICS_EXTENSIONS))
        raise ValueError(
            f"cannot infer metrics format from {path!r}: supported "
            f"extensions are {known}"
        )
    snapshot = tracer.metrics.snapshot()
    with open(path, "w") as fh:
        fh.write(json.dumps(snapshot, sort_keys=True, default=_json_default))
        fh.write("\n")
    return snapshot
