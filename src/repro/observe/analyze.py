"""Trace analytics: critical path, utilization, bottlenecks, run diffing.

The tracer (:mod:`repro.observe.tracer`) answers *what happened*; this
module answers *why was the run slow*.  It consumes either a live
:class:`~repro.observe.tracer.Tracer` or an exported trace file (JSONL
or Chrome/Perfetto JSON, as written by
:func:`~repro.observe.export.write_trace`) and produces four analyses:

* :func:`critical_path` — the longest dependency chain of work segments
  from the start of the ``sim.run`` span to the last finisher, found by
  deterministic *last-finisher backward chaining*: start from the span
  that ends last, repeatedly hop to the latest span that ended at or
  before the current segment began.  Segments never overlap, so the
  chain satisfies the accounting identity
  ``path_s + slack_s == window duration`` exactly — slack is the time
  the chain spent *waiting* (message transfer, queueing) rather than
  working.
* :func:`utilization` — per-track (per-peer) busy/idle/unavailable
  accounting over merged leaf-span intervals, Jain's fairness index
  over the worker fleet, and a straggler ranking.
* :func:`bottlenecks` — wall-clock attribution into
  compute / repo-fetch / peer-fetch / revalidate / discovery /
  redispatch-recovery / network-transfer buckets by a priority sweep
  over span intervals.  The buckets partition the run window, so they
  always sum to 100 %; the three module-distribution buckets are also
  reported summed as ``module_fetch_s`` (the pre-split aggregate).
* :func:`compare_runs` — aligns two runs by span (name, track) and
  reports total/mean duration deltas plus headline run-window
  (simulated-time), critical-path and bottleneck regressions.

:func:`analyze` bundles the first three into one dict; :func:`doctor`
renders it as a terminal report (the ``repro analyze`` subcommand).

Everything here is **read-only**: analysing a live tracer mutates
nothing, so a traced run stays byte-identical whether or not it was
analysed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional, Union

__all__ = [
    "TraceView",
    "load_trace",
    "critical_path",
    "utilization",
    "bottlenecks",
    "analyze",
    "compare_runs",
    "doctor",
    "render_diff",
]

#: span names treated as *containers* (scheduling scaffolding) even when
#: they have no recorded children — they wrap other work and would
#: otherwise swallow the whole critical path.
_CONTAINER_NAMES = frozenset({"sim.run", "controller.run", "controller.deploy"})

#: bottleneck buckets in sweep priority order (first active wins);
#: ``network_transfer`` is the residual — in a discrete-event grid, time
#: with no categorised span open is time waiting on message delivery.
#: ``repo_fetch`` / ``peer_fetch`` / ``revalidate`` split the old
#: ``module_fetch`` bucket by where the bytes came from (the authority,
#: a replica peer, or nowhere — a digest check sufficed).
_BUCKETS = (
    "compute", "repo_fetch", "peer_fetch", "revalidate", "discovery",
    "redispatch_recovery", "verification_overhead",
)
#: the mobility sub-buckets; their sum is the legacy ``module_fetch``
#: total, reported as ``module_fetch_s`` alongside the partition.
_MODULE_BUCKETS = ("repo_fetch", "peer_fetch", "revalidate")
_RESIDUAL_BUCKET = "network_transfer"


@dataclass(frozen=True)
class VSpan:
    """One span normalised out of a tracer or a trace file."""

    span_id: int
    parent_id: Optional[int]
    name: str
    category: str
    track: str
    start: float
    end: Optional[float]
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass(frozen=True)
class VEvent:
    """One point event normalised out of a tracer or a trace file."""

    name: str
    category: str
    track: str
    time: float
    attrs: dict[str, Any] = field(default_factory=dict)


@dataclass
class TraceView:
    """A normalised, source-agnostic view of one run's trace."""

    spans: list[VSpan]
    events: list[VEvent]

    @property
    def tracks(self) -> list[str]:
        seen = {s.track for s in self.spans}
        seen.update(e.track for e in self.events)
        return sorted(seen)


# -- loading -----------------------------------------------------------------------


def _view_from_tracer(tracer) -> TraceView:
    spans = [
        VSpan(
            span_id=s.span_id,
            parent_id=s.parent_id,
            name=s.name,
            category=s.category,
            track=s.track,
            start=s.start,
            end=s.end,
            attrs=dict(s.attrs),
        )
        for s in tracer.spans
    ]
    events = [
        VEvent(
            name=e.name,
            category=e.category,
            track=e.track,
            time=e.time,
            attrs=e.info,
        )
        for e in tracer.events
    ]
    return TraceView(spans=spans, events=events)


def _view_from_jsonl(lines: list[str]) -> TraceView:
    spans: list[VSpan] = []
    events: list[VEvent] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        rec = json.loads(line)
        if rec.get("type") == "span":
            spans.append(
                VSpan(
                    span_id=int(rec["id"]),
                    parent_id=rec.get("parent"),
                    name=rec["name"],
                    category=rec.get("category", "app"),
                    track=rec.get("track", "main"),
                    start=float(rec["start"]),
                    end=None if rec.get("end") is None else float(rec["end"]),
                    attrs=rec.get("attrs", {}),
                )
            )
        elif rec.get("type") == "event":
            events.append(
                VEvent(
                    name=rec["name"],
                    category=rec.get("category", "app"),
                    track=rec.get("track", "main"),
                    time=float(rec["time"]),
                    attrs=rec.get("attrs", {}),
                )
            )
    return TraceView(spans=spans, events=events)


def _view_from_chrome(doc: dict[str, Any]) -> TraceView:
    track_of: dict[int, str] = {}
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            track_of[ev["tid"]] = ev["args"]["name"]
    spans: list[VSpan] = []
    events: list[VEvent] = []
    for ev in doc.get("traceEvents", []):
        ph = ev.get("ph")
        track = track_of.get(ev.get("tid"), str(ev.get("tid")))
        args = dict(ev.get("args", {}))
        if ph == "X":
            unfinished = bool(args.pop("unfinished", False))
            parent = args.pop("parent_span", None)
            start = ev["ts"] / 1e6
            spans.append(
                VSpan(
                    span_id=int(ev.get("id", len(spans) + 1)),
                    parent_id=parent,
                    name=ev["name"],
                    category=ev.get("cat", "app"),
                    track=track,
                    start=start,
                    end=None if unfinished else start + ev.get("dur", 0.0) / 1e6,
                    attrs=args,
                )
            )
        elif ph == "i":
            events.append(
                VEvent(
                    name=ev["name"],
                    category=ev.get("cat", "app"),
                    track=track,
                    time=ev["ts"] / 1e6,
                    attrs=args,
                )
            )
    return TraceView(spans=spans, events=events)


def load_trace(source: Union[str, "TraceView", Any]) -> TraceView:
    """Normalise ``source`` into a :class:`TraceView`.

    ``source`` may be a live tracer (anything with ``spans``/``events``
    record lists), an already-built :class:`TraceView`, or a path to a
    trace file written by :func:`~repro.observe.export.write_trace` —
    ``.jsonl`` event logs and ``.json`` Chrome/Perfetto documents are
    both understood (sniffed from content, not just extension).
    """
    if isinstance(source, TraceView):
        return source
    if hasattr(source, "spans") and hasattr(source, "events"):
        return _view_from_tracer(source)
    with open(source) as fh:
        text = fh.read()
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        # Not one JSON document — a JSONL event log parses line by line.
        return _view_from_jsonl(text.splitlines())
    if isinstance(doc, dict) and "traceEvents" in doc:
        return _view_from_chrome(doc)
    if isinstance(doc, dict) and doc.get("type") in ("span", "event"):
        # A one-record JSONL log parses as a single JSON dict.
        return _view_from_jsonl(text.splitlines())
    if isinstance(doc, dict):
        raise ValueError(
            f"{source}: JSON document is not a Chrome/Perfetto trace "
            "(no 'traceEvents' key)"
        )
    # A single-line JSONL file parses as one JSON value; retry as JSONL.
    return _view_from_jsonl(text.splitlines())


# -- the analysis window ------------------------------------------------------------


def _run_window(view: TraceView) -> dict[str, Any]:
    """The analysis window: the longest ``sim.run`` span, or the extent.

    A grid session records one ``sim.run`` span per ``Simulator.run``
    call (construction settles, discovery, the distributed run); the
    longest one is the application run.
    """
    sim_runs = [s for s in view.spans if s.name == "sim.run" and s.finished]
    if sim_runs:
        root = max(sim_runs, key=lambda s: (s.duration, -s.span_id))
        return {
            "root": root.name,
            "root_span_id": root.span_id,
            "start": root.start,
            "end": root.end,
            "duration_s": root.duration,
        }
    times = [s.start for s in view.spans] + [e.time for e in view.events]
    times += [s.end for s in view.spans if s.end is not None]
    if not times:
        return {"root": None, "root_span_id": None, "start": 0.0, "end": 0.0,
                "duration_s": 0.0}
    start, end = min(times), max(times)
    return {"root": "<trace extent>", "root_span_id": None, "start": start,
            "end": end, "duration_s": end - start}


def _leaf_spans(view: TraceView, window: dict[str, Any]) -> list[VSpan]:
    """Finished work segments inside the window: spans with no child
    spans, excluding the scheduling containers."""
    parents = {s.parent_id for s in view.spans if s.parent_id is not None}
    lo, hi = window["start"], window["end"]
    leaves = [
        s
        for s in view.spans
        if s.finished
        and s.span_id not in parents
        and s.name not in _CONTAINER_NAMES
        and s.end > lo
        and s.start < hi
    ]
    if not leaves:  # degenerate traces: fall back to any finished span
        leaves = [
            s
            for s in view.spans
            if s.finished and s.name != "sim.run" and s.end > lo and s.start < hi
        ]
    return leaves


# -- critical path -----------------------------------------------------------------


def critical_path(source) -> dict[str, Any]:
    """The longest dependency chain of work segments through the run.

    Deterministic last-finisher backward chaining over leaf spans: the
    chain ends at the span that finishes last inside the run window;
    each predecessor is the span with the latest end at or before the
    current segment's start (ties broken by latest start, then lowest
    span id).  Chained segments never overlap, so

    ``path_s + slack_s == window duration``

    holds exactly: ``slack_s`` is the sum of each segment's ``wait_s``
    (the gap before it started — wire time, queueing) plus the tail gap
    between the last finisher and the window end.
    """
    view = load_trace(source)
    window = _run_window(view)
    lo, hi = window["start"], window["end"]
    leaves = _leaf_spans(view, window)
    empty = {
        "window": window,
        "segments": [],
        "path_s": 0.0,
        "slack_s": window["duration_s"],
        "tail_s": window["duration_s"],
    }
    if not leaves:
        return empty

    def _rank(span: VSpan) -> tuple[float, float, int]:
        return (span.end, span.start, -span.span_id)

    cur = max(leaves, key=_rank)
    chain: list[VSpan] = []
    visited: set[int] = set()
    while cur is not None:
        chain.append(cur)
        visited.add(cur.span_id)
        # A zero-duration span satisfies its own predecessor predicate
        # (end == start <= its own start), so exclude visited spans to
        # guarantee termination even on traces with dur:0 leaves.
        preds = [
            s
            for s in leaves
            if s.end <= cur.start and s.end > lo and s.span_id not in visited
        ]
        cur = max(preds, key=_rank) if preds else None
    chain.reverse()

    segments: list[dict[str, Any]] = []
    prev_end = lo
    for span in chain:
        start = max(span.start, lo)
        end = min(span.end, hi)
        segments.append(
            {
                "name": span.name,
                "track": span.track,
                "category": span.category,
                "start": start,
                "end": end,
                "duration_s": end - start,
                "wait_s": start - prev_end,
                "attrs": dict(span.attrs),
            }
        )
        prev_end = end
    tail = hi - prev_end
    path_s = sum(seg["duration_s"] for seg in segments)
    slack_s = sum(seg["wait_s"] for seg in segments) + tail
    return {
        "window": window,
        "segments": segments,
        "path_s": path_s,
        "slack_s": slack_s,
        "tail_s": tail,
    }


# -- utilization -------------------------------------------------------------------


def _merge_intervals(intervals: list[tuple[float, float]]) -> list[tuple[float, float]]:
    if not intervals:
        return []
    merged: list[list[float]] = []
    for lo, hi in sorted(intervals):
        if merged and lo <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])
    return [(a, b) for a, b in merged]


def _clip(start: float, end: float, lo: float, hi: float) -> Optional[tuple[float, float]]:
    a, b = max(start, lo), min(end, hi)
    return (a, b) if b > a else None


def _overlap(a: list[tuple[float, float]], b: list[tuple[float, float]]) -> float:
    total = 0.0
    for lo_a, hi_a in a:
        for lo_b, hi_b in b:
            total += max(0.0, min(hi_a, hi_b) - max(lo_a, lo_b))
    return total


def _offline_intervals(
    view: TraceView, track: str, lo: float, hi: float
) -> list[tuple[float, float]]:
    """Offline windows for a track from ``peer.offline``/``peer.online``
    events (recorded by :meth:`SimNetwork.set_online` when tracing)."""
    transitions = sorted(
        (e.time, e.name == "peer.online")
        for e in view.events
        if e.track == track and e.name in ("peer.offline", "peer.online")
    )
    out: list[tuple[float, float]] = []
    down_since: Optional[float] = None
    for time, up in transitions:
        if not up and down_since is None:
            down_since = time
        elif up and down_since is not None:
            clipped = _clip(down_since, time, lo, hi)
            if clipped:
                out.append(clipped)
            down_since = None
    if down_since is not None:
        clipped = _clip(down_since, hi, lo, hi)
        if clipped:
            out.append(clipped)
    return _merge_intervals(out)


def utilization(source) -> dict[str, Any]:
    """Per-peer busy/idle/unavailable accounting over the run window.

    ``busy`` is the merged union of a track's leaf spans; ``unavailable``
    is its offline time (minus any overlap with busy — an exec that was
    already in flight keeps computing); ``idle`` is the remainder.
    ``fairness`` is Jain's index over worker busy times — 1.0 is a
    perfectly balanced fleet, 1/n is one peer doing all the work.
    ``stragglers`` ranks the workers busiest-first.
    """
    view = load_trace(source)
    window = _run_window(view)
    lo, hi = window["start"], window["end"]
    duration = window["duration_s"]
    leaves = _leaf_spans(view, window)

    by_track: dict[str, list[VSpan]] = {}
    for span in leaves:
        by_track.setdefault(span.track, []).append(span)

    tracks: dict[str, dict[str, Any]] = {}
    for track in sorted(by_track):
        spans = by_track[track]
        intervals = _merge_intervals(
            [c for s in spans if (c := _clip(s.start, s.end, lo, hi))]
        )
        busy = sum(b - a for a, b in intervals)
        offline = _offline_intervals(view, track, lo, hi)
        unavailable = sum(b - a for a, b in offline) - _overlap(intervals, offline)
        unavailable = max(unavailable, 0.0)
        idle = max(duration - busy - unavailable, 0.0)
        execs = sum(1 for s in spans if s.name == "worker.exec")
        tracks[track] = {
            "busy_s": busy,
            "idle_s": idle,
            "unavailable_s": unavailable,
            "busy_fraction": busy / duration if duration > 0 else 0.0,
            "execs": execs,
            "spans": len(spans),
            "last_active": max(s.end for s in spans),
        }

    workers = [t for t, row in tracks.items() if row["execs"] > 0] or list(tracks)
    busy_times = [tracks[t]["busy_s"] for t in workers]
    n = len(busy_times)
    sq = sum(x * x for x in busy_times)
    fairness = (sum(busy_times) ** 2 / (n * sq)) if n and sq > 0 else 1.0
    stragglers = sorted(
        workers,
        key=lambda t: (-tracks[t]["busy_s"], -tracks[t]["last_active"], t),
    )
    return {
        "window": window,
        "tracks": tracks,
        "workers": workers,
        "fairness": fairness,
        "stragglers": stragglers,
    }


# -- bottleneck attribution --------------------------------------------------------


def _bucket_of(span: VSpan) -> Optional[str]:
    if span.name == "worker.exec":
        return "compute"
    if span.category == "mobility":
        # Split by how the fetch resolved: a digest match (no bytes), a
        # replica-peer transfer, or the repository itself.  Spans from
        # pre-split traces carry neither attr and land in repo_fetch —
        # the seed protocol only ever fetched from the repository.
        if span.attrs.get("outcome") == "revalidate":
            return "revalidate"
        if span.attrs.get("source") == "peer":
            return "peer_fetch"
        return "repo_fetch"
    if span.name in ("discovery.query", "pipe.bind"):
        return "discovery"
    if span.name == "controller.redispatch":
        return "redispatch_recovery"
    if span.name in ("verify.wait", "verify.recompute"):
        # Result-integrity idle time: first vote in hand, quorum (or a
        # local quiz recompute) still pending.  Lowest priority, so time
        # genuinely overlapped by compute stays attributed to compute.
        return "verification_overhead"
    return None


def bottlenecks(source) -> dict[str, Any]:
    """Attribute the run window's wall-clock to bottleneck buckets.

    A priority sweep over span intervals: at every moment the window is
    charged to the highest-priority bucket with an open span — compute,
    then the module-distribution buckets (repo-fetch, peer-fetch,
    revalidate), then discovery, then redispatch-recovery; moments with
    none open are charged to ``network_transfer`` (in this
    discrete-event model, nothing-open means the run is waiting on
    message delivery).  The buckets partition the window, so
    ``sum(seconds.values()) == window duration`` and the fractions sum
    to 1.  ``module_fetch_s`` reports the three module buckets summed —
    the pre-split aggregate, kept for trend comparisons.  Chaos-tagged
    drops and drop reasons ride along as supplementary counters.
    """
    view = load_trace(source)
    window = _run_window(view)
    lo, hi = window["start"], window["end"]
    duration = window["duration_s"]

    classified: dict[str, list[tuple[float, float]]] = {b: [] for b in _BUCKETS}
    for span in view.spans:
        if not span.finished:
            continue
        bucket = _bucket_of(span)
        if bucket is None:
            continue
        clipped = _clip(span.start, span.end, lo, hi)
        if clipped:
            classified[bucket].append(clipped)

    boundaries = {lo, hi}
    for intervals in classified.values():
        for a, b in intervals:
            boundaries.update((a, b))
    cuts = sorted(boundaries)
    seconds = {b: 0.0 for b in _BUCKETS}
    seconds[_RESIDUAL_BUCKET] = 0.0
    merged = {b: _merge_intervals(v) for b, v in classified.items()}
    for a, b in zip(cuts, cuts[1:]):
        width = b - a
        if width <= 0:
            continue
        mid = (a + b) / 2.0
        for bucket in _BUCKETS:
            if any(x <= mid < y for x, y in merged[bucket]):
                seconds[bucket] += width
                break
        else:
            seconds[_RESIDUAL_BUCKET] += width

    fractions = {
        b: (v / duration if duration > 0 else 0.0) for b, v in seconds.items()
    }
    drops: dict[str, int] = {}
    chaos_events = 0
    for event in view.events:
        if event.name == "net.drop":
            reason = event.attrs.get("reason", "unknown")
            drops[reason] = drops.get(reason, 0) + 1
        if event.attrs.get("chaos"):
            chaos_events += 1
    return {
        "window": window,
        "seconds": seconds,
        "fractions": fractions,
        "module_fetch_s": sum(seconds[b] for b in _MODULE_BUCKETS),
        "drops": dict(sorted(drops.items())),
        "chaos_events": chaos_events,
    }


# -- the bundle --------------------------------------------------------------------


def _incident_overlay(view: TraceView) -> list[dict[str, Any]]:
    """``health.incident`` instants recorded by the live health monitor.

    (Extraction only — the detectors themselves live in
    :mod:`repro.observe.health`, which layers *above* this module.)
    """
    out = []
    for event in view.events:
        if event.name != "health.incident":
            continue
        attrs = dict(event.attrs)
        out.append({
            "time": event.time,
            "track": event.track,
            "kind": attrs.get("kind", "anomaly"),
            "severity": attrs.get("severity", "warning"),
            "message": attrs.get("message", ""),
        })
    out.sort(key=lambda i: (i["time"], i["kind"], i["track"]))
    return out


def analyze(source) -> dict[str, Any]:
    """Full analysis: window, critical path, utilization, bottlenecks.

    Traces from telemetered runs also carry the live health monitor's
    incidents under ``incidents`` (empty for untelemetered traces).
    """
    view = load_trace(source)
    return {
        "window": _run_window(view),
        "critical_path": critical_path(view),
        "utilization": utilization(view),
        "bottlenecks": bottlenecks(view),
        "incidents": _incident_overlay(view),
        "counts": {"spans": len(view.spans), "events": len(view.events)},
    }


# -- run diffing -------------------------------------------------------------------


def _span_aggregates(view: TraceView) -> dict[tuple[str, str], dict[str, float]]:
    agg: dict[tuple[str, str], dict[str, float]] = {}
    for span in view.spans:
        if not span.finished:
            continue
        row = agg.setdefault(
            (span.name, span.track), {"count": 0, "total_s": 0.0}
        )
        row["count"] += 1
        row["total_s"] += span.duration
    for row in agg.values():
        row["mean_s"] = row["total_s"] / row["count"] if row["count"] else 0.0
    return agg


def _pct(a: float, b: float) -> Optional[float]:
    if a == 0:
        return None
    return (b - a) / a * 100.0


def compare_runs(a, b, threshold_pct: float = 5.0) -> dict[str, Any]:
    """Diff two runs, aligned by span (name, track).

    ``a`` is the baseline, ``b`` the candidate; positive deltas mean
    ``b`` is slower.  Returns headline deltas (run-window simulated
    time — the BENCH schema's ``sim_time_s``, *not* real wall-clock —
    critical path, slack, bottleneck buckets), per-span-group deltas sorted by
    largest absolute regression in total time, and ``regressions`` —
    the groups whose total slowed by more than ``threshold_pct``.
    """
    view_a, view_b = load_trace(a), load_trace(b)
    cp_a, cp_b = critical_path(view_a), critical_path(view_b)
    bn_a, bn_b = bottlenecks(view_a), bottlenecks(view_b)
    wall_a = cp_a["window"]["duration_s"]
    wall_b = cp_b["window"]["duration_s"]

    agg_a, agg_b = _span_aggregates(view_a), _span_aggregates(view_b)
    spans: list[dict[str, Any]] = []
    for key in sorted(set(agg_a) | set(agg_b)):
        ra, rb = agg_a.get(key), agg_b.get(key)
        name, track = key
        spans.append(
            {
                "name": name,
                "track": track,
                "a_count": ra["count"] if ra else 0,
                "b_count": rb["count"] if rb else 0,
                "a_total_s": ra["total_s"] if ra else 0.0,
                "b_total_s": rb["total_s"] if rb else 0.0,
                "delta_s": (rb["total_s"] if rb else 0.0)
                - (ra["total_s"] if ra else 0.0),
                "delta_pct": _pct(
                    ra["total_s"] if ra else 0.0, rb["total_s"] if rb else 0.0
                ),
            }
        )
    spans.sort(key=lambda r: (-abs(r["delta_s"]), r["name"], r["track"]))
    regressions = [
        r
        for r in spans
        if r["delta_pct"] is not None and r["delta_pct"] > threshold_pct
    ]
    return {
        "wall": {"a": wall_a, "b": wall_b, "delta_pct": _pct(wall_a, wall_b)},
        "critical_path": {
            "a": cp_a["path_s"],
            "b": cp_b["path_s"],
            "delta_pct": _pct(cp_a["path_s"], cp_b["path_s"]),
        },
        "slack": {
            "a": cp_a["slack_s"],
            "b": cp_b["slack_s"],
            "delta_pct": _pct(cp_a["slack_s"], cp_b["slack_s"]),
        },
        "bottlenecks": {
            bucket: {
                "a": bn_a["seconds"][bucket],
                "b": bn_b["seconds"][bucket],
                "delta_pct": _pct(bn_a["seconds"][bucket], bn_b["seconds"][bucket]),
            }
            for bucket in (*_BUCKETS, _RESIDUAL_BUCKET)
        },
        "only_in_a": sorted(
            f"{n}@{t}" for n, t in set(agg_a) - set(agg_b)
        ),
        "only_in_b": sorted(
            f"{n}@{t}" for n, t in set(agg_b) - set(agg_a)
        ),
        "spans": spans,
        "regressions": regressions,
        "threshold_pct": threshold_pct,
    }


# -- text reports ------------------------------------------------------------------


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _table(headers: list[str], rows: list[tuple], title: str) -> str:
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def doctor(source, max_segments: int = 30) -> str:
    """Render the full analysis as a terminal report.

    Sections: the run window, the critical path (up to ``max_segments``
    segments, longest runs of work first elided last), per-peer
    utilization, and the bottleneck breakdown.  The critical-path
    accounting identity is restated in the footer so eyeballs can check
    it: path + slack = window duration.
    """
    result = analyze(source)
    window = result["window"]
    cp = result["critical_path"]
    util = result["utilization"]
    bn = result["bottlenecks"]

    out: list[str] = []
    out.append(
        f"run doctor — window {window['root']} "
        f"[{window['start']:.3f} – {window['end']:.3f}] "
        f"duration {window['duration_s']:.3f} s "
        f"({result['counts']['spans']} spans, {result['counts']['events']} events)"
    )
    out.append("")

    segments = cp["segments"]
    shown = segments[:max_segments]
    rows = [
        (
            f"{seg['start']:.3f}",
            f"{seg['wait_s']:.3f}",
            f"{seg['duration_s']:.3f}",
            seg["track"],
            seg["name"],
        )
        for seg in shown
    ]
    out.append(
        _table(
            ["start", "wait (s)", "work (s)", "track", "segment"],
            rows,
            title=f"critical path ({len(segments)} segments"
            + (f", first {max_segments} shown" if len(segments) > max_segments else "")
            + ")",
        )
    )
    out.append(
        f"path {cp['path_s']:.3f} s + slack {cp['slack_s']:.3f} s "
        f"(tail {cp['tail_s']:.3f} s) = window {window['duration_s']:.3f} s"
    )
    out.append("")

    util_rows = [
        (
            track,
            f"{row['busy_s']:.3f}",
            f"{row['idle_s']:.3f}",
            f"{row['unavailable_s']:.3f}",
            f"{row['busy_fraction'] * 100:.1f}%",
            row["execs"],
        )
        for track, row in util["tracks"].items()
    ]
    out.append(
        _table(
            ["peer", "busy (s)", "idle (s)", "unavail (s)", "busy", "execs"],
            util_rows,
            title="per-peer utilization",
        )
    )
    out.append(
        f"fairness (Jain) {util['fairness']:.3f} over {len(util['workers'])} workers; "
        "busiest first: " + ", ".join(util["stragglers"][:5])
    )
    out.append("")

    bn_rows = [
        (bucket, f"{bn['seconds'][bucket]:.3f}", f"{bn['fractions'][bucket] * 100:.1f}%")
        for bucket in (*_BUCKETS, _RESIDUAL_BUCKET)
    ]
    out.append(_table(["bucket", "seconds", "share"], bn_rows,
                      title="bottleneck breakdown (sums to 100% of wall-clock)"))
    out.append(
        f"module distribution total (repo_fetch + peer_fetch + revalidate): "
        f"{bn['module_fetch_s']:.3f} s"
    )
    incidents = result["incidents"]
    if incidents:
        out.append("")
        inc_rows = [
            (f"{inc['time']:.3f}", inc["severity"], inc["kind"], inc["track"],
             inc["message"])
            for inc in incidents[:max_segments]
        ]
        out.append(_table(
            ["t (s)", "severity", "kind", "peer", "detail"],
            inc_rows,
            title=f"health incidents ({len(incidents)} — live monitor overlay)",
        ))
    if bn["drops"]:
        out.append(
            "drops: "
            + ", ".join(f"{k}={v}" for k, v in bn["drops"].items())
            + (f"; chaos-tagged events: {bn['chaos_events']}" if bn["chaos_events"] else "")
        )
    return "\n".join(out) + "\n"


def render_diff(diff: dict[str, Any], max_rows: int = 20) -> str:
    """Render a :func:`compare_runs` result as a terminal report."""

    def _delta(row: dict[str, Any]) -> str:
        pct = row["delta_pct"]
        return "n/a" if pct is None else f"{pct:+.1f}%"

    out: list[str] = ["run diff (a = baseline, b = candidate)"]
    head_rows = [
        ("window (sim s)", f"{diff['wall']['a']:.3f}", f"{diff['wall']['b']:.3f}",
         _delta(diff["wall"])),
        ("critical path", f"{diff['critical_path']['a']:.3f}",
         f"{diff['critical_path']['b']:.3f}", _delta(diff["critical_path"])),
        ("slack", f"{diff['slack']['a']:.3f}", f"{diff['slack']['b']:.3f}",
         _delta(diff["slack"])),
    ] + [
        (f"bottleneck: {bucket}", f"{row['a']:.3f}", f"{row['b']:.3f}", _delta(row))
        for bucket, row in diff["bottlenecks"].items()
    ]
    out.append(_table(["metric", "a (s)", "b (s)", "delta"], head_rows,
                      title="headline"))
    out.append("")
    span_rows = [
        (r["name"], r["track"], f"{r['a_total_s']:.3f}", f"{r['b_total_s']:.3f}",
         _delta(r))
        for r in diff["spans"][:max_rows]
    ]
    out.append(
        _table(
            ["span", "track", "a total (s)", "b total (s)", "delta"],
            span_rows,
            title=f"span groups by |delta| (top {min(max_rows, len(diff['spans']))})",
        )
    )
    if diff["only_in_a"]:
        out.append("only in a: " + ", ".join(diff["only_in_a"][:10]))
    if diff["only_in_b"]:
        out.append("only in b: " + ", ".join(diff["only_in_b"][:10]))
    out.append(
        f"{len(diff['regressions'])} span group(s) regressed more than "
        f"{diff['threshold_pct']:.1f}%"
    )
    return "\n".join(out) + "\n"
