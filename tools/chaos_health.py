#!/usr/bin/env python
"""Chaos health gate: online detectors must catch an injected fault storm.

Runs the inspiral workload twice on identically-configured telemetered
grids — once under a five-fault storm (two crashes, a straggler
slowdown, a saboteur, a lying-heartbeat saboteur), once fault-free —
and scores the :class:`~repro.observe.HealthMonitor`'s incidents against
the :class:`~repro.faults.FaultInjector`'s ground-truth log:

* **Recall** over the injected faults must be at least ``RECALL_FLOOR``
  (0.8): at least four of the five faults must surface as incidents of a
  matching kind on the right peer at or after the onset.
* The **clean** run must raise *zero* incidents — the detectors are
  transition-triggered and a healthy fleet never transitions into a bad
  state.

The full health report (sampler summary, incident list, score) is
written as JSON — CI uploads it as an artifact so detection quality is
reviewable per commit.

Usage::

    PYTHONPATH=src python tools/chaos_health.py [--out HEALTH_chaos.json]

Exit status 0 = gate passed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import ConsumerGrid  # noqa: E402
from repro.apps.inspiral import build_inspiral_graph  # noqa: E402
from repro.faults import Fault, FaultPlan  # noqa: E402
from repro.observe import score_against_faults  # noqa: E402
from repro.p2p import LAN_PROFILE  # noqa: E402

RECALL_FLOOR = 0.8
SEED = 903
ITERATIONS = 18


def make_grid(plan=None) -> ConsumerGrid:
    return ConsumerGrid(
        n_workers=6,
        seed=SEED,
        worker_profile=LAN_PROFILE,
        controller_profile=LAN_PROFILE,
        worker_efficiency=5e-3,
        heartbeat_interval=1.0,
        suspect_after_missed=2,
        retry_timeout=30.0,
        retry_interval=2.0,
        fault_plan=plan,
        telemetry=True,
        telemetry_interval=1.0,
        health_config={"straggler_z": 1.25, "straggler_min_lag": 2.0},
    )


def storm_plan() -> FaultPlan:
    """Five faults spanning every detector family (crashes restart)."""
    plan = FaultPlan(name="health-storm")
    plan.add(Fault(kind="crash", at=8.0, duration=30.0, targets=("worker-1",)))
    plan.add(Fault(kind="crash", at=20.0, duration=30.0, targets=("worker-5",)))
    plan.add(Fault(kind="slowdown", at=6.0, duration=80.0, factor=0.05,
                   targets=("worker-2",)))
    plan.add(Fault(kind="saboteur", at=5.0, targets=("worker-3",),
                   fraction=1.0, seed=11))
    plan.add(Fault(kind="liar_heartbeat", at=5.0, targets=("worker-4",),
                   fraction=1.0, seed=12))
    return plan


def run(plan=None) -> tuple[ConsumerGrid, dict]:
    grid = make_grid(plan)
    report = grid.run(
        build_inspiral_graph(n_templates=8, chunk_seconds=4.0, seed=4),
        iterations=ITERATIONS,
        run_until=200_000,
        verification="replicate-3",
    )
    return grid, report.health


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None,
                        help="write the full health report JSON here")
    args = parser.parse_args(argv)

    print("chaos health gate (inspiral, 6 workers, replicate-3)")
    chaotic, chaotic_health = run(storm_plan())
    score = score_against_faults(
        chaotic.health.incidents, chaotic.fault_injector.log
    )
    clean, clean_health = run(plan=None)

    failures: list[str] = []
    if score["recall"] < RECALL_FLOOR:
        failures.append(
            f"recall {score['recall']:.2f} below floor {RECALL_FLOOR:.2f}: "
            f"missed {score['missed']}"
        )
    if clean_health["incidents"] != 0:
        failures.append(
            f"clean run raised {clean_health['incidents']} incident(s): "
            f"{clean_health['by_kind']}"
        )

    print(
        f"  storm: {score['faults']} faults injected, {score['detected']} "
        f"detected (recall {score['recall']:.2f}, precision "
        f"{score['precision']:.2f}), {score['incidents']} incidents"
    )
    print(f"  clean: {clean_health['incidents']} incidents "
          f"({clean_health['sampler']['samples']} samples)")

    if args.out:
        payload = {
            "storm": {
                "health": chaotic_health,
                "score": score,
                "incidents": [i.as_dict() for i in chaotic.health.ranked()],
            },
            "clean": {"health": clean_health},
            "recall_floor": RECALL_FLOOR,
            "passed": not failures,
        }
        Path(args.out).write_text(
            json.dumps(payload, indent=1, sort_keys=True, default=str) + "\n"
        )
        print(f"  report -> {args.out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("chaos health gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
