#!/usr/bin/env python
"""Benchmark regression gate: fresh BENCH JSON vs the committed baseline.

Each ``benchmarks/bench_e*.py`` run rewrites its
``benchmarks/results/BENCH_<scenario>.json``.  This gate re-reads the
*committed* version of the same file (``git show HEAD:<path>``) and
compares the deterministic trace analytics:

* ``critical_path_s`` — the gated quantity.  A fresh value more than
  ``--tolerance`` percent *above* the baseline fails the gate (faster is
  never a failure, only noted).
* ``sim_time_s`` / ``slack_s`` — drift is reported but does not fail the
  gate on its own; these move together with the critical path.
* ``wall_clock_s`` is explicitly ignored: it is the one field that is
  not a pure function of the seed, so it cannot be gated.

Scenarios whose baseline or fresh file carries no trace analytics
(``critical_path_s: null`` — analytic benches) are skipped.

Separately from the gate, ``--record-trend`` appends each scenario's
*ungated* wall clock to ``benchmarks/results/WALL_TREND.jsonl`` keyed by
the current HEAD commit — one JSON line per (commit, scenario).  Wall
clock can never gate (it is machine- and load-dependent), but a
committed trend series makes speedups and slow creep visible across PRs
without re-running history; ``docs/performance.md`` explains how to read
it.

Usage::

    python tools/bench_gate.py                       # gate all fresh files
    python tools/bench_gate.py e10_policies e13_dispatch
    python tools/bench_gate.py --tolerance 25
    python tools/bench_gate.py --record-trend        # gate + append trend

Exit status 0 = gate passed.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
RESULTS = REPO / "benchmarks" / "results"
TREND = RESULTS / "WALL_TREND.jsonl"


def committed_payload(scenario: str) -> dict | None:
    """The BENCH payload as committed at HEAD, or None if absent."""
    rel = f"benchmarks/results/BENCH_{scenario}.json"
    proc = subprocess.run(
        ["git", "show", f"HEAD:{rel}"],
        cwd=REPO, capture_output=True, text=True,
    )
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


def fresh_payload(scenario: str) -> dict | None:
    path = RESULTS / f"BENCH_{scenario}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def gate_scenario(scenario: str, tolerance_pct: float) -> tuple[bool, str]:
    """Returns (passed, message) for one scenario."""
    fresh = fresh_payload(scenario)
    if fresh is None:
        return False, f"{scenario}: no fresh BENCH_{scenario}.json (bench not run?)"
    base = committed_payload(scenario)
    if base is None:
        return True, f"{scenario}: no committed baseline yet — skipped"
    base_cp = base.get("critical_path_s")
    fresh_cp = fresh.get("critical_path_s")
    if base_cp is None or fresh_cp is None:
        return True, f"{scenario}: no trace analytics — skipped"
    if base_cp <= 0:
        return True, f"{scenario}: degenerate baseline critical path — skipped"
    delta_pct = 100.0 * (fresh_cp - base_cp) / base_cp
    detail = (
        f"{scenario}: critical path {base_cp:.4f}s -> {fresh_cp:.4f}s "
        f"({delta_pct:+.2f}%, budget +{tolerance_pct:.0f}%)"
    )
    if delta_pct > tolerance_pct:
        return False, "REGRESSION " + detail
    return True, detail


def head_commit() -> str:
    """Short hash of HEAD (``unknown`` outside a git checkout)."""
    proc = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        cwd=REPO, capture_output=True, text=True,
    )
    return proc.stdout.strip() if proc.returncode == 0 else "unknown"


def record_trend(scenarios: list[str]) -> int:
    """Append one wall-clock line per scenario to ``WALL_TREND.jsonl``.

    Entries are keyed by (commit, scenario); re-running on the same
    commit replaces that commit's entries instead of duplicating them,
    so iterating locally does not inflate the series.  The series is
    informational only — it never gates.
    """
    commit = head_commit()
    existing: list[dict] = []
    if TREND.exists():
        for line in TREND.read_text().splitlines():
            if line.strip():
                existing.append(json.loads(line))
    kept = [e for e in existing if e.get("commit") != commit]
    added = 0
    for scenario in scenarios:
        fresh = fresh_payload(scenario)
        if fresh is None or fresh.get("wall_clock_s") is None:
            continue
        kept.append({
            "commit": commit,
            "scenario": scenario,
            "wall_clock_s": round(float(fresh["wall_clock_s"]), 4),
            "critical_path_s": fresh.get("critical_path_s"),
            "sim_time_s": fresh.get("sim_time_s"),
            "module_fetch_s": fresh.get("module_fetch_s"),
        })
        added += 1
    TREND.write_text("".join(json.dumps(e, sort_keys=True) + "\n" for e in kept))
    print(f"  trend: recorded {added} scenario(s) at {commit} -> {TREND.relative_to(REPO)}")
    return added


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("scenarios", nargs="*",
                        help="scenario names (default: every fresh BENCH_*.json)")
    parser.add_argument("--tolerance", type=float, default=25.0,
                        help="max allowed critical-path increase in %% "
                             "(default 25)")
    parser.add_argument("--record-trend", action="store_true",
                        help="append ungated wall-clock entries for this "
                             "commit to benchmarks/results/WALL_TREND.jsonl")
    args = parser.parse_args(argv)

    scenarios = args.scenarios or sorted(
        p.stem[len("BENCH_"):] for p in RESULTS.glob("BENCH_*.json")
    )
    if not scenarios:
        print("bench gate: nothing to check (no BENCH_*.json files)",
              file=sys.stderr)
        return 1

    failures = 0
    for scenario in scenarios:
        passed, message = gate_scenario(scenario, args.tolerance)
        print(("  ok   " if passed else "  FAIL ") + message)
        failures += 0 if passed else 1
    if args.record_trend:
        record_trend(scenarios)
    if failures:
        print(f"bench gate FAILED: {failures} scenario(s) over budget",
              file=sys.stderr)
        return 1
    print("bench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
