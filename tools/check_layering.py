#!/usr/bin/env python
"""Import-layering gate: keep the dependency arrows pointing one way.

The architecture (docs/architecture.md) stacks the systems so that lower
layers never know about higher ones, and the policy plug-in surface
stays decoupled from the controller that hosts it:

* ``repro.core`` (workflow model, engine, toolbox) must not import
  ``repro.service`` or ``repro.p2p`` — graphs and units must stay
  runnable without any grid;
* ``repro.simkernel`` is the foundation: no imports from any other
  ``repro`` subpackage;
* ``repro.service.policies`` must not import
  ``repro.service.controller`` — policies talk to the controller only
  through the :class:`DispatchContext` services handed to them, never
  by reaching into controller internals;
* ``repro.faults`` must not import ``repro.service`` — compute-fault
  models are planted in the neutral ``SimNetwork.compute_faults``
  registry and polled duck-typed by the worker, so the integrity hooks
  flow one way (service reads faults' artefacts, never vice versa);
* ``repro.mobility`` must not import ``repro.service`` — the module
  cache/repository are pure transport; replica *placement* (who gets
  pre-seeded) is a service-layer policy decision fed to mobility only
  through protocol messages.

The check is purely static: every ``import`` / ``from ... import`` in
every module under ``src/repro`` is resolved (including relative
imports) with :mod:`ast`, no code is executed.  Run it directly::

    python tools/check_layering.py

Exit status 0 = layering clean; each violation prints as
``path:line: <rule>``.
"""

from __future__ import annotations

import ast
import pathlib
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# (package prefix the rule applies to, forbidden import prefix, why)
RULES: tuple[tuple[str, str, str], ...] = (
    ("repro.core", "repro.service",
     "core must stay grid-free (no service imports)"),
    ("repro.core", "repro.p2p",
     "core must stay grid-free (no p2p imports)"),
    ("repro.simkernel", "repro.core",
     "simkernel is the foundation layer"),
    ("repro.simkernel", "repro.p2p",
     "simkernel is the foundation layer"),
    ("repro.simkernel", "repro.service",
     "simkernel is the foundation layer"),
    ("repro.service.policies", "repro.service.controller",
     "policies must use DispatchContext, not controller internals"),
    ("repro.faults", "repro.service",
     "faults must not import service (integrity hooks flow one way)"),
    ("repro.mobility", "repro.service",
     "placement logic stays in the service layer (mobility is transport)"),
    ("repro.transport", "repro.service",
     "transport is the substrate beneath the service protocol"),
    ("repro.transport", "repro.mobility",
     "transport carries module frames; it must not know the cache layer"),
    ("repro.core", "repro.transport",
     "core must stay grid-free (no transport imports)"),
    ("repro.simkernel", "repro.transport",
     "simkernel is the foundation layer"),
    ("repro.p2p", "repro.transport",
     "peers depend on the transport *interface* duck-typed, not the package"),
)


def module_name(path: pathlib.Path) -> str:
    """Dotted module name for a file under ``src/``."""
    rel = path.relative_to(SRC).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def resolve_relative(module: str, node: ast.ImportFrom, is_package: bool) -> str:
    """Absolute dotted target of a (possibly relative) ``from`` import."""
    if node.level == 0:
        return node.module or ""
    # A package's __init__ resolves level-1 relative to itself; a plain
    # module resolves relative to its parent package.
    anchor = module.split(".")
    drop = node.level - 1 if is_package else node.level
    if drop:
        anchor = anchor[:-drop]
    if node.module:
        anchor.append(node.module)
    return ".".join(anchor)


def imported_targets(path: pathlib.Path) -> list[tuple[int, str]]:
    """Every (lineno, absolute dotted target) imported by the file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    module = module_name(path)
    is_package = path.name == "__init__.py"
    targets: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                targets.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            base = resolve_relative(module, node, is_package)
            targets.append((node.lineno, base))
            # ``from repro.service import controller`` imports a
            # submodule even though the target prefix alone looks fine.
            for alias in node.names:
                targets.append((node.lineno, f"{base}.{alias.name}"))
    return targets


def check(paths: list[pathlib.Path]) -> list[str]:
    violations = []
    for path in sorted(paths):
        module = module_name(path)
        for lineno, target in imported_targets(path):
            for scope, forbidden, why in RULES:
                in_scope = module == scope or module.startswith(scope + ".")
                hits = target == forbidden or target.startswith(forbidden + ".")
                if in_scope and hits:
                    rel = path.relative_to(REPO)
                    violations.append(
                        f"{rel}:{lineno}: {module} imports {target} — {why}"
                    )
    return violations


def main() -> int:
    files = list((SRC / "repro").rglob("*.py"))
    if not files:
        print("check_layering: no sources found under src/repro", file=sys.stderr)
        return 1
    violations = check(files)
    for line in violations:
        print(line)
    if violations:
        print(f"layering check FAILED: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"layering check passed ({len(files)} modules, {len(RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
