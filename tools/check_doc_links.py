#!/usr/bin/env python
"""Docs link checker: fail CI on dead relative links.

Scans ``README.md`` and every ``docs/*.md`` for inline markdown links
(``[text](target)``), resolves each relative target against the file it
appears in, and exits non-zero if any target is missing.  External links
(``http://``, ``https://``, ``mailto:``) and pure in-page anchors
(``#section``) are skipped; a ``path#anchor`` target is checked for the
path only.

Also enforces the docs-reachability contract: every ``docs/*.md`` page
must be linked from ``docs/index.md`` *and* from ``README.md``.

Usage: ``python tools/check_doc_links.py [repo_root]``
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline links, ignoring images; the target is group 1
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def iter_links(path: Path):
    """Yield (line_number, target) for every inline link in ``path``."""
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for match in _LINK.finditer(line):
            yield lineno, match.group(1)


def check(root: Path) -> list[str]:
    """Return a list of human-readable problems (empty = all good)."""
    problems: list[str] = []
    docs_dir = root / "docs"
    sources = [root / "README.md"] + sorted(docs_dir.glob("*.md"))
    links_from: dict[Path, set[Path]] = {}

    for source in sources:
        if not source.exists():
            problems.append(f"{source.relative_to(root)}: file missing")
            continue
        resolved: set[Path] = set()
        for lineno, target in iter_links(source):
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            candidate = (source.parent / target_path).resolve()
            if not candidate.exists():
                problems.append(
                    f"{source.relative_to(root)}:{lineno}: dead link "
                    f"-> {target}"
                )
            else:
                resolved.add(candidate)
        links_from[source] = resolved

    # Reachability: every docs page is linked from the docs index AND the
    # README (directly, or via the docs index for the README).
    index = docs_dir / "index.md"
    readme = root / "README.md"
    for page in sorted(docs_dir.glob("*.md")):
        if page == index:
            continue
        target = page.resolve()
        if index.exists() and target not in links_from.get(index, set()):
            problems.append(
                f"docs/index.md: does not link docs/{page.name}"
            )
        if readme.exists() and target not in links_from.get(readme, set()):
            problems.append(
                f"README.md: does not link docs/{page.name}"
            )
    return problems


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path(__file__).resolve().parent.parent
    problems = check(root)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"{len(problems)} doc-link problem(s)", file=sys.stderr)
        return 1
    checked = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    print(f"doc links OK ({len(checked)} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
