"""Tests for the link-contention mode of SimNetwork."""

import pytest

from repro.p2p import DSL_PROFILE, LAN_PROFILE, Message, SimNetwork
from repro.simkernel import Simulator


def build(contention, profile=DSL_PROFILE, n=3):
    sim = Simulator(seed=1)
    net = SimNetwork(sim, jitter_fraction=0.0, contention=contention)
    arrivals = {}
    for i in range(n):
        nid = f"n{i}"
        arrivals[nid] = []
        net.add_node(nid, lambda m, nid=nid: arrivals[nid].append(sim.now), profile)
    return sim, net, arrivals


class TestContention:
    def test_single_message_similar_to_uncontended(self):
        """One lone transfer costs about the same either way."""
        times = {}
        for mode in (False, True):
            sim, net, arrivals = build(mode)
            net.send(Message(kind="x", src="n0", dst="n1", size_bytes=32_000))
            sim.run()
            times[mode] = arrivals["n1"][0]
        # Contended path pays up + down serially instead of min(); same
        # order of magnitude.
        assert times[True] == pytest.approx(times[False], rel=1.5)

    def test_concurrent_sends_queue_on_uplink(self):
        """Two simultaneous sends on one DSL uplink serialise."""
        sim, net, arrivals = build(True)
        for dst in ("n1", "n2"):
            net.send(Message(kind="x", src="n0", dst=dst, size_bytes=32_000))
        sim.run()
        first = min(arrivals["n1"] + arrivals["n2"])
        second = max(arrivals["n1"] + arrivals["n2"])
        # Uplink time for 32 kB at 32 kB/s is ~1 s; the second transfer
        # waits for the first.
        assert second - first > 0.8

    def test_uncontended_sends_overlap(self):
        sim, net, arrivals = build(False)
        for dst in ("n1", "n2"):
            net.send(Message(kind="x", src="n0", dst=dst, size_bytes=32_000))
        sim.run()
        t1, t2 = arrivals["n1"][0], arrivals["n2"][0]
        assert t1 == pytest.approx(t2, abs=1e-9)

    def test_distinct_uplinks_do_not_interfere(self):
        sim, net, arrivals = build(True)
        net.send(Message(kind="x", src="n0", dst="n2", size_bytes=32_000))
        net.send(Message(kind="x", src="n1", dst="n2", size_bytes=32_000))
        sim.run()
        # Downlink is 4x faster than uplink, so the shared downlink adds
        # little; both arrive within ~an uplink time + small serialisation.
        assert max(arrivals["n2"]) < 1.8

    def test_offline_destination_still_dropped(self):
        sim, net, arrivals = build(True)
        net.set_online("n1", False)
        net.send(Message(kind="x", src="n0", dst="n1", size_bytes=1000))
        sim.run()
        assert arrivals["n1"] == []
        assert net.stats.dropped_offline == 1

    def test_lan_contention_negligible(self):
        sim, net, arrivals = build(True, profile=LAN_PROFILE)
        for dst in ("n1", "n2"):
            net.send(Message(kind="x", src="n0", dst=dst, size_bytes=32_000))
        sim.run()
        assert max(arrivals["n1"] + arrivals["n2"]) < 0.02

    def test_grid_accepts_contention_flag(self):
        from repro import ConsumerGrid
        from repro.analysis import fig1_grouped

        grid = ConsumerGrid(n_workers=2, seed=99, contention=True)
        report = grid.run(fig1_grouped(), iterations=3)
        assert len(report.group_results) == 3
