"""Tests for advertisements and the peer-local cache."""

from repro.p2p import ADV_PEER, ADV_PIPE, AdvCache, Advertisement


def adv(name="res", adv_type=ADV_PIPE, publisher="p0", attrs=None, expires=float("inf")):
    return Advertisement.make(adv_type, name, publisher, attrs, expires)


class TestAdvertisement:
    def test_make_and_attributes(self):
        a = adv(attrs={"cpu": 2e9, "ram": 1})
        assert a.attributes == {"cpu": 2e9, "ram": 1}

    def test_matches_type_and_name(self):
        a = adv(name="pipe-1")
        assert a.matches(adv_type=ADV_PIPE)
        assert a.matches(name="pipe-1")
        assert not a.matches(adv_type=ADV_PEER)
        assert not a.matches(name="pipe-2")

    def test_matches_predicate(self):
        a = adv(attrs={"cpu": 3e9})
        assert a.matches(predicate=lambda at: at["cpu"] > 2e9)
        assert not a.matches(predicate=lambda at: at["cpu"] > 4e9)

    def test_ids_are_unique_and_ordered(self):
        a, b = adv(), adv()
        assert b.adv_id > a.adv_id

    def test_wire_size_grows_with_attrs(self):
        assert adv(attrs={"a": 1, "b": 2}).wire_size() > adv().wire_size()


class TestAdvCache:
    def test_put_and_query(self):
        c = AdvCache()
        a = adv(name="x")
        c.put(a)
        assert c.query(now=0.0, name="x") == [a]
        assert c.query(now=0.0, name="y") == []

    def test_republish_replaces(self):
        c = AdvCache()
        c.put(adv(name="x", attrs={"v": 1}))
        c.put(adv(name="x", attrs={"v": 2}))
        assert len(c) == 1
        assert c.query(0.0, name="x")[0].attributes["v"] == 2

    def test_distinct_publishers_coexist(self):
        c = AdvCache()
        c.put(adv(name="x", publisher="a"))
        c.put(adv(name="x", publisher="b"))
        assert len(c) == 2

    def test_expiry(self):
        c = AdvCache()
        c.put(adv(name="x", expires=10.0))
        c.put(adv(name="y"))
        assert len(c.query(now=5.0)) == 2
        assert [a.name for a in c.query(now=10.0)] == ["y"]
        assert len(c) == 1  # expired record physically removed

    def test_expire_returns_count(self):
        c = AdvCache()
        c.put(adv(name="x", expires=1.0))
        c.put(adv(name="y", expires=1.0))
        assert c.expire(now=2.0) == 2

    def test_remove_and_remove_publisher(self):
        c = AdvCache()
        a = adv(name="x", publisher="p1")
        c.put(a)
        c.put(adv(name="y", publisher="p1"))
        c.put(adv(name="z", publisher="p2"))
        c.remove(a)
        assert len(c) == 2
        assert c.remove_publisher("p1") == 1
        assert [r.name for r in c] == ["z"]

    def test_query_order_is_publication_order(self):
        c = AdvCache()
        first, second = adv(name="a"), adv(name="b")
        c.put(second)
        c.put(first)
        assert [r.adv_id for r in c.query(0.0)] == sorted([first.adv_id, second.adv_id])

    def test_iteration(self):
        c = AdvCache()
        c.put(adv(name="a"))
        c.put(adv(name="b"))
        assert len(list(c)) == 2
